#![warn(missing_docs)]
//! # analog-dse — analog design space exploration with local/global
//! competition genetic optimization
//!
//! Umbrella crate of the workspace reproducing the DATE 2005 paper
//! *"Mixing Global and Local Competition in Genetic Optimization based
//! Design Space Exploration of Analog Circuits"* (Somani, Chakrabarti,
//! Patra). It re-exports the three layers:
//!
//! * [`moea`] — the real-coded multi-objective GA substrate (operators,
//!   dominance, NSGA-II baseline, hypervolume and diversity metrics,
//!   benchmark problems);
//! * [`sacga`] — the paper's contribution: objective-space partitioning,
//!   pure local competition, the Simulated-Annealing-driven Competition GA
//!   (SACGA) and its Multi-phase Expanding-partitions variant (MESACGA);
//! * [`circuits`] — the evaluation vehicle: a synthetic 0.18 µm process,
//!   eqn-(1) MOSFET model, two-stage op-amp and CDS switched-capacitor
//!   integrator performance equations, corner-based yield, and the sizing
//!   problems;
//! * [`engine`] — the execution engine every optimizer evaluates
//!   candidates through: serial or thread-pooled batch evaluation,
//!   quantized-key memoization, and per-run instrumentation
//!   ([`engine::EngineStats`]);
//! * [`campaign`] — algorithm × seed matrices as the unit of work: a
//!   work-stealing multi-threaded runner with a campaign-wide shared
//!   evaluation cache and checkpoint-based resume, plus bit-stable
//!   statistics (exact Mann-Whitney rank-sum, seeded bootstrap CIs) for
//!   the paper's distributional claims.
//!
//! ## Quickstart
//!
//! Explore the integrator's power-vs-drivable-load design surface with
//! MESACGA:
//!
//! ```no_run
//! use analog_dse::circuits::{DrivableLoadProblem, Spec};
//! use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
//!
//! # fn main() -> Result<(), analog_dse::moea::OptimizeError> {
//! let problem = DrivableLoadProblem::new(Spec::featured());
//! let (lo, hi) = DrivableLoadProblem::slice_range();
//! let config = MesacgaConfig::builder()
//!     .population_size(100)
//!     .phase1_max(100)
//!     .phases(vec![
//!         PhaseSpec::new(20, 100),
//!         PhaseSpec::new(8, 100),
//!         PhaseSpec::new(1, 100),
//!     ])
//!     .slice_range(lo, hi)
//!     .build()?;
//! let result = Mesacga::new(&problem, config).run_seeded(42)?;
//! for design in &result.front {
//!     let (cl_pf, power_w) = DrivableLoadProblem::to_paper_axes(design.objectives());
//!     println!("drives {cl_pf:.2} pF at {:.3} mW", power_w * 1e3);
//! }
//! # Ok(())
//! # }
//! ```

pub use analog_circuits as circuits;
pub use campaign;
pub use engine;
pub use moea;
pub use sacga;

/// Workspace version, mirroring `Cargo.toml`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let _ = crate::circuits::Spec::featured();
        let b = crate::moea::Bounds::uniform(2, 0.0, 1.0).unwrap();
        assert_eq!(b.len(), 2);
        assert!(crate::sacga::SacgaConfig::builder().build().is_ok());
        assert_eq!(crate::campaign::Campaign::new("x").cell_count(), 0);
        assert_eq!(
            crate::engine::EvaluatorKind::default(),
            crate::engine::EvaluatorKind::Serial
        );
        assert!(!crate::VERSION.is_empty());
    }
}
