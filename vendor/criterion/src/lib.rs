#![warn(missing_docs)]
//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds without registry access, so the subset of the
//! criterion API its benches use is vendored here: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: after one warm-up call, each benchmark routine runs
//! until a time budget (scaled down by [`BenchmarkGroup::sample_size`]) or
//! an iteration cap is exhausted, and the mean wall-clock time per
//! iteration is printed. No statistical analysis, outlier rejection, or
//! HTML reports. When a bench binary is executed without the `--bench`
//! flag (as `cargo test` does for `harness = false` targets), every
//! routine runs exactly once as a smoke test.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computation whose result is
/// otherwise unused.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; all variants behave identically in
/// this stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter, rendered as
    /// `name/param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Per-routine time budget.
    budget: Duration,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Smoke-test mode (`cargo test` on a `harness = false` target): run
    /// the routine once, measure nothing.
    Test,
    /// Measurement mode (`cargo bench`).
    Bench,
}

/// Result of one measured routine.
struct Sample {
    iters: u64,
    total: Duration,
}

impl Bencher {
    fn run<F: FnMut()>(&mut self, mut routine: F) -> Option<Sample> {
        match self.mode {
            Mode::Test => {
                routine();
                None
            }
            Mode::Bench => {
                routine(); // warm-up
                let cap: u64 = 100_000;
                let mut iters = 0u64;
                let start = Instant::now();
                while iters < cap {
                    routine();
                    iters += 1;
                    if start.elapsed() >= self.budget {
                        break;
                    }
                }
                Some(Sample {
                    iters,
                    total: start.elapsed(),
                })
            }
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let sample = self.run(|| {
            black_box(routine());
        });
        self.report(sample);
    }

    /// Measures `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded by running one setup per iteration outside the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                black_box(routine(setup()));
            }
            Mode::Bench => {
                black_box(routine(setup())); // warm-up
                let cap: u64 = 100_000;
                let mut iters = 0u64;
                let mut inside = Duration::ZERO;
                let start = Instant::now();
                while iters < cap {
                    let input = setup();
                    let t0 = Instant::now();
                    black_box(routine(input));
                    inside += t0.elapsed();
                    iters += 1;
                    if start.elapsed() >= self.budget {
                        break;
                    }
                }
                self.report(Some(Sample {
                    iters,
                    total: inside,
                }));
            }
        }
    }

    fn report(&self, sample: Option<Sample>) {
        if let Some(s) = sample {
            let per_iter = s.total.as_secs_f64() / s.iters.max(1) as f64;
            println!(
                "{:>14}   time: [{}]   iters: {}",
                "",
                format_time(per_iter),
                s.iters
            );
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
    default_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to the binary; `cargo test` does
        // not. Mirror upstream criterion's detection so `cargo test -q`
        // stays fast.
        let is_bench = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if is_bench { Mode::Bench } else { Mode::Test },
            default_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.mode == Mode::Bench {
            println!("{id}");
        }
        let mut b = Bencher {
            mode: self.mode,
            budget: self.default_budget,
        };
        f(&mut b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            budget: Duration::from_millis(300),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Adjusts how long each routine is measured (upstream semantics:
    /// number of samples; here: scales the per-routine time budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream default is 100 samples; scale the 300 ms budget
        // proportionally, clamped to something sane.
        let ms = (3 * n).clamp(30, 3000) as u64;
        self.budget = Duration::from_millis(ms);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.parent.mode == Mode::Bench {
            println!("{}/{}", self.name, id.id);
        }
        let mut b = Bencher {
            mode: self.parent.mode,
            budget: self.budget,
        };
        f(&mut b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        if self.parent.mode == Mode::Bench {
            println!("{}/{}", self.name, id.id);
        }
        let mut b = Bencher {
            mode: self.parent.mode,
            budget: self.budget,
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::Test,
            default_budget: Duration::from_millis(10),
        };
        let mut calls = 0;
        c.bench_function("once", |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_iterates() {
        let mut c = Criterion {
            mode: Mode::Bench,
            default_budget: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("many", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls > 1, "expected warm-up plus measured iterations");
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion {
            mode: Mode::Test,
            default_budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
