#![warn(missing_docs)]
//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! This workspace builds without registry access, so the subset of the
//! proptest API its test suites use is vendored here:
//!
//! * the [`Strategy`] trait with range, tuple, [`Just`], map
//!   ([`Strategy::prop_map`]), union ([`prop_oneof!`]) and vector
//!   ([`prop::collection::vec`]) strategies;
//! * the [`proptest!`] test-harness macro;
//! * the assertion macros [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and the filter macro [`prop_assume!`].
//!
//! Differences from upstream: failing inputs are **not shrunk** (the
//! failing case is printed as-is by the panic message), cases are generated
//! from a per-test deterministic seed derived from the test's module path,
//! and the case count is fixed at [`CASES`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number of random cases each [`proptest!`] test executes.
pub const CASES: usize = 96;

/// A generator of random values of an associated type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in generates values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several boxed strategies of a common value type;
/// built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `options` (must be non-empty).
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy, erasing its concrete type (helper for
/// [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Namespace mirror of upstream's `proptest::prop` re-export tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Generates `Vec`s whose length is drawn from `size` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Length specification of [`prop::collection::vec`]: a half-open range of
/// acceptable lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy returned by [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds the deterministic per-test case generator (used by the
/// [`proptest!`] expansion; not intended for direct use).
pub fn runner_rng(test_path: &str) -> StdRng {
    // FNV-1a over the fully qualified test name: stable across runs and
    // independent per test.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Common imports for property tests, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test body runs [`CASES`] times with freshly generated inputs.
/// Failures panic immediately (no shrinking) with the generated values
/// visible in the assertion message.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:tt in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __pt_rng =
                    $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                for __pt_case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __pt_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..1.0, 10.0f64..20.0)
    }

    proptest! {
        #[test]
        fn ranges_respected(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn exact_vec_length(v in prop::collection::vec(0u64..10, 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn tuples_and_map(p in pair().prop_map(|(a, b)| [a, b])) {
            prop_assert!(p[0] < 1.0 && p[1] >= 10.0);
        }

        #[test]
        fn oneof_picks_all(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn runner_rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = crate::runner_rng("x::y");
        let mut b = crate::runner_rng("x::y");
        let mut c = crate::runner_rng("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        let _ = c.next_u64();
    }
}
