//! Standard-distribution sampling and uniform range sampling.

use crate::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform `[0, 1)` for floats,
/// uniform over the whole range for integers, fair for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that supports uniform single-value sampling, the engine behind
/// [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let v = lo + unit_f64(rng) * (hi - lo);
        v.clamp(lo, hi)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng) as f32 * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // for astronomically large spans is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as u64;
                lo + v as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn int_range_uniformity() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn signed_range_includes_negatives() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut saw_neg = false;
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            saw_neg |= v < 0;
        }
        assert!(saw_neg);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5usize);
    }
}
