//! Sequence-related randomness: shuffling and random element choice.

use crate::distributions::SampleRange;
use crate::Rng;

/// Extension methods on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (0..self.len()).sample_single(rng);
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn shuffle_single_is_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = [42];
        v.shuffle(&mut rng);
        assert_eq!(v, [42]);
    }

    #[test]
    fn shuffle_hits_many_permutations() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let mut v = [0u8, 1, 2, 3];
            v.shuffle(&mut rng);
            seen.insert(v);
        }
        assert!(seen.len() > 10, "only {} permutations seen", seen.len());
    }
}
