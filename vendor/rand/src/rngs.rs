//! Concrete generators: the workspace's standard RNG.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator: xoshiro256\*\*
/// (Blackman & Vigna 2018) — 256-bit state, period 2^256 − 1, excellent
/// statistical quality for simulation workloads, and far faster than a
/// cryptographic generator.
///
/// Upstream `rand`'s `StdRng` is ChaCha12; this workspace only needs
/// reproducibility and statistical quality, not cryptographic strength.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// The generator's full internal state, for checkpointing.
    ///
    /// A generator rebuilt with [`StdRng::from_state`] continues the exact
    /// same stream, which is what makes killed optimizer runs resumable
    /// bit-for-bit.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`StdRng::state`].
    ///
    /// The all-zero state (a fixed point of xoshiro, never produced by a
    /// seeded generator) is nudged to the same constants
    /// [`SeedableRng::from_seed`] uses.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::from_seed([0; 32]);
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_recovered() {
        let mut rng = StdRng::from_seed([0; 32]);
        // Must produce varied output, not a constant stream.
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn from_seed_roundtrips_state() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
