#![warn(missing_docs)]
//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments without network access to a cargo
//! registry, so the handful of `rand` 0.8 APIs the optimizers rely on are
//! vendored here: the [`Rng`] / [`RngCore`] / [`SeedableRng`] traits,
//! [`rngs::StdRng`] (xoshiro256\*\* seeded via SplitMix64), uniform range
//! sampling through [`Rng::gen_range`], and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only contract that matters for this workspace: every
//! algorithm is driven by a caller-seeded [`rngs::StdRng`], so identical
//! seeds reproduce identical runs. The exact stream differs from upstream
//! `rand`, which is acceptable because no test or result depends on
//! upstream's bit sequence — only on internal reproducibility and on the
//! statistical quality of the generator.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over their range,
    /// `bool` fair).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..=1.0)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 as
    /// upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_float_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean drifted: {mean}");
    }

    #[test]
    fn gen_range_int_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_float_inclusive_stays_inside() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0..=3.0);
            assert!((-2.0..=3.0).contains(&v));
        }
    }

    #[test]
    fn bool_is_fair_enough() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = draw(dynrng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
