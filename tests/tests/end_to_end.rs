//! Cross-crate integration tests: the full stack from circuit models
//! through the GA algorithms, at small budgets.

use analog_dse::circuits::drivable::DrivableLoadProblem;
use analog_dse::circuits::{IntegratorProblem, Spec};
use analog_dse::moea::nsga2::{Nsga2, Nsga2Config};
use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};

const POP: usize = 40;
const GENS: usize = 60;
const SEED: u64 = 11;

#[test]
fn nsga2_finds_feasible_integrator_designs() {
    let problem = DrivableLoadProblem::new(Spec::relaxed());
    let cfg = Nsga2Config::builder()
        .population_size(POP)
        .generations(GENS)
        .build()
        .unwrap();
    let r = Nsga2::new(&problem, cfg).run_seeded(SEED).unwrap();
    assert!(!r.front.is_empty(), "no feasible designs found");
    for m in &r.front {
        assert!(m.is_feasible());
        let (cl_pf, p_w) = DrivableLoadProblem::to_paper_axes(m.objectives());
        assert!((0.0..=5.0).contains(&cl_pf), "CL out of range: {cl_pf}");
        assert!(p_w > 0.0 && p_w < 0.1, "implausible power: {p_w}");
    }
}

#[test]
fn sacga_covers_more_of_the_load_axis_than_only_global() {
    // The paper's central claim, at miniature scale: partitioned local
    // competition preserves diversity that pure global competition loses.
    let problem = DrivableLoadProblem::new(Spec::relaxed());
    let (lo, hi) = DrivableLoadProblem::slice_range();
    let run = |partitions: usize| {
        let cfg = SacgaConfig::builder()
            .population_size(POP)
            .generations(GENS)
            .partitions(partitions)
            .phase1_max(20)
            .slice_range(lo, hi)
            .build()
            .unwrap();
        Sacga::new(&problem, cfg).run_seeded(SEED).unwrap()
    };
    let only_global = run(1);
    let sacga = run(8);
    assert!(!sacga.front.is_empty() && !only_global.front.is_empty());
    let hv_og = DrivableLoadProblem::paper_hypervolume(&only_global.front);
    let hv_s = DrivableLoadProblem::paper_hypervolume(&sacga.front);
    // SACGA must not be meaningfully worse at equal budget.
    assert!(
        hv_s <= hv_og * 1.15,
        "SACGA hv {hv_s} should be competitive with only-global hv {hv_og}"
    );
}

#[test]
fn mesacga_runs_all_phases_on_the_circuit_problem() {
    let problem = DrivableLoadProblem::new(Spec::relaxed());
    let (lo, hi) = DrivableLoadProblem::slice_range();
    let cfg = MesacgaConfig::builder()
        .population_size(POP)
        .phase1_max(10)
        .phases(vec![
            PhaseSpec::new(10, 15),
            PhaseSpec::new(4, 15),
            PhaseSpec::new(1, 15),
        ])
        .slice_range(lo, hi)
        .build()
        .unwrap();
    let r = Mesacga::new(&problem, cfg).run_seeded(SEED).unwrap();
    assert_eq!(r.phase_fronts.len(), 3);
    assert!(!r.front.is_empty());
    // Phase fronts are population snapshots; quality should not collapse
    // across phases (small regressions from diversity churn are normal).
    let hvs: Vec<f64> = r
        .phase_fronts
        .iter()
        .map(|f| DrivableLoadProblem::paper_hypervolume(f))
        .collect();
    assert!(
        hvs.last().unwrap() <= &(hvs[0] * 1.3),
        "front quality collapsed across phases: {hvs:?}"
    );
}

#[test]
fn fixed_load_and_drivable_load_formulations_agree_on_reference() {
    // The reference design evaluated at its drivable load must be feasible
    // under the fixed-load formulation at that same load.
    let drivable = DrivableLoadProblem::new(Spec::relaxed());
    let dv = analog_dse::circuits::DesignVector::reference();
    let (cl, _) = drivable
        .drivable_load(&dv)
        .expect("reference drives a load");
    let fixed = IntegratorProblem::new(Spec::relaxed());
    let ev = fixed.evaluate_design(&dv.with_cl(cl));
    assert!(
        ev.is_feasible(),
        "violations at drivable load: {:?}",
        ev.constraint_violations()
    );
}

#[test]
fn seeds_reproduce_entire_pipeline() {
    let problem = DrivableLoadProblem::new(Spec::relaxed());
    let cfg = || {
        SacgaConfig::builder()
            .population_size(20)
            .generations(15)
            .partitions(4)
            .build()
            .unwrap()
    };
    let a = Sacga::new(&problem, cfg()).run_seeded(99).unwrap();
    let b = Sacga::new(&problem, cfg()).run_seeded(99).unwrap();
    assert_eq!(a.front_objectives(), b.front_objectives());
    assert_eq!(a.evaluations, b.evaluations);
}

#[test]
fn harder_specs_produce_worse_or_equal_fronts() {
    // Grade-1 (easy) vs grade-20 (hard) at identical budgets: the easy
    // spec's achievable front must be at least as good.
    let suite = Spec::graded_suite();
    let easy = DrivableLoadProblem::new(suite.first().unwrap().clone());
    let hard = DrivableLoadProblem::new(suite.last().unwrap().clone());
    let run = |p: &DrivableLoadProblem| {
        let cfg = Nsga2Config::builder()
            .population_size(POP)
            .generations(GENS)
            .build()
            .unwrap();
        Nsga2::new(p, cfg).run_seeded(SEED).unwrap()
    };
    let r_easy = run(&easy);
    let r_hard = run(&hard);
    let hv_easy = DrivableLoadProblem::paper_hypervolume(&r_easy.front);
    let hv_hard = DrivableLoadProblem::paper_hypervolume(&r_hard.front);
    assert!(
        hv_easy <= hv_hard * 1.05,
        "easy spec should yield a better front: {hv_easy} vs {hv_hard}"
    );
}

#[test]
fn front_objectives_translate_to_paper_axes() {
    let problem = DrivableLoadProblem::new(Spec::relaxed());
    let cfg = Nsga2Config::builder()
        .population_size(20)
        .generations(10)
        .build()
        .unwrap();
    let r = Nsga2::new(&problem, cfg).run_seeded(SEED).unwrap();
    for m in &r.front {
        let (cl_pf, p_w) = DrivableLoadProblem::to_paper_axes(m.objectives());
        assert!((cl_pf * 1e-12 + m.objective(0)).abs() < 1e-18);
        assert_eq!(p_w, m.objective(1));
    }
}
