//! Integration tests of the campaign layer's determinism contract:
//! parallel shared-cache execution must be bit-identical to isolated
//! serial runs, aggregate reports must be byte-stable across
//! repetitions and thread counts, and a killed campaign must resume to
//! the exact bytes an uninterrupted campaign produces (pinned against a
//! committed golden snapshot; re-record with
//! `UPDATE_GOLDEN=1 cargo test -p integration-tests --test campaign`).

use campaign::{Campaign, CampaignReport, CampaignRunner, CellResult, MetricSpec, RunnerConfig};
use engine::{CacheConfig, SharedCache};
use moea::nsga2::{Nsga2, Nsga2Config};
use moea::problems::Schaffer;
use moea::Evaluation;
use sacga::sacga::{Sacga, SacgaConfig};
use sacga::telemetry::DynOptimizer;
use std::path::PathBuf;

mod common;
use common::check_golden;

/// A scratch directory unique to this test binary's runs.
fn scratch_dir(name: &str) -> PathBuf {
    common::scratch_dir("campaign-it", name)
}

/// The fixed campaign under test: a 4-partition SACGA arm and a
/// textbook NSGA-II arm, both on Schaffer, exercising two different
/// optimizer types behind the object-safe API.
fn schaffer_campaign() -> Campaign<'static> {
    Campaign::new("schaffer-matrix")
        .arm("sacga4", |shared: Option<&SharedCache<Evaluation>>| {
            let mut b = SacgaConfig::builder()
                .population_size(16)
                .generations(10)
                .partitions(4);
            if let Some(cache) = shared {
                b = b.shared_cache(cache.clone());
            }
            Box::new(Sacga::new(Schaffer::new(), b.build().unwrap())) as Box<dyn DynOptimizer>
        })
        .arm("nsga2", |shared: Option<&SharedCache<Evaluation>>| {
            let mut b = Nsga2Config::builder().population_size(16).generations(10);
            if let Some(cache) = shared {
                b = b.shared_cache(cache.clone());
            }
            Box::new(Nsga2::new(Schaffer::new(), b.build().unwrap())) as Box<dyn DynOptimizer>
        })
}

fn report_spec() -> MetricSpec {
    MetricSpec::new([4.5, 4.5], (0.0, 4.0), 8)
}

fn build_report(campaign: &Campaign<'_>, results: &[CellResult]) -> CampaignReport {
    let labels: Vec<String> = campaign
        .arms()
        .iter()
        .map(|a| a.label().to_string())
        .collect();
    CampaignReport::build(campaign.name(), &labels, results, &report_spec())
}

#[test]
fn parallel_shared_cache_cells_match_isolated_serial_runs() {
    // 2 arms × 8 seeds on 4 worker threads with a shared evaluation
    // cache: every cell must be bit-identical to running the same
    // (arm, seed) alone, serially, with no cache at all.
    let campaign = schaffer_campaign().seeds((0..8).map(|i| 10 + i).collect::<Vec<u64>>());
    let runner = CampaignRunner::new(
        RunnerConfig::default()
            .threads(4)
            .shared_cache(CacheConfig::with_capacity(4096)),
    );
    let results = runner.run(&campaign).unwrap();
    assert_eq!(results.len(), 16);

    for (cell, result) in campaign.cells().into_iter().zip(&results) {
        let arm = &campaign.arms()[cell.arm];
        let seed = campaign.seed_list()[cell.seed_index];
        let outcome = arm.build(None).run_dyn(seed).unwrap();
        let isolated = CellResult::from_outcome(arm.label(), seed, &outcome);
        assert_eq!(
            result.to_text(),
            isolated.to_text(),
            "cell ({}, {seed}) diverged from its isolated serial run",
            arm.label()
        );
    }
}

#[test]
fn report_json_is_stable_across_repetitions_and_thread_counts() {
    let seeds: Vec<u64> = (0..6).map(|i| 50 + i).collect();
    let json_with_threads = |threads: usize| {
        let campaign = schaffer_campaign().seeds(seeds.clone());
        let runner = CampaignRunner::new(
            RunnerConfig::default()
                .threads(threads)
                .shared_cache(CacheConfig::with_capacity(4096)),
        );
        let results = runner.run(&campaign).unwrap();
        build_report(&campaign, &results).to_json()
    };
    let first = json_with_threads(4);
    assert_eq!(first, json_with_threads(4), "repeat run changed the report");
    assert_eq!(
        first,
        json_with_threads(1),
        "thread count changed the report"
    );
}

#[test]
fn killed_campaign_resumes_to_byte_identical_report() {
    let seeds: Vec<u64> = (0..4).map(|i| 42 + i).collect();

    // Reference: the uninterrupted campaign, no persistence involved.
    let campaign = schaffer_campaign().seeds(seeds.clone());
    let uninterrupted = CampaignRunner::new(RunnerConfig::default().threads(1))
        .run(&campaign)
        .unwrap();
    let reference_json = build_report(&campaign, &uninterrupted).to_json();

    // Interrupted: a single-threaded runner killed after 3 of the 8
    // cells (single-threaded so *which* cells ran is deterministic).
    let dir = scratch_dir("resume");
    let interrupted = CampaignRunner::new(RunnerConfig::default().threads(1).state_dir(&dir));
    let partial = interrupted.run_at_most(&campaign, 3).unwrap();
    assert!(partial.is_none(), "budgeted run must stop early");
    let persisted = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(persisted, 3, "exactly the budgeted cells must persist");

    // Resume with a fresh runner: only the unfinished cells run, and
    // the aggregate is byte-identical to the uninterrupted campaign.
    let resumed = CampaignRunner::new(RunnerConfig::default().threads(2).state_dir(&dir))
        .run(&campaign)
        .unwrap();
    let resumed_json = build_report(&campaign, &resumed).to_json();
    assert_eq!(
        resumed_json, reference_json,
        "kill + resume must aggregate to the uninterrupted bytes"
    );

    // Pin the exact bytes against the committed golden snapshot.
    check_golden("campaign_schaffer_report.json", &resumed_json);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_torn_state_files_and_reruns_them() {
    let seeds: Vec<u64> = vec![7, 8];
    let campaign = schaffer_campaign().seeds(seeds);
    let dir = scratch_dir("torn");

    let runner = CampaignRunner::new(RunnerConfig::default().threads(1).state_dir(&dir));
    let complete = runner.run(&campaign).unwrap();

    // Truncate one persisted cell mid-file (as a kill during write
    // would) and corrupt another's header outright.
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    let torn = std::fs::read_to_string(&files[0]).unwrap();
    std::fs::write(&files[0], &torn[..torn.len() / 2]).unwrap();
    std::fs::write(&files[1], "campaign-cell v0\ngarbage\n").unwrap();

    let rerun = runner.run(&campaign).unwrap();
    for (a, b) in complete.iter().zip(&rerun) {
        assert_eq!(
            a.to_text(),
            b.to_text(),
            "re-run cells must reproduce exactly"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
