//! Metrics-plane invariants: histogram bucket laws, snapshot
//! determinism under concurrency, and the end-to-end scrape served by
//! the optimization service.

use std::sync::atomic::{AtomicU64, Ordering};

use analog_dse::engine::{EngineMetrics, MetricsRegistry};
use dse_server::{Server, ServerConfig};
use proptest::prelude::*;

proptest! {
    /// Cumulative bucket counts are monotone non-decreasing, end at the
    /// total observation count, and the recorded sum matches the inputs.
    #[test]
    fn histogram_buckets_cumulate_and_balance(
        bounds_seed in prop::collection::vec(1u32..1000, 1..8),
        values in prop::collection::vec(0.0f64..2000.0, 0..200),
    ) {
        // Strictly increasing finite bounds from the seed deltas.
        let mut bounds = Vec::new();
        let mut acc = 0.0f64;
        for d in &bounds_seed {
            acc += f64::from(*d);
            bounds.push(acc);
        }
        let registry = MetricsRegistry::new();
        let h = registry.histogram("dse_test_hist", &[], &bounds);
        for v in &values {
            h.observe(*v);
        }
        let cumulative = h.cumulative_buckets();
        prop_assert_eq!(cumulative.len(), bounds.len() + 1);
        for w in cumulative.windows(2) {
            prop_assert!(w[0] <= w[1], "cumulative counts must be monotone");
        }
        prop_assert_eq!(*cumulative.last().unwrap(), values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        let expected_sum: f64 = values.iter().sum();
        prop_assert!((h.sum() - expected_sum).abs() <= 1e-9 * expected_sum.abs().max(1.0));
        // Each finite bucket holds exactly the values at or under its bound.
        for (i, b) in bounds.iter().enumerate() {
            let at_or_under = values.iter().filter(|v| **v <= *b).count() as u64;
            prop_assert_eq!(cumulative[i], at_or_under);
        }
    }

    /// The rendered snapshot is a pure function of the recorded values:
    /// registration order, interleaving, and thread count never change
    /// a byte of either exposition format.
    #[test]
    fn snapshots_are_deterministic_across_thread_counts(
        increments in prop::collection::vec(1u64..50, 1..24),
        threads in 1usize..5,
    ) {
        let build = |workers: usize| {
            let registry = MetricsRegistry::new();
            let per_series: Vec<_> = (0..increments.len())
                .map(|i| {
                    let arm = if i % 2 == 0 { "a" } else { "b" };
                    (
                        registry.counter("dse_test_ops_total", &[("arm", arm), ("stage", "x")]),
                        registry.histogram("dse_test_size", &[("arm", arm)], &[1.0, 8.0, 64.0]),
                        increments[i],
                    )
                })
                .collect();
            std::thread::scope(|scope| {
                for chunk in per_series.chunks(per_series.len().div_ceil(workers)) {
                    scope.spawn(move || {
                        for (counter, hist, n) in chunk {
                            counter.add(*n);
                            #[allow(clippy::cast_precision_loss)]
                            hist.observe(*n as f64);
                        }
                    });
                }
            });
            (registry.render_text(), registry.render_json())
        };
        let serial = build(1);
        let threaded = build(threads);
        prop_assert_eq!(serial, threaded);
    }
}

#[test]
fn two_scrapes_of_an_active_server_are_monotone_and_balanced() {
    // The acceptance criterion behind the CI metrics-smoke job, run
    // in-process: scrape between jobs, scrape again after more work,
    // and require counter monotonicity plus the candidate balance.
    use dse_server::{AlgoSpec, JobSpec, ProblemSpec};

    let root = std::env::temp_dir().join(format!("dse-metrics-plane-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = Server::open(&root, ServerConfig::new()).unwrap();
    let spec = |name: &str| {
        JobSpec::new(
            name,
            ProblemSpec::Schaffer,
            AlgoSpec::Sacga {
                pop: 16,
                gens: 5,
                parts: 4,
            },
            42,
        )
        .tenant("acme")
    };
    server.submit(spec("first")).unwrap();
    server.run_until_idle().unwrap();
    let first = parse_samples(&server.metrics_text());
    server.submit(spec("second")).unwrap();
    server.run_until_idle().unwrap();
    let second = parse_samples(&server.metrics_text());

    let mut counters_checked = 0;
    for (name, value) in &first {
        if name.contains("_total") || name.contains("_count") || name.contains("_bucket") {
            let later = second
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("{name} vanished from the second scrape"));
            assert!(
                later.1 >= *value,
                "{name} went backwards: {} -> {}",
                value,
                later.1
            );
            counters_checked += 1;
        }
    }
    assert!(counters_checked > 10, "scrape had too few counter samples");

    let total = |scrape: &[(String, f64)], metric: &str| -> f64 {
        scrape
            .iter()
            .filter(|(n, _)| n.starts_with(metric))
            .map(|(_, v)| v)
            .sum()
    };
    for scrape in [&first, &second] {
        let candidates = total(scrape, "dse_engine_candidates_total");
        assert!(candidates > 0.0);
        assert!(
            (candidates
                - total(scrape, "dse_engine_evaluations_total")
                - total(scrape, "dse_engine_cache_hits_total")
                - total(scrape, "dse_engine_screened_total"))
            .abs()
                < 0.5,
            "candidate balance violated"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Parses `name{labels} value` exposition lines into (series, value).
fn parse_samples(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (series, value) = l.rsplit_once(' ')?;
            Some((series.to_string(), value.parse().ok()?))
        })
        .collect()
}

#[test]
fn registry_handles_are_shared_not_copied() {
    // Re-registering the same (name, labels) returns handles over the
    // same underlying cell — the property that makes per-job metrics
    // survive requeues and daemon-side re-registration.
    let registry = MetricsRegistry::new();
    let a = EngineMetrics::register(&registry, &[("job", "j1")]);
    let b = EngineMetrics::register(&registry, &[("job", "j1")]);
    a.candidates.add(3);
    b.candidates.add(4);
    assert_eq!(a.candidates.get(), 7);
    assert_eq!(a, b);
    let other = EngineMetrics::register(&registry, &[("job", "j2")]);
    assert_eq!(other.candidates.get(), 0);
    assert_ne!(a, other);
}

#[test]
fn counters_from_many_threads_lose_nothing() {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("dse_test_threads_total", &[]);
    let hits = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let counter = counter.clone();
            let hits = &hits;
            scope.spawn(move || {
                for _ in 0..1000 {
                    counter.inc();
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(counter.get(), hits.load(Ordering::Relaxed));
    assert_eq!(counter.get(), 8000);
}
