//! Validate the algorithm stack on the standard benchmark suites (no
//! circuit models involved): convergence, diversity and constraint
//! handling on SCH / ZDT / constrained problems.

use analog_dse::moea::hypervolume::hypervolume_2d;
use analog_dse::moea::metrics::{coverage, extent, generational_distance};
use analog_dse::moea::nsga2::{Nsga2, Nsga2Config};
use analog_dse::moea::problems::{BinhKorn, Constr, Schaffer, Srinivas, Tanaka, Zdt1, Zdt2, Zdt3};
use analog_dse::moea::RunOutcome;
use analog_dse::moea::{Individual, Problem};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};

fn nsga2<P: Problem + Sync>(problem: P, pop: usize, gens: usize, seed: u64) -> RunOutcome {
    let cfg = Nsga2Config::builder()
        .population_size(pop)
        .generations(gens)
        .build()
        .unwrap();
    Nsga2::new(problem, cfg).run_seeded(seed).unwrap()
}

fn points(front: &[Individual]) -> Vec<[f64; 2]> {
    front
        .iter()
        .map(|m| [m.objective(0), m.objective(1)])
        .collect()
}

fn vec_points(front: &[Individual]) -> Vec<Vec<f64>> {
    front.iter().map(|m| m.objectives().to_vec()).collect()
}

#[test]
fn zdt1_converges_close_to_true_front() {
    let r = nsga2(Zdt1::new(12), 80, 150, 5);
    let reference: Vec<Vec<f64>> = (0..101)
        .map(|i| {
            let f1 = i as f64 / 100.0;
            vec![f1, 1.0 - f1.sqrt()]
        })
        .collect();
    let gd = generational_distance(&vec_points(&r.front), &reference);
    assert!(gd < 0.05, "ZDT1 generational distance too large: {gd}");
}

#[test]
fn zdt2_concave_front_is_found() {
    let r = nsga2(Zdt2::new(12), 80, 180, 6);
    let reference: Vec<Vec<f64>> = (0..101)
        .map(|i| {
            let f1 = i as f64 / 100.0;
            vec![f1, 1.0 - f1 * f1]
        })
        .collect();
    let gd = generational_distance(&vec_points(&r.front), &reference);
    assert!(gd < 0.08, "ZDT2 generational distance too large: {gd}");
}

#[test]
fn zdt3_disconnected_front_spans_first_objective() {
    let r = nsga2(Zdt3::new(12), 100, 180, 7);
    let ext = extent(&vec_points(&r.front), 0);
    assert!(ext > 0.6, "ZDT3 front should span f1: extent {ext}");
}

#[test]
fn constrained_problems_yield_feasible_fronts() {
    for (name, result) in [
        ("BNH", nsga2(BinhKorn::new(), 60, 100, 8)),
        ("SRN", nsga2(Srinivas::new(), 60, 100, 9)),
        ("TNK", nsga2(Tanaka::new(), 60, 150, 10)),
        ("CONSTR", nsga2(Constr::new(), 60, 100, 11)),
    ] {
        assert!(
            result.front.len() >= 10,
            "{name}: front too small ({})",
            result.front.len()
        );
        assert!(result.front.iter().all(Individual::is_feasible), "{name}");
    }
}

#[test]
fn sacga_matches_nsga2_on_schaffer_hypervolume() {
    let reference = [16.0, 16.0];
    let n = nsga2(Schaffer::new(), 60, 120, 12);
    let cfg = SacgaConfig::builder()
        .population_size(60)
        .generations(120)
        .partitions(6)
        .build()
        .unwrap();
    let s = Sacga::new(Schaffer::new(), cfg).run_seeded(12).unwrap();
    let hv_n = hypervolume_2d(&points(&n.front), reference);
    let hv_s = hypervolume_2d(&points(&s.front), reference);
    assert!(
        hv_s > hv_n * 0.95,
        "SACGA hv {hv_s} should be within 5% of NSGA-II hv {hv_n}"
    );
}

#[test]
fn nsga2_front_is_mutually_nondominated_and_covers_itself() {
    let r = nsga2(Schaffer::new(), 40, 60, 13);
    let pts = vec_points(&r.front);
    // The front weakly covers itself fully and a translated-worse copy.
    assert_eq!(coverage(&pts, &pts), 1.0);
    let worse: Vec<Vec<f64>> = pts.iter().map(|p| vec![p[0] + 0.1, p[1] + 0.1]).collect();
    assert_eq!(coverage(&pts, &worse), 1.0);
    assert_eq!(coverage(&worse, &pts), 0.0);
}

#[test]
fn archive_front_not_worse_than_final_population_front() {
    // The reported (archived) front must dominate-or-equal the final
    // population's rank-0 subset.
    use analog_dse::moea::hypervolume::is_dominated_by_front;
    let r = nsga2(Zdt1::new(8), 40, 60, 14);
    let front_pts = vec_points(&r.front);
    for m in r.population.iter().filter(|m| m.rank == 0) {
        let covered = front_pts.iter().any(|p| p == m.objectives())
            || is_dominated_by_front(m.objectives(), &front_pts);
        assert!(covered, "population member not covered by archive front");
    }
}
