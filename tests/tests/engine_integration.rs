//! Execution-engine integration: serial/parallel parity, memoization
//! behavior, and the run-level instrumentation surfaced by the optimizers.

use analog_dse::engine::{
    CacheConfig, EngineConfig, Evaluator, MemoCache, ParallelEvaluator, SerialEvaluator,
};
use analog_dse::moea::nsga2::{Nsga2, Nsga2Config};
use analog_dse::moea::problems::{Schaffer, Zdt1};
use analog_dse::moea::{Evaluation, Problem};
use analog_dse::sacga::island::{IslandConfig, IslandGa};
use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};
use proptest::prelude::*;

proptest! {
    /// A generation evaluated serially and in parallel must yield the
    /// exact same `Evaluation` sequence, element for element.
    #[test]
    fn serial_and_parallel_evaluations_identical(
        batch in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 1..9), 0..40),
        threads in 0usize..9,
    ) {
        let problem = Zdt1::new(8);
        let eval = |genes: &[f64]| -> Evaluation {
            // Zdt1 wants exactly 8 genes in [0,1]; fold arbitrary inputs in.
            let mut padded: Vec<f64> = genes
                .iter()
                .map(|g| (g.abs() / 10.0).clamp(0.0, 1.0))
                .collect();
            padded.resize(8, 0.25);
            problem.evaluate(&padded)
        };
        let serial = SerialEvaluator.eval_batch(&eval, &batch);
        let parallel = ParallelEvaluator::with_threads(threads).eval_batch(&eval, &batch);
        prop_assert_eq!(serial, parallel);
    }
}

#[test]
fn cache_returns_stored_result_within_one_quantization_step() {
    let problem = Schaffer::new();
    let mut cache: MemoCache<Evaluation> = MemoCache::new(CacheConfig::with_capacity(8).grid(0.5));
    let stored = problem.evaluate(&[1.0]);
    cache.insert(cache.key_of(&[1.0]), stored.clone());
    // Anything within half a grid step of the stored vector shares its key
    // and must come back as the stored evaluation, not a fresh one.
    for nearby in [0.76, 0.9, 1.0, 1.13, 1.24] {
        let key = cache.key_of(&[nearby]);
        assert_eq!(
            cache.get(&key).as_ref(),
            Some(&stored),
            "x = {nearby} should hit the entry stored for x = 1.0"
        );
    }
    // A full quantization step away must miss.
    let far_key = cache.key_of(&[1.5]);
    assert!(cache.get(&far_key).is_none());
}

/// ISSUE acceptance: for a fixed seed, `Sacga::run_seeded` produces an
/// identical Pareto front under the serial and parallel evaluators.
#[test]
fn sacga_front_identical_under_serial_and_parallel_evaluators() {
    let base = || {
        SacgaConfig::builder()
            .population_size(40)
            .generations(25)
            .partitions(6)
    };
    let serial_cfg = base().evaluator(SerialEvaluator).build().unwrap();
    let parallel_cfg = base()
        .evaluator(ParallelEvaluator::default())
        .build()
        .unwrap();
    let serial = Sacga::new(Schaffer::new(), serial_cfg)
        .run_seeded(42)
        .unwrap();
    let parallel = Sacga::new(Schaffer::new(), parallel_cfg)
        .run_seeded(42)
        .unwrap();
    assert_eq!(serial.front_objectives(), parallel.front_objectives());
    assert_eq!(serial.evaluations, parallel.evaluations);
    assert_eq!(serial.gen_t, parallel.gen_t);
    // Bit-for-bit: the full final populations match, genes included.
    let genes = |r: &analog_dse::moea::RunOutcome| -> Vec<Vec<f64>> {
        r.population.iter().map(|m| m.genes.clone()).collect()
    };
    assert_eq!(genes(&serial), genes(&parallel));
}

#[test]
fn nsga2_front_identical_under_serial_and_parallel_evaluators() {
    let base = || Nsga2Config::builder().population_size(24).generations(15);
    let serial_cfg = base().build().unwrap();
    let parallel_cfg = base()
        .evaluator(ParallelEvaluator::with_threads(4))
        .build()
        .unwrap();
    let serial = Nsga2::new(Zdt1::new(6), serial_cfg).run_seeded(9).unwrap();
    let parallel = Nsga2::new(Zdt1::new(6), parallel_cfg)
        .run_seeded(9)
        .unwrap();
    assert_eq!(serial.front_objectives(), parallel.front_objectives());
    assert_eq!(serial.evaluations, parallel.evaluations);
}

/// ISSUE acceptance: a MESACGA multi-phase run with memoization enabled
/// reports a nonzero cache hit rate through `EngineStats`.
#[test]
fn mesacga_multi_phase_run_reports_cache_hits() {
    let cfg = MesacgaConfig::builder()
        .population_size(40)
        .phase1_max(5)
        .phases(vec![
            PhaseSpec::new(8, 10),
            PhaseSpec::new(4, 10),
            PhaseSpec::new(1, 10),
        ])
        .cache_capacity(4096)
        .cache_grid(1e-3)
        .build()
        .unwrap();
    let r = Mesacga::new(Schaffer::new(), cfg).run_seeded(5).unwrap();
    let stats = &r.stats;
    assert!(stats.candidates > 0);
    assert!(
        stats.cache_hits > 0,
        "expected cache hits on a converging multi-phase run, stats: {stats:?}"
    );
    assert!(stats.hit_rate() > 0.0);
    assert_eq!(
        stats.evaluations + stats.cache_hits,
        stats.candidates,
        "every candidate is either evaluated or served from cache"
    );
    // The result counter reports true evaluations, not candidates.
    assert_eq!(r.evaluations as u64, stats.evaluations);
    assert!(!r.front.is_empty());
}

#[test]
fn default_engine_config_preserves_original_budget_accounting() {
    // With the default engine (serial, no cache) the evaluation counters
    // must equal the classic pop + gens * pop budget.
    let cfg = Nsga2Config::builder()
        .population_size(10)
        .generations(5)
        .build()
        .unwrap();
    assert_eq!(*cfg.engine(), EngineConfig::default());
    let r = Nsga2::new(Schaffer::new(), cfg).run_seeded(1).unwrap();
    assert_eq!(r.evaluations, 10 + 5 * 10);
    assert_eq!(r.stats.candidates, 60);
    assert_eq!(r.stats.cache_hits, 0);
    assert_eq!(r.stats.batches as usize, 1 + 5);
    assert_eq!(r.stats.max_batch, 10);
}

#[test]
fn island_engine_stats_cover_archipelago() {
    let cfg = IslandConfig::builder()
        .population_size(40)
        .generations(10)
        .islands(4)
        .evaluator(ParallelEvaluator::default())
        .build()
        .unwrap();
    let r = IslandGa::new(Schaffer::new(), cfg).run_seeded(3).unwrap();
    assert_eq!(r.stats.candidates, (40 + 10 * 40) as u64);
    // init batch (whole archipelago) + one batch per island per generation
    assert_eq!(r.stats.batches as usize, 1 + 10 * 4);
    assert_eq!(r.stats.max_batch, 40);
    assert!(r.stats.eval_time.as_nanos() > 0);
}
