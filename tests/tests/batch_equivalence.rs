//! Bit-for-bit equivalence of the struct-of-arrays batch evaluation path
//! against the scalar path, for every circuits problem.
//!
//! The batch kernels (`Problem::evaluate_all` on `DrivableLoadProblem` and
//! `IntegratorProblem`, dispatched by
//! `ExecutionEngine::try_evaluate_batch_with`) are a pure performance
//! feature: every pinned artifact in `results/` must stay byte-identical
//! whether a run used the batch or the scalar path. These tests pin that
//! contract directly — problem-level (`evaluate_all` vs mapped
//! `evaluate`), engine-level (kernel dispatch vs scalar dispatch,
//! including stats and fault events), across batch sizes {1, 2, 7, 64},
//! every process corner, and seeded fault-injection plans.

use analog_circuits::process::{Corner, Process};
use analog_circuits::surrogate::{self, ScreenThresholds};
use analog_circuits::{DrivableLoadProblem, IntegratorProblem, Spec};
use engine::{
    silence_injected_panics, EngineConfig, EngineStats, ExecutionEngine, FaultPlan, FaultPolicy,
};
use moea::{Evaluation, Problem};
use proptest::prelude::*;

/// Deterministic pseudo-random unit-cube batch (no RNG dependency so the
/// fixtures are stable across toolchains).
fn pseudo_batch(n: usize, salt: u64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..15)
                .map(|j| {
                    let x = (i as f64 + 1.0) * 12.9898 + j as f64 * 78.233 + salt as f64 * 0.517;
                    (x.sin() * 43758.5453).fract().abs()
                })
                .collect()
        })
        .collect()
}

/// Stats with wall-clock fields zeroed: everything else must match
/// exactly between the scalar and batch paths.
fn normalized(stats: &EngineStats) -> EngineStats {
    let mut s = stats.clone();
    s.eval_time = std::time::Duration::ZERO;
    s.backoff_time = std::time::Duration::ZERO;
    s
}

/// Runs one batch through a fresh engine; `use_kernel` selects the batch
/// kernel dispatch (`try_evaluate_batch_with` + `evaluate_all`) or the
/// plain scalar dispatch (`try_evaluate_batch`).
fn run_once<P: Problem + Sync>(
    problem: &P,
    config: EngineConfig,
    batch: &[Vec<f64>],
    use_kernel: bool,
) -> (Vec<Evaluation>, EngineStats, usize) {
    let mut exec: ExecutionEngine<Evaluation> = ExecutionEngine::new(config);
    let values = if use_kernel {
        exec.try_evaluate_batch_with(
            batch,
            &|genes| problem.evaluate(genes),
            &|chunk: &[Vec<f64>]| problem.evaluate_all(chunk),
        )
    } else {
        exec.try_evaluate_batch(batch, &|genes| problem.evaluate(genes))
    }
    .expect("tolerant policy should not abort the batch");
    let faults = exec.take_fault_events().len();
    (values, exec.stats().clone(), faults)
}

fn assert_paths_identical<P: Problem + Sync>(
    problem: &P,
    config: EngineConfig,
    batch: &[Vec<f64>],
) {
    let (scalar, s_stats, s_faults) = run_once(problem, config.clone(), batch, false);
    let (kernel, k_stats, k_faults) = run_once(problem, config, batch, true);
    assert_eq!(scalar, kernel, "values diverged for n={}", batch.len());
    assert_eq!(
        normalized(&s_stats),
        normalized(&k_stats),
        "stats diverged for n={}",
        batch.len()
    );
    assert_eq!(s_faults, k_faults, "fault events diverged");
}

#[test]
fn drivable_kernel_matches_scalar_across_batch_sizes() {
    let problem = DrivableLoadProblem::new(Spec::featured());
    for (salt, n) in [1usize, 2, 7, 64].into_iter().enumerate() {
        assert_paths_identical(
            &problem,
            EngineConfig::default(),
            &pseudo_batch(n, salt as u64),
        );
    }
}

#[test]
fn integrator_kernel_matches_scalar_across_batch_sizes() {
    let problem = IntegratorProblem::new(Spec::relaxed());
    for (salt, n) in [1usize, 2, 7, 64].into_iter().enumerate() {
        assert_paths_identical(
            &problem,
            EngineConfig::default(),
            &pseudo_batch(n, 100 + salt as u64),
        );
    }
}

#[test]
fn kernel_matches_scalar_at_every_process_corner() {
    for corner in Corner::ALL {
        let process = Process::nominal().at_corner(corner);
        let batch = pseudo_batch(7, 7 + corner as u64);
        let drivable = DrivableLoadProblem::new(Spec::featured()).with_process(process);
        assert_paths_identical(&drivable, EngineConfig::default(), &batch);
        let integrator = IntegratorProblem::new(Spec::featured()).with_process(process);
        assert_paths_identical(&integrator, EngineConfig::default(), &batch);
    }
}

#[test]
fn kernel_matches_scalar_under_seeded_fault_injection() {
    // Faults must land on the same candidates either way: scheduled
    // candidates take the scalar guarded path inside the kernel dispatch,
    // so the injector consumes its schedule identically.
    silence_injected_panics();
    let problem = DrivableLoadProblem::new(Spec::featured());
    for seed in [3u64, 19, 41] {
        let config = EngineConfig::default()
            .fault_policy(FaultPolicy::tolerant(3))
            .inject_faults(FaultPlan::seeded(seed).panics(0.10).nonfinite(0.10));
        assert_paths_identical(&problem, config, &pseudo_batch(32, seed));
    }
}

#[test]
fn kernel_matches_scalar_with_memoization_enabled() {
    // Duplicated candidates exercise the cache on both paths; hit counts
    // must agree because misses are collected identically before dispatch.
    let problem = DrivableLoadProblem::new(Spec::featured());
    let mut batch = pseudo_batch(9, 5);
    let dup = batch[2].clone();
    batch.push(dup);
    batch.push(batch[0].clone());
    let config = EngineConfig::default().cache_capacity(256);
    assert_paths_identical(&problem, config, &batch);
}

#[test]
fn raw_gene_cache_keys_miss_where_canonical_keys_hit() {
    // Regression for the 0% figure-run hit rate: two raw gene vectors that
    // quantize onto the same manufacturing grid still differ far beyond the
    // engine's default 1e-9 key grid, so a raw-keyed cache records nothing
    // but misses. Keying by the canonical (quantized) basis — what the
    // circuit problems install via `cache_canonicalizer` — turns the
    // collision into a hit, and the cached answer is bit-identical.
    let problem = DrivableLoadProblem::new(Spec::featured());
    let a = pseudo_batch(1, 77).pop().unwrap();
    let mut b = a.clone();
    b[0] += 1e-4; // far beyond the 1e-9 grid, within one width unit
    assert_eq!(
        analog_circuits::drivable::canonical_sizing_genes(&a),
        analog_circuits::drivable::canonical_sizing_genes(&b),
        "fixture must quantize to a single design"
    );

    let batch = vec![a, b];
    let mut raw: ExecutionEngine<Evaluation> =
        ExecutionEngine::new(EngineConfig::default().cache_capacity(64));
    let raw_vals = raw
        .try_evaluate_batch(&batch, &|g| problem.evaluate(g))
        .unwrap();
    assert_eq!(raw.stats().cache_hits, 0, "raw keys alias to misses");
    assert_eq!(raw.stats().evaluations, 2);

    let mut canon: ExecutionEngine<Evaluation> =
        ExecutionEngine::new(EngineConfig::default().cache_capacity(64));
    canon.set_cache_canonicalizer(analog_circuits::drivable::canonical_sizing_genes);
    let canon_vals = canon
        .try_evaluate_batch(&batch, &|g| problem.evaluate(g))
        .unwrap();
    assert_eq!(
        canon.stats().cache_hits,
        1,
        "canonical keys share one entry"
    );
    assert_eq!(canon.stats().evaluations, 1);
    assert_eq!(raw_vals, canon_vals, "cached answers are bit-identical");
}

#[test]
fn screened_accounting_balances_and_never_caches() {
    let problem = DrivableLoadProblem::new(Spec::featured());
    let screen = surrogate::drivable_screen(problem.process(), ScreenThresholds::conservative());
    let mut exec: ExecutionEngine<Evaluation> =
        ExecutionEngine::new(EngineConfig::default().cache_capacity(256));
    exec.attach_screen(screen);
    // Mix healthy candidates with slew-starved ones the screen answers.
    let mut batch = pseudo_batch(12, 23);
    for i in 0..6 {
        let mut g = batch[i].clone();
        g[10] = 0.0; // itail minimum
        g[11] = 1.0; // cc maximum
        batch.push(g);
    }
    let out = exec
        .try_evaluate_batch_with(
            &batch,
            &|genes| problem.evaluate(genes),
            &|chunk: &[Vec<f64>]| problem.evaluate_all(chunk),
        )
        .unwrap();
    assert_eq!(out.len(), batch.len());
    let stats = exec.stats();
    assert!(stats.screened >= 6, "screen should have fired: {stats:?}");
    assert_eq!(
        stats.candidates,
        stats.evaluations + stats.cache_hits + stats.screened,
        "candidate attribution must balance: {stats:?}"
    );
}

#[test]
fn never_firing_screen_is_byte_identical_to_no_screen() {
    let problem = DrivableLoadProblem::new(Spec::featured());
    let batch = pseudo_batch(10, 31);
    let (bare, bare_stats, _) = run_once(&problem, EngineConfig::default(), &batch, true);
    let mut exec: ExecutionEngine<Evaluation> = ExecutionEngine::new(EngineConfig::default());
    exec.attach_screen(surrogate::drivable_screen(
        problem.process(),
        ScreenThresholds::never(),
    ));
    let screened = exec
        .try_evaluate_batch_with(
            &batch,
            &|genes| problem.evaluate(genes),
            &|chunk: &[Vec<f64>]| problem.evaluate_all(chunk),
        )
        .unwrap();
    assert_eq!(bare, screened);
    assert_eq!(exec.stats().screened, 0);
    assert_eq!(
        normalized(&bare_stats),
        normalized(exec.stats()),
        "a never-firing screen must be a statistical no-op"
    );
}

proptest! {
    #[test]
    fn prop_drivable_evaluate_all_is_bit_identical(
        genes in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 15), 1..10)
    ) {
        let p = DrivableLoadProblem::new(Spec::featured());
        let fast = p.evaluate_all(&genes);
        for (i, g) in genes.iter().enumerate() {
            prop_assert_eq!(&fast[i], &p.evaluate(g), "candidate {}", i);
        }
    }

    #[test]
    fn prop_integrator_evaluate_all_is_bit_identical(
        genes in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 15), 1..10)
    ) {
        let p = IntegratorProblem::new(Spec::featured());
        let fast = p.evaluate_all(&genes);
        for (i, g) in genes.iter().enumerate() {
            prop_assert_eq!(&fast[i], &p.evaluate(g), "candidate {}", i);
        }
    }

    #[test]
    fn prop_canonical_genes_share_one_evaluation(
        genes in prop::collection::vec(0.0f64..1.0, 15),
        bump in 0.0f64..1e-7,
    ) {
        // Any perturbation small enough to keep the canonical basis fixed
        // must keep the evaluation bit-identical (the cache-key safety
        // property behind `cache_canonicalizer`).
        let mut nudged = genes.clone();
        nudged[3] = (nudged[3] + bump).min(1.0);
        let ca = analog_circuits::drivable::canonical_sizing_genes(&genes);
        let cb = analog_circuits::drivable::canonical_sizing_genes(&nudged);
        if ca == cb {
            let p = DrivableLoadProblem::new(Spec::featured());
            prop_assert_eq!(p.evaluate(&genes), p.evaluate(&nudged));
        }
    }
}
