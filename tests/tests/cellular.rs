//! Differential tests pinning the cellular structured-population
//! engine:
//!
//! * the fully-connected degenerate topology replays the **island**
//!   golden snapshot byte-for-byte (the cellular loop *is* the island
//!   model at that point of the locality continuum);
//! * the featured ring configuration has its own committed golden,
//!   reproduced bit-for-bit serially, under 2- and 4-worker parallel
//!   evaluation, after kill/resume through checkpoint text, with a
//!   stage-timing sink attached, and with a live metrics registry
//!   (engine bundle + per-cell series) attached;
//! * a proptest kills a run at an *arbitrary* merge boundary and
//!   requires the resumed run to match the uninterrupted one exactly.
//!
//! Re-record snapshots with
//! `UPDATE_GOLDEN=1 cargo test -p integration-tests --test cellular`.

use analog_dse::engine::ParallelEvaluator;
use analog_dse::moea::problems::Schaffer;
use analog_dse::moea::{RunOutcome, RunStatus};
use analog_dse::sacga::cellular::{CellularConfig, CellularGa};
use analog_dse::sacga::island::{IslandConfig, IslandGa};
use analog_dse::sacga::telemetry::Optimizer;
use analog_dse::sacga::topology::Topology;
use analog_dse::sacga::CellularCheckpoint;
use proptest::prelude::*;

mod common;
use common::{check_golden, render_front};

const SEED: u64 = 42;

/// The island reference configuration: 32 individuals over 4 islands,
/// migrating 2 rank-0 members every 5 generations.
fn island_config() -> IslandConfig {
    IslandConfig::builder()
        .population_size(32)
        .generations(20)
        .islands(4)
        .migration_interval(5)
        .migrants(2)
        .build()
        .unwrap()
}

/// The same run shape on the degenerate fully-connected topology with
/// closed mating — the configuration that must replay the island golden.
fn degenerate_config() -> CellularConfig {
    CellularConfig::builder()
        .population_size(32)
        .generations(20)
        .topology(Topology::FullyConnected { cells: 4 })
        .migration_interval(5)
        .migrants(2)
        .build()
        .unwrap()
}

/// The featured cellular configuration: a radius-1 ring of 4 cells with
/// mild anisotropic open mating — topologically local, unlike any
/// island run.
fn ring_builder() -> analog_dse::sacga::cellular::CellularConfigBuilder {
    CellularConfig::builder()
        .population_size(32)
        .generations(20)
        .topology(Topology::Ring {
            cells: 4,
            radius: 1,
        })
        .migration_interval(5)
        .migrants(2)
        .openness(0.25)
        .anisotropy(0.75)
}

fn ring_config() -> CellularConfig {
    ring_builder().build().unwrap()
}

#[test]
fn island_front_matches_snapshot() {
    let r = IslandGa::new(Schaffer::new(), island_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("island_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn fully_connected_cellular_replays_the_island_golden() {
    // The tentpole degeneracy claim: on a fully-connected graph with
    // openness 0 the cellular loop consumes the exact RNG stream the
    // island model does, so it must reproduce the *island* snapshot —
    // not merely its own.
    let r = CellularGa::new(Schaffer::new(), degenerate_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("island_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn cellular_serial_front_matches_snapshot() {
    let r = CellularGa::new(Schaffer::new(), ring_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("cellular_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn cellular_parallel_fronts_match_snapshot_across_worker_counts() {
    // All cells submit through one shared session and completions drain
    // in submission order, so worker count {1, 2, 4} is invisible.
    for threads in [2usize, 4] {
        let cfg = ring_builder()
            .evaluator(ParallelEvaluator::with_threads(threads))
            .build()
            .unwrap();
        let r = CellularGa::new(Schaffer::new(), cfg)
            .run_seeded(SEED)
            .unwrap();
        check_golden("cellular_schaffer_seed42.txt", &render_front(&r.front));
    }
}

#[test]
fn cellular_kill_and_resume_front_matches_snapshot() {
    let ga = CellularGa::new(Schaffer::new(), ring_config());
    let cp = match ga.run_until(SEED, 9).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend at gen 9"),
    };
    // Round-trip through the text format, as a daemon restart would.
    let restored = CellularCheckpoint::from_text(&cp.to_text()).unwrap();
    assert_eq!(restored, *cp);
    let r = ga.resume(&restored).unwrap();
    check_golden("cellular_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn cellular_front_with_stage_timing_enabled_matches_snapshot() {
    // Stage timers read the monotonic clock but never the RNG, so a run
    // with timing collection forced on reproduces the snapshot bit for
    // bit; payloads are wall-clock, only their count is checked.
    use analog_dse::sacga::telemetry::{EventKind, RunEvent, Sink};

    struct TimingOnly(usize);
    impl Sink for TimingOnly {
        fn record(&mut self, event: &RunEvent) {
            assert!(matches!(event, RunEvent::StageTiming { .. }));
            self.0 += 1;
        }
        fn wants(&self, kind: EventKind) -> bool {
            kind == EventKind::StageTiming
        }
    }

    let mut sink = TimingOnly(0);
    let r = CellularGa::new(Schaffer::new(), ring_config())
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("cellular_schaffer_seed42.txt", &render_front(&r.front));
    assert_eq!(sink.0, r.generations);
}

#[test]
fn cellular_front_with_metrics_registry_attached_matches_snapshot() {
    // Mirroring the run into a live registry — the engine bundle plus
    // the per-cell stage series — is pure observation: the golden front
    // is reproduced bit for bit and the scraped counters balance.
    use analog_dse::engine::{CellSeries, EngineMetrics, MetricsRegistry};
    use analog_dse::sacga::telemetry::RegistrySink;

    let registry = MetricsRegistry::new();
    let labels = [("arm", "cellular")];
    let metrics = EngineMetrics::register(&registry, &labels);
    let series = CellSeries::register(&registry, &labels);
    let cfg = ring_builder()
        .metrics(metrics.clone())
        .cell_series(series.clone())
        .build()
        .unwrap();
    let mut sink = RegistrySink::register(&registry, &labels);
    let r = CellularGa::new(Schaffer::new(), cfg)
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("cellular_schaffer_seed42.txt", &render_front(&r.front));
    assert_eq!(metrics.candidates.get(), r.stats.candidates);
    assert_eq!(
        metrics.candidates.get(),
        metrics.evaluations.get() + metrics.cache_hits.get() + metrics.screened.get()
    );
    // Per-cell offspring counters sum to every post-init candidate:
    // 8 offspring per cell per generation over 20 generations.
    let per_cell: u64 = (0..4).map(|i| series.cell(i).candidates.get()).sum();
    assert_eq!(per_cell, r.stats.candidates - 32);
    let text = registry.render_text();
    assert!(text.contains("dse_cell_candidates_total{arm=\"cellular\",cell=\"3\"} 160"));
    assert!(text.contains("dse_run_generations_total{arm=\"cellular\"} 20"));
}

/// Strips wall-clock fields that legitimately differ between a split
/// run and an uninterrupted one.
fn scrub(mut s: analog_dse::engine::EngineStats) -> analog_dse::engine::EngineStats {
    s.eval_time = std::time::Duration::ZERO;
    s.backoff_time = std::time::Duration::ZERO;
    s
}

proptest! {
    #[test]
    fn cellular_kill_resume_at_any_merge_boundary_is_lossless(
        seed in 0u64..1000,
        stop_frac in 0.0f64..1.0,
        openness in 0.0f64..1.0,
        interval in 1usize..8,
    ) {
        // Every generation boundary is a merge boundary (all submissions
        // drained), so a kill at *any* stop fraction, round-tripped
        // through checkpoint text, must resume to the exact bytes of the
        // uninterrupted run.
        let gens = 8usize;
        let make = || {
            CellularConfig::builder()
                .population_size(24)
                .generations(gens)
                .topology(Topology::Ring { cells: 3, radius: 1 })
                .migration_interval(interval)
                .migrants(1)
                .openness(openness)
                .build()
                .unwrap()
        };
        let ga = CellularGa::new(Schaffer::new(), make());
        let full = ga.run_seeded(seed).unwrap();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let stop = ((gens as f64) * stop_frac) as usize;
        // stop_frac < 1.0, so stop < gens and the run must suspend.
        let cp = match ga.run_until(seed, stop).unwrap() {
            RunStatus::Suspended(cp) => cp,
            RunStatus::Complete(_) => panic!("stop {stop} < gens {gens} must suspend"),
        };
        prop_assert_eq!(cp.gen, stop);
        let restored = CellularCheckpoint::from_text(&cp.to_text()).unwrap();
        prop_assert_eq!(&restored, &*cp);
        let resumed = ga.resume(&restored).unwrap();
        prop_assert_eq!(resumed.front_objectives(), full.front_objectives());
        prop_assert_eq!(&resumed.history, &full.history);
        prop_assert_eq!(resumed.evaluations, full.evaluations);
        prop_assert_eq!(scrub(resumed.stats.clone()), scrub(full.stats.clone()));
        let genes = |r: &RunOutcome| r
            .population
            .iter()
            .map(|m| m.genes.clone())
            .collect::<Vec<_>>();
        prop_assert_eq!(genes(&resumed), genes(&full));
    }
}
