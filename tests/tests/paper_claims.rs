//! Miniature-scale checks of the paper's qualitative claims, fast enough
//! for CI (the full-budget evidence lives in the `dse-bench` harness and
//! `EXPERIMENTS.md`).

use analog_dse::moea::hypervolume::hypervolume_2d;
use analog_dse::moea::problems::NarrowingCorridor;
use analog_dse::moea::Individual;
use analog_dse::sacga::anneal::ProbabilityShaper;
use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use analog_dse::sacga::sacga::{CompetitionMode, Sacga, SacgaConfig};
use campaign::{Campaign, CampaignReport, CampaignRunner, Metric, MetricSpec, RunnerConfig};
use engine::{CacheConfig, SharedCache};
use moea::Evaluation;
use sacga::telemetry::DynOptimizer;

fn corridor() -> NarrowingCorridor {
    NarrowingCorridor::new(0.04)
}

fn run_engine(partitions: usize, gens: usize, mode: CompetitionMode, seed: u64) -> Vec<Individual> {
    let cfg = SacgaConfig::builder()
        .population_size(60)
        .generations(gens)
        .partitions(partitions)
        .phase1_max(15)
        .slice_range(-1.0, 0.0)
        .mode(mode)
        .build()
        .unwrap();
    Sacga::new(corridor(), cfg).run_seeded(seed).unwrap().front
}

/// The paper's headline diversity claim, tested as a distribution
/// rather than as a single lucky seed: across a pinned 16-seed
/// campaign, the 8-partition SACGA's fronts occupy significantly more
/// coverage-axis bins than the 1-partition "Only Global" engine (exact
/// one-sided rank-sum, p < 0.05) while its hypervolume is not
/// significantly worse at the same level.
#[test]
fn sacga_diversity_beats_only_global_across_seed_campaign() {
    let seeds: Vec<u64> = (0..16).map(|i| 100 + i).collect();
    let arm = |partitions: usize| {
        move |shared: Option<&SharedCache<Evaluation>>| {
            let mut b = SacgaConfig::builder()
                .population_size(60)
                .generations(120)
                .partitions(partitions)
                .phase1_max(15)
                .slice_range(-1.0, 0.0)
                .mode(CompetitionMode::Annealed);
            if let Some(cache) = shared {
                b = b.shared_cache(cache.clone());
            }
            let cfg = b.build().unwrap();
            Box::new(Sacga::new(corridor(), cfg)) as Box<dyn DynOptimizer>
        }
    };
    let campaign = Campaign::new("corridor-diversity")
        .arm("sacga8", arm(8))
        .arm("tpg", arm(1))
        .seeds(seeds);
    let runner = CampaignRunner::new(
        RunnerConfig::default()
            .threads(4)
            .shared_cache(CacheConfig::with_capacity(1 << 14)),
    );
    let results = runner.run(&campaign).unwrap();
    let labels: Vec<String> = campaign
        .arms()
        .iter()
        .map(|a| a.label().to_string())
        .collect();
    let spec = MetricSpec::new([0.0, 3.0], (-1.0, 0.0), 10);
    let report = CampaignReport::build(campaign.name(), &labels, &results, &spec);

    let occ = report
        .comparison("sacga8", "tpg", Metric::Occupancy)
        .unwrap();
    assert!(
        occ.p_a_greater < 0.05,
        "partitioned fronts must be significantly more diverse: \
         U = {}, p = {}",
        occ.u_a,
        occ.p_a_greater
    );
    let hv = report
        .comparison("sacga8", "tpg", Metric::Hypervolume)
        .unwrap();
    assert!(
        hv.p_b_greater >= 0.05,
        "partitioning must not significantly hurt convergence: \
         U = {}, p(tpg better) = {}",
        hv.u_a,
        hv.p_b_greater
    );
}

#[test]
fn annealed_promotion_converges_better_than_local_only() {
    // Sec. 4.3/4.4: pure local competition advances the front slowly;
    // mixing in global competition speeds it up. Compare conventional
    // hypervolume (higher better) at equal budgets, averaged over seeds.
    let reference = [0.0, 3.0];
    let mut hv_annealed = 0.0;
    let mut hv_local = 0.0;
    for seed in [1u64, 2, 3] {
        let annealed = run_engine(8, 150, CompetitionMode::Annealed, seed);
        let local = run_engine(8, 150, CompetitionMode::LocalOnly, seed);
        let pts = |f: &[Individual]| -> Vec<[f64; 2]> {
            f.iter().map(|m| [m.objective(0), m.objective(1)]).collect()
        };
        hv_annealed += hypervolume_2d(&pts(&annealed), reference);
        hv_local += hypervolume_2d(&pts(&local), reference);
    }
    assert!(
        hv_annealed >= hv_local * 0.98,
        "annealed promotion should not converge worse: {hv_annealed} vs {hv_local}"
    );
}

#[test]
fn mesacga_needs_no_partition_tuning() {
    // Fig. 6/11 claim in miniature: MESACGA should be competitive with a
    // reasonable static partition choice without tuning m.
    let mes_cfg = MesacgaConfig::builder()
        .population_size(60)
        .phase1_max(15)
        .phases(vec![
            PhaseSpec::new(12, 45),
            PhaseSpec::new(6, 45),
            PhaseSpec::new(2, 45),
        ])
        .slice_range(-1.0, 0.0)
        .build()
        .unwrap();
    let mes = Mesacga::new(corridor(), mes_cfg).run_seeded(9).unwrap();
    let static8 = run_engine(8, 150, CompetitionMode::Annealed, 9);
    let pts = |f: &[Individual]| -> Vec<[f64; 2]> {
        f.iter().map(|m| [m.objective(0), m.objective(1)]).collect()
    };
    let hv_mes = hypervolume_2d(&pts(&mes.front), [0.0, 3.0]);
    let hv_static = hypervolume_2d(&pts(&static8), [0.0, 3.0]);
    assert!(
        hv_mes >= hv_static * 0.9,
        "MESACGA {hv_mes} should be within 10% of a tuned static SACGA {hv_static}"
    );
}

#[test]
fn promotion_counts_grow_across_phase_two() {
    // The annealing schedule must actually shift competition from local to
    // global within a run (cf. Fig. 4).
    let cfg = SacgaConfig::builder()
        .population_size(60)
        .generations(120)
        .partitions(8)
        .phase1_max(15)
        .slice_range(-1.0, 0.0)
        .build()
        .unwrap();
    let r = Sacga::new(corridor(), cfg).run_seeded(3).unwrap();
    let phase2: Vec<usize> = r
        .history
        .iter()
        .filter(|h| h.phase == 2)
        .map(|h| h.promoted)
        .collect();
    let early: usize = phase2.iter().take(10).sum();
    let late: usize = phase2.iter().rev().take(10).sum();
    assert!(
        late > early,
        "promotions must rise as T_A cools: {early} -> {late}"
    );
}

#[test]
fn shaper_targets_are_respected_in_a_live_run() {
    // End-to-end: with targets (0.5, 0.1, 0.9), by the final generations
    // nearly every locally superior solution participates globally.
    let (policy, schedule) = ProbabilityShaper::standard().solve(5, 200).unwrap();
    // average probability across i=1..5 at the end of the span
    let t_end = schedule.temperature(200);
    let avg_end: f64 = (1..=5).map(|i| policy.probability(i, t_end)).sum::<f64>() / 5.0;
    assert!(
        avg_end > 0.9,
        "end-of-span participation too low: {avg_end}"
    );
    let t_start = schedule.temperature(0);
    let avg_start: f64 = (1..=5).map(|i| policy.probability(i, t_start)).sum::<f64>() / 5.0;
    assert!(
        avg_start < 0.1,
        "start-of-span participation too high: {avg_start}"
    );
}
