//! Telemetry acceptance tests for the unified `Optimizer` API: all five
//! optimization loops emit the structured `RunEvent` stream with the same
//! invariants, instrumentation never perturbs a seeded run, and the JSONL
//! codec round-trips every event bit-exactly.

use analog_dse::moea::nsga2::{Nsga2, Nsga2Config};
use analog_dse::moea::problems::Schaffer;
use analog_dse::moea::{RunOutcome, RunStatus};
use analog_dse::sacga::island::{IslandConfig, IslandGa};
use analog_dse::sacga::local::LocalCompetitionGaBuilder;
use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};
use analog_dse::sacga::telemetry::{
    EventKind, FaultRateAlarm, InfeasibilityAlarm, JsonlSink, MemorySink, MetricsSink, Optimizer,
    RunEvent, Sink, StallDetector, Tee,
};

const SEED: u64 = 23;

/// A sink that wants only `wanted` kinds and panics if a run loop hands
/// it anything else — proving the loops short-circuit on
/// [`Sink::wants`] instead of constructing and emitting unwatched
/// events.
struct CountingSink {
    wanted: &'static [EventKind],
    counts: Vec<(EventKind, usize)>,
}

impl CountingSink {
    fn new(wanted: &'static [EventKind]) -> Self {
        CountingSink {
            wanted,
            counts: Vec::new(),
        }
    }

    fn count(&self, kind: EventKind) -> usize {
        self.counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }
}

impl Sink for CountingSink {
    fn record(&mut self, event: &RunEvent) {
        let kind = event.kind();
        assert!(
            self.wanted.contains(&kind),
            "loop recorded unwatched event kind {kind:?}"
        );
        match self.counts.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.counts.push((kind, 1)),
        }
    }

    fn wants(&self, kind: EventKind) -> bool {
        self.wanted.contains(&kind)
    }
}

fn generation_ends(events: &[RunEvent]) -> Vec<usize> {
    events
        .iter()
        .filter_map(|e| match e {
            RunEvent::GenerationEnd { generation, .. } => Some(*generation),
            _ => None,
        })
        .collect()
}

/// Runs `ga` twice — bare and instrumented — and checks the core stream
/// invariants: bit-identical outcomes, and exactly one `GenerationEnd`
/// per executed generation, in order, none for the initial population.
fn check_stream_invariants<O: Optimizer>(ga: &O) -> (RunOutcome, Vec<RunEvent>) {
    let bare = ga.run(SEED).unwrap();
    let mut sink = MemorySink::new();
    let watched = ga.run_with(SEED, &mut sink).unwrap();
    assert_eq!(
        bare.front_objectives(),
        watched.front_objectives(),
        "{}: sink attached must not perturb the run",
        ga.algorithm()
    );
    assert_eq!(bare.history, watched.history, "{}", ga.algorithm());
    assert_eq!(bare.evaluations, watched.evaluations, "{}", ga.algorithm());
    let ends = generation_ends(sink.events());
    assert_eq!(
        ends,
        (1..=watched.generations).collect::<Vec<_>>(),
        "{}: one GenerationEnd per executed generation",
        ga.algorithm()
    );
    (watched, sink.into_events())
}

#[test]
fn all_five_algorithms_emit_one_generation_end_per_generation() {
    let (_, nsga2_events) = check_stream_invariants(&Nsga2::new(
        Schaffer::new(),
        Nsga2Config::builder()
            .population_size(20)
            .generations(12)
            .build()
            .unwrap(),
    ));
    assert!(nsga2_events
        .iter()
        .all(|e| !matches!(e, RunEvent::PhaseTransition { .. })));

    check_stream_invariants(
        &LocalCompetitionGaBuilder::new()
            .population_size(20)
            .generations(12)
            .partitions(4)
            .build(Schaffer::new())
            .unwrap(),
    );

    let (sacga_out, sacga_events) = check_stream_invariants(&Sacga::new(
        Schaffer::new(),
        SacgaConfig::builder()
            .population_size(24)
            .generations(15)
            .partitions(4)
            .build()
            .unwrap(),
    ));
    let transitions: Vec<&RunEvent> = sacga_events
        .iter()
        .filter(|e| matches!(e, RunEvent::PhaseTransition { .. }))
        .collect();
    assert_eq!(transitions.len(), 1, "SACGA crosses one phase boundary");
    assert!(matches!(
        transitions[0],
        RunEvent::PhaseTransition { generation, .. } if *generation == sacga_out.gen_t
    ));

    let (mes_out, mes_events) = check_stream_invariants(&Mesacga::new(
        Schaffer::new(),
        MesacgaConfig::builder()
            .population_size(24)
            .phase1_max(5)
            .phases(vec![PhaseSpec::new(4, 6), PhaseSpec::new(1, 6)])
            .build()
            .unwrap(),
    ));
    let phases = mes_events
        .iter()
        .filter(|e| matches!(e, RunEvent::PhaseTransition { .. }))
        .count();
    assert_eq!(phases, 2, "one PhaseTransition per expanding phase");
    assert_eq!(mes_out.phase_fronts.len(), 2);

    let (island_out, island_events) = check_stream_invariants(&IslandGa::new(
        Schaffer::new(),
        IslandConfig::builder()
            .population_size(32)
            .generations(20)
            .islands(4)
            .migration_interval(5)
            .migrants(2)
            .build()
            .unwrap(),
    ));
    let migrations = island_events
        .iter()
        .filter(|e| matches!(e, RunEvent::Promotion { .. }))
        .count();
    assert_eq!(migrations, island_out.migrations);
}

#[test]
fn jsonl_log_round_trips_into_the_memory_stream() {
    // Tee a run into a memory sink and a JSONL byte buffer; parsing the
    // log back must reproduce the in-memory event sequence exactly,
    // floats included.
    let ga = Sacga::new(
        Schaffer::new(),
        SacgaConfig::builder()
            .population_size(24)
            .generations(12)
            .partitions(4)
            .build()
            .unwrap(),
    );
    let mut tee = Tee::new(MemorySink::new(), JsonlSink::new(Vec::new()));
    ga.run_with(SEED, &mut tee).unwrap();
    tee.flush().unwrap();
    let (memory, jsonl) = tee.into_inner();
    let lines_written = jsonl.lines_written();
    let log = String::from_utf8(jsonl.into_inner().unwrap()).unwrap();
    let replayed: Vec<RunEvent> = log
        .lines()
        .map(|l| RunEvent::from_json(l).expect("line parses"))
        .collect();
    assert_eq!(replayed.len() as u64, lines_written);
    assert_eq!(replayed, memory.into_events());
}

#[test]
fn resumed_runs_emit_events_only_for_generations_they_execute() {
    let ga = Sacga::new(
        Schaffer::new(),
        SacgaConfig::builder()
            .population_size(24)
            .generations(14)
            .partitions(4)
            .build()
            .unwrap(),
    );
    let mut first = MemorySink::new();
    let cp = match ga.run_until_with(SEED, 6, &mut first).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend at gen 6"),
    };
    assert_eq!(generation_ends(first.events()), (1..=6).collect::<Vec<_>>());
    assert!(first
        .events()
        .iter()
        .any(|e| matches!(e, RunEvent::CheckpointWritten { generation: 6 })));

    let mut second = MemorySink::new();
    let resumed = ga.resume_with(&cp, &mut second).unwrap();
    assert_eq!(resumed.generations, 14);
    // Pre-checkpoint history is restored but not replayed as events.
    assert_eq!(
        generation_ends(second.events()),
        (7..=14).collect::<Vec<_>>()
    );
}

#[test]
fn metrics_sink_computes_one_row_per_generation() {
    let ga = Mesacga::new(
        Schaffer::new(),
        MesacgaConfig::builder()
            .population_size(24)
            .phase1_max(5)
            .phases(vec![PhaseSpec::new(4, 6), PhaseSpec::new(1, 6)])
            .build()
            .unwrap(),
    );
    let mut metrics = MetricsSink::new(vec![16.0, 16.0]).with_occupancy(0, 0.0, 4.0, 8);
    let outcome = ga.run_with(SEED, &mut metrics).unwrap();
    let rows = metrics.rows();
    assert_eq!(rows.len(), outcome.generations);
    let last = rows.last().unwrap();
    assert!(last.hypervolume > 0.0);
    assert!(last.front_size > 0);
    assert!(last.occupancy.unwrap() > 0.0);
    assert!(!metrics.wants(EventKind::Promotion));
}

/// Runs `ga` with a sink wanting only `StageTiming` (record panics on
/// any other kind) and with a sink wanting nothing (record panics on
/// everything), checking the short-circuit contract and the
/// one-StageTiming-per-generation invariant.
fn check_wants_short_circuit<O: Optimizer>(ga: &O) {
    let mut timing_only = CountingSink::new(&[EventKind::StageTiming]);
    let watched = ga.run_with(SEED, &mut timing_only).unwrap();
    assert_eq!(
        timing_only.count(EventKind::StageTiming),
        watched.generations,
        "{}: one StageTiming per executed generation",
        ga.algorithm()
    );
    let bare = ga.run(SEED).unwrap();
    assert_eq!(
        bare.front_objectives(),
        watched.front_objectives(),
        "{}: timing collection must not perturb the run",
        ga.algorithm()
    );

    let mut nothing = CountingSink::new(&[]);
    ga.run_with(SEED, &mut nothing).unwrap();
    assert!(
        nothing.counts.is_empty(),
        "{}: a sink wanting nothing must never see record()",
        ga.algorithm()
    );
}

#[test]
fn wants_short_circuits_across_all_five_loops() {
    check_wants_short_circuit(&Nsga2::new(
        Schaffer::new(),
        Nsga2Config::builder()
            .population_size(20)
            .generations(10)
            .build()
            .unwrap(),
    ));
    check_wants_short_circuit(
        &LocalCompetitionGaBuilder::new()
            .population_size(20)
            .generations(10)
            .partitions(4)
            .build(Schaffer::new())
            .unwrap(),
    );
    check_wants_short_circuit(&Sacga::new(
        Schaffer::new(),
        SacgaConfig::builder()
            .population_size(24)
            .generations(12)
            .partitions(4)
            .build()
            .unwrap(),
    ));
    check_wants_short_circuit(&Mesacga::new(
        Schaffer::new(),
        MesacgaConfig::builder()
            .population_size(24)
            .phase1_max(5)
            .phases(vec![PhaseSpec::new(4, 5), PhaseSpec::new(1, 5)])
            .build()
            .unwrap(),
    ));
    check_wants_short_circuit(&IslandGa::new(
        Schaffer::new(),
        IslandConfig::builder()
            .population_size(32)
            .generations(12)
            .islands(4)
            .migration_interval(4)
            .migrants(2)
            .build()
            .unwrap(),
    ));
}

#[test]
fn stage_timing_follows_its_generation_end_and_balances_engine_counters() {
    let ga = Sacga::new(
        Schaffer::new(),
        SacgaConfig::builder()
            .population_size(24)
            .generations(12)
            .partitions(4)
            .build()
            .unwrap(),
    );
    let mut sink = MemorySink::new();
    let outcome = ga.run_with(SEED, &mut sink).unwrap();
    let events = sink.events();
    let mut timed = 0;
    let mut replayed_evals = 0;
    for (i, event) in events.iter().enumerate() {
        let RunEvent::StageTiming {
            generation,
            stages,
            candidates,
            evaluations,
            cache_hits,
        } = event
        else {
            continue;
        };
        timed += 1;
        replayed_evals += evaluations;
        // The breakdown belongs to the generation that just ended.
        let last_end = events[..i]
            .iter()
            .rev()
            .find_map(|e| match e {
                RunEvent::GenerationEnd { generation, .. } => Some(*generation),
                _ => None,
            })
            .expect("StageTiming follows a GenerationEnd");
        assert_eq!(last_end, *generation);
        assert!(
            stages.total() > 0,
            "gen {generation}: timed spans are empty"
        );
        assert_eq!(
            *candidates,
            evaluations + cache_hits,
            "gen {generation}: engine counters must balance"
        );
    }
    assert_eq!(timed, outcome.generations);
    // Timing deltas cover everything after the initial population.
    assert!(replayed_evals > 0 && replayed_evals <= outcome.evaluations as u64);
}

#[test]
fn watchdogs_stay_silent_on_a_healthy_run() {
    let ga = Sacga::new(
        Schaffer::new(),
        SacgaConfig::builder()
            .population_size(24)
            .generations(15)
            .partitions(4)
            .phase1_max(8)
            .build()
            .unwrap(),
    );
    let stall = StallDetector::new(vec![16.0, 16.0], 50);
    let infeasible = InfeasibilityAlarm::new(8);
    let faults = FaultRateAlarm::new(0.01);
    let mut tee = Tee::new(stall, Tee::new(infeasible, faults));
    ga.run_with(SEED, &mut tee).unwrap();
    let (stall, rest) = tee.into_inner();
    let (infeasible, faults) = rest.into_inner();
    assert!(stall.warnings().is_empty(), "{:?}", stall.warnings());
    assert!(
        infeasible.warnings().is_empty(),
        "{:?}",
        infeasible.warnings()
    );
    assert!(faults.warnings().is_empty(), "{:?}", faults.warnings());
}

#[test]
fn suspension_is_rejected_by_algorithms_that_cannot_checkpoint() {
    let nsga2 = Nsga2::new(
        Schaffer::new(),
        Nsga2Config::builder()
            .population_size(16)
            .generations(5)
            .build()
            .unwrap(),
    );
    assert!(nsga2.run_until(SEED, 3).is_err());
    let island = IslandGa::new(
        Schaffer::new(),
        IslandConfig::builder()
            .population_size(32)
            .generations(5)
            .islands(2)
            .build()
            .unwrap(),
    );
    assert!(island.run_until(SEED, 3).is_err());
}
