//! Integration tests of the optimization service: crash-safe resume,
//! cooperative-preemption determinism across every optimizer loop,
//! exact per-job cache attribution under a shared tenant, watchdog-driven
//! health transitions, and the TCP protocol end to end.
//!
//! The crash-safety golden snapshot lives in `tests/golden/` (re-record
//! with `UPDATE_GOLDEN=1 cargo test -p integration-tests --test server`).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

use dse_server::{
    AlgoSpec, JobHealth, JobSpec, JobStatus, ProblemSpec, Server, ServerConfig, ServerError,
};

mod common;
use common::check_golden;

/// A scratch directory unique to this test binary's runs.
fn scratch_dir(name: &str) -> PathBuf {
    common::scratch_dir("server-it", name)
}

fn sacga_spec(name: &str) -> JobSpec {
    JobSpec::new(
        name,
        ProblemSpec::Schaffer,
        AlgoSpec::Sacga {
            pop: 16,
            gens: 12,
            parts: 4,
        },
        42,
    )
}

fn mesacga_spec(name: &str) -> JobSpec {
    JobSpec::new(
        name,
        ProblemSpec::Schaffer,
        AlgoSpec::Mesacga { pop: 16, span: 12 },
        42,
    )
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        ..ServerConfig::new()
    }
}

/// Runs `specs` on a fresh uninterrupted server and returns each job's
/// final `outcome.cell` bytes.
fn reference_outcomes(tag: &str, specs: &[JobSpec], workers: usize) -> Vec<Vec<u8>> {
    let root = scratch_dir(tag);
    let server = Server::open(&root, config(workers)).unwrap();
    let ids: Vec<_> = specs
        .iter()
        .map(|s| server.submit(s.clone()).unwrap())
        .collect();
    server.run_until_idle().unwrap();
    let outcomes = ids
        .iter()
        .map(|&id| std::fs::read(server.store().outcome_path(id)).unwrap())
        .collect();
    let _ = std::fs::remove_dir_all(&root);
    outcomes
}

#[test]
fn killed_daemon_resumes_in_flight_jobs_bit_identically() {
    let specs = [
        sacga_spec("crash-a").slice(2),
        mesacga_spec("crash-b").slice(3),
    ];
    let root = scratch_dir("crash");

    // Phase 1: start both jobs, kill the pool after 4 slices.
    let server = Server::open(&root, config(2)).unwrap();
    let ids: Vec<_> = specs
        .iter()
        .map(|s| server.submit(s.clone()).unwrap())
        .collect();
    let drained = server.run_slices_at_most(4).unwrap();
    assert!(!drained, "4 slices must not finish 12+12 generations");
    for &id in &ids {
        let view = server.status(id).unwrap();
        assert!(
            !view.status.is_terminal(),
            "job {id} should be in flight, was {:?}",
            view.status
        );
    }
    drop(server);

    // Phase 2: a new daemon over the same store rescans and resumes.
    let server = Server::open(&root, config(2)).unwrap();
    for &id in &ids {
        assert_eq!(server.status(id).unwrap().status, JobStatus::Queued);
    }
    server.run_until_idle().unwrap();
    let resumed: Vec<Vec<u8>> = ids
        .iter()
        .map(|&id| std::fs::read(server.store().outcome_path(id)).unwrap())
        .collect();

    // The resumed fronts must be byte-identical to an uninterrupted run.
    let reference = reference_outcomes("crash-ref", &specs, 1);
    assert_eq!(resumed, reference);

    // And pinned: the SACGA outcome is a committed golden snapshot.
    check_golden(
        "server_sacga_schaffer_seed42.cell",
        std::str::from_utf8(&resumed[0]).unwrap(),
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn torn_state_file_is_reenqueued_and_resumed() {
    let spec = sacga_spec("torn").slice(2);
    let root = scratch_dir("torn");
    let server = Server::open(&root, config(1)).unwrap();
    let id = server.submit(spec.clone()).unwrap();
    // Make some progress, then die.
    assert!(!server.run_slices_at_most(2).unwrap());
    drop(server);

    // Simulate a daemon killed mid-write: a state file cut off without
    // its `end` marker.
    let state_path = root.join(format!("job_{id}")).join("state.job");
    std::fs::write(&state_path, "jobstate v1\nstatus runn").unwrap();

    let server = Server::open(&root, config(1)).unwrap();
    let view = server.status(id).unwrap();
    assert_eq!(view.status, JobStatus::Queued, "torn state means in flight");
    server.run_until_idle().unwrap();
    assert_eq!(server.status(id).unwrap().status, JobStatus::Done);

    let resumed = std::fs::read(server.store().outcome_path(id)).unwrap();
    let reference = reference_outcomes("torn-ref", &[spec], 1);
    assert_eq!(vec![resumed], reference);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn preemption_determinism_across_all_loops() {
    // A job suspended and resumed K times at arbitrary generation
    // boundaries must produce the same outcome as an unpreempted run —
    // for every optimizer loop. Loops that cannot checkpoint (NSGA-II,
    // island) ignore the quantum and run to completion, so the claim
    // holds trivially for them.
    let arms: Vec<(&str, AlgoSpec)> = vec![
        (
            "sacga",
            AlgoSpec::Sacga {
                pop: 16,
                gens: 10,
                parts: 4,
            },
        ),
        (
            "local",
            AlgoSpec::Local {
                pop: 16,
                gens: 10,
                parts: 4,
            },
        ),
        ("mesacga", AlgoSpec::Mesacga { pop: 16, span: 12 }),
        ("nsga2", AlgoSpec::Nsga2 { pop: 16, gens: 10 }),
        (
            "island",
            AlgoSpec::Island {
                pop: 32,
                gens: 10,
                islands: 2,
            },
        ),
        (
            "cellular",
            AlgoSpec::parse("cellular:pop=32,gens=10,topo=ring,cells=4,interval=4,open=25")
                .unwrap(),
        ),
    ];
    for (label, algo) in arms {
        let mut outcomes = Vec::new();
        for slice in [0usize, 1, 3] {
            let root = scratch_dir(&format!("preempt-{label}-{slice}"));
            let server = Server::open(&root, config(1)).unwrap();
            let spec = JobSpec::new(
                format!("preempt-{label}"),
                ProblemSpec::Schaffer,
                algo.clone(),
                42,
            )
            .slice(slice);
            let id = server.submit(spec).unwrap();
            server.run_until_idle().unwrap();
            let view = server.status(id).unwrap();
            assert_eq!(view.status, JobStatus::Done, "{label} slice={slice}");
            outcomes.push(std::fs::read(server.store().outcome_path(id)).unwrap());
            let _ = std::fs::remove_dir_all(&root);
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "{label}: slice=1 diverged from unpreempted run"
        );
        assert_eq!(
            outcomes[0], outcomes[2],
            "{label}: slice=3 diverged from unpreempted run"
        );
    }
}

#[test]
fn contended_queue_preempts_and_still_matches_reference() {
    // Two sliced jobs on one worker force the requeue path: each job
    // yields at its slice boundary because the other is waiting, so the
    // worker alternates between them.
    let specs = [
        sacga_spec("yield-a").slice(2),
        sacga_spec("yield-b").slice(2),
    ];
    // Different seeds so the jobs are distinct runs.
    let specs = [specs[0].clone(), {
        let mut s = specs[1].clone();
        s.seed = 43;
        s
    }];
    let root = scratch_dir("contended");
    let server = Server::open(&root, config(1)).unwrap();
    let ids: Vec<_> = specs
        .iter()
        .map(|s| server.submit(s.clone()).unwrap())
        .collect();
    server.run_until_idle().unwrap();
    let interleaved: Vec<Vec<u8>> = ids
        .iter()
        .map(|&id| std::fs::read(server.store().outcome_path(id)).unwrap())
        .collect();
    let reference = reference_outcomes("contended-ref", &specs, 1);
    assert_eq!(interleaved, reference);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shared_tenant_cache_attribution_is_exact() {
    // Two jobs in one tenant run the identical (problem, algo, seed)
    // configuration: the second is answered almost entirely from the
    // shared cache, yet per-job counters attribute every candidate
    // exactly, and both fronts match an uncached solo run byte for byte.
    let a = sacga_spec("cache-a").tenant("acme");
    let b = sacga_spec("cache-b").tenant("acme");
    let root = scratch_dir("tenant");
    let server = Server::open(&root, config(1)).unwrap();
    let id_a = server.submit(a).unwrap();
    let id_b = server.submit(b).unwrap();
    server.run_until_idle().unwrap();

    let va = server.status(id_a).unwrap();
    let vb = server.status(id_b).unwrap();
    // Exact per-job accounting: every candidate is either evaluated or
    // a cache hit, per job, even though the cache is shared.
    assert_eq!(va.candidates, va.evaluations + va.cache_hits);
    assert_eq!(vb.candidates, vb.evaluations + vb.cache_hits);
    assert_eq!(va.candidates, vb.candidates, "same seed, same stream");
    // The first job filled the cache the second one drained.
    assert!(va.evaluations > 0);
    let total_hits = va.cache_hits + vb.cache_hits;
    assert!(
        total_hits > 0,
        "identical runs in one tenant must share evaluations"
    );
    assert!(
        va.evaluations + vb.evaluations < va.candidates + vb.candidates,
        "the tenant cache absorbed no work"
    );

    // Scheduling must not leak into results: both outcomes equal the
    // uncached reference.
    let reference = reference_outcomes("tenant-ref", &[sacga_spec("solo")], 1);
    let out_a = std::fs::read(server.store().outcome_path(id_a)).unwrap();
    let out_b = std::fs::read(server.store().outcome_path(id_b)).unwrap();
    let strip_name = |bytes: &[u8]| -> Vec<u8> { bytes.to_vec() };
    // outcome.cell stores arm label + seed, not the job name, so the
    // bytes are directly comparable across differently-named jobs.
    assert_eq!(strip_name(&out_a), reference[0]);
    assert_eq!(strip_name(&out_b), reference[0]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn health_transitions_healthy_to_stalled_mid_run() {
    // Schaffer converges in a handful of generations; a 5-generation
    // stall window over a 60-generation run must fire long before the
    // end. Suspend the job partway to observe the health endpoint in
    // its live (non-terminal) state.
    let spec = JobSpec::new(
        "stall",
        ProblemSpec::Schaffer,
        AlgoSpec::Sacga {
            pop: 24,
            gens: 60,
            parts: 4,
        },
        42,
    )
    .slice(10)
    .stall_window(5);
    let root = scratch_dir("stall");
    let server = Server::open(&root, config(1)).unwrap();
    let id = server.submit(spec).unwrap();
    assert_eq!(
        server.health(id).unwrap(),
        JobHealth::Healthy,
        "queued jobs start healthy"
    );
    // 4 slices = 40 generations, then a forced suspension.
    assert!(!server.run_slices_at_most(4).unwrap());
    let view = server.status(id).unwrap();
    assert!(!view.status.is_terminal());
    assert_eq!(
        view.health,
        JobHealth::Stalled,
        "plateau must trip the detector"
    );
    // The budget halt simulated a kill, so finish under a fresh daemon:
    // terminal status masks watchdog health at the endpoint, but the
    // persisted state keeps the stall on record.
    drop(server);
    let server = Server::open(&root, config(1)).unwrap();
    server.run_until_idle().unwrap();
    assert_eq!(server.health(id).unwrap(), JobHealth::Done);
    let state = server.store().read_state(id).unwrap();
    assert_eq!(state.health, JobHealth::Stalled);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn health_transitions_healthy_to_faulty_under_fault_injection() {
    // Inject non-finite evaluations at 20% — far above the 1% alarm
    // threshold — and watch the health endpoint flip to faulty.
    let spec = JobSpec::new(
        "faulty",
        ProblemSpec::Schaffer,
        AlgoSpec::Sacga {
            pop: 16,
            gens: 20,
            parts: 4,
        },
        19,
    )
    .slice(5)
    .fault_alarm(0.01)
    .inject_nonfinite(0.2);
    let root = scratch_dir("faulty");
    let server = Server::open(&root, config(1)).unwrap();
    let id = server.submit(spec).unwrap();
    assert_eq!(server.health(id).unwrap(), JobHealth::Healthy);
    assert!(!server.run_slices_at_most(2).unwrap());
    let view = server.status(id).unwrap();
    assert!(!view.status.is_terminal());
    assert_eq!(view.health, JobHealth::Faulty);
    // Finish under a fresh daemon; the fault record survives the restart.
    drop(server);
    let server = Server::open(&root, config(1)).unwrap();
    server.run_until_idle().unwrap();
    assert_eq!(server.health(id).unwrap(), JobHealth::Done);
    assert_eq!(
        server.store().read_state(id).unwrap().health,
        JobHealth::Faulty
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Candidate attribution must balance exactly: every candidate a job
/// submits is either evaluated, answered from cache, or screened out.
fn assert_attribution_balances(view: &dse_server::JobView) {
    assert_eq!(
        view.candidates,
        view.evaluations + view.cache_hits + view.screened,
        "attribution must balance for job {}: {view:?}",
        view.name
    );
}

#[test]
fn screened_job_attribution_balances_end_to_end() {
    // A drivable job with the surrogate screen enabled: screened
    // candidates are counted separately from evaluations and the
    // persisted state carries the attribution.
    let spec = JobSpec::new(
        "screened",
        ProblemSpec::Drivable,
        AlgoSpec::Sacga {
            pop: 48,
            gens: 8,
            parts: 4,
        },
        42,
    )
    .screen();
    let root = scratch_dir("screened");
    let server = Server::open(&root, config(1)).unwrap();
    let id = server.submit(spec).unwrap();
    server.run_until_idle().unwrap();
    let view = server.status(id).unwrap();
    assert_eq!(view.status, JobStatus::Done);
    assert!(view.screened > 0, "the screen never fired: {view:?}");
    assert!(
        view.evaluations > 0,
        "the screen must not answer everything"
    );
    assert_attribution_balances(&view);
    // The attribution survives persistence.
    let state = server.store().read_state(id).unwrap();
    assert_eq!(state.screened, view.screened);
    assert_eq!(state.candidates, view.candidates);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn attribution_balances_across_kill_and_resume() {
    // A screened drivable job killed mid-run and resumed by a fresh
    // daemon must report the same balanced attribution as an
    // uninterrupted run: checkpoints carry the engine counters.
    let make_spec = |name: &str| {
        JobSpec::new(
            name,
            ProblemSpec::Drivable,
            AlgoSpec::Sacga {
                pop: 48,
                gens: 8,
                parts: 4,
            },
            42,
        )
        .screen()
        .slice(2)
    };
    let root = scratch_dir("kill-attr");
    let server = Server::open(&root, config(1)).unwrap();
    let id = server.submit(make_spec("kill-attr")).unwrap();
    assert!(!server.run_slices_at_most(2).unwrap());
    drop(server);
    let server = Server::open(&root, config(1)).unwrap();
    server.run_until_idle().unwrap();
    let resumed = server.status(id).unwrap();
    assert_eq!(resumed.status, JobStatus::Done);
    assert_attribution_balances(&resumed);
    let _ = std::fs::remove_dir_all(&root);

    // Uninterrupted reference with the same spec (name-insensitive
    // counters): identical candidate/evaluation/screened totals.
    let root = scratch_dir("kill-attr-ref");
    let server = Server::open(&root, config(1)).unwrap();
    let rid = server.submit(make_spec("kill-attr-ref")).unwrap();
    server.run_until_idle().unwrap();
    let reference = server.status(rid).unwrap();
    assert_attribution_balances(&reference);
    assert_eq!(resumed.candidates, reference.candidates);
    assert_eq!(resumed.evaluations, reference.evaluations);
    assert_eq!(resumed.cache_hits, reference.cache_hits);
    assert_eq!(resumed.screened, reference.screened);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn attribution_balances_under_contended_preemption_slices() {
    // Two sliced jobs alternating on one worker: per-job attribution
    // stays exact through every requeue.
    let a = sacga_spec("attr-a").slice(2).tenant("attr");
    let b = {
        let mut s = sacga_spec("attr-b").slice(3).tenant("attr");
        s.seed = 43;
        s
    };
    let root = scratch_dir("preempt-attr");
    let server = Server::open(&root, config(1)).unwrap();
    let id_a = server.submit(a).unwrap();
    let id_b = server.submit(b).unwrap();
    server.run_until_idle().unwrap();
    for id in [id_a, id_b] {
        let view = server.status(id).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert!(view.candidates > 0);
        assert_attribution_balances(&view);
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn duplicate_submission_is_rejected_until_renamed() {
    let root = scratch_dir("dup");
    let server = Server::open(&root, config(1)).unwrap();
    server.submit(sacga_spec("dup")).unwrap();
    assert!(matches!(
        server.submit(sacga_spec("dup")),
        Err(ServerError::DuplicateJob(_))
    ));
    server.submit(sacga_spec("dup2")).unwrap();
    // Duplicates survive restarts: the rescan re-registers known ids.
    drop(server);
    let server = Server::open(&root, config(1)).unwrap();
    assert!(matches!(
        server.submit(sacga_spec("dup")),
        Err(ServerError::DuplicateJob(_))
    ));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn tcp_protocol_end_to_end() {
    let root = scratch_dir("tcp");
    let server = Server::open(&root, config(1)).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve(listener));

        let send = |line: &str| -> Vec<String> {
            let mut stream = TcpStream::connect(addr).unwrap();
            writeln!(stream, "{line}").unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            let mut lines = Vec::new();
            let multi = line.starts_with("list") || line.starts_with("stream");
            for line in reader.lines() {
                let line = line.unwrap();
                let stop = !multi || line.starts_with("end") || line.starts_with("err");
                lines.push(line);
                if stop {
                    break;
                }
            }
            lines
        };

        assert_eq!(send("ping"), vec!["ok pong"]);
        let spec = sacga_spec("tcp").slice(2);
        let resp = send(&format!("submit {}", spec.canonical()));
        let id = resp[0].strip_prefix("ok ").expect(&resp[0]).to_string();

        // Stream the job live: the subscriber follows until `end done`.
        let streamed = send(&format!("stream {id}"));
        assert_eq!(streamed.first().map(String::as_str), Some("ok streaming"));
        assert_eq!(streamed.last().map(String::as_str), Some("end done"));
        let events = streamed.iter().filter(|l| l.starts_with("event ")).count();
        assert!(
            events >= 12,
            "one GenerationEnd per generation, got {events}"
        );

        let status = send(&format!("status {id}"));
        assert!(status[0].contains("status=done"), "{}", status[0]);
        assert!(status[0].contains("generations=12"), "{}", status[0]);

        assert_eq!(send("shutdown"), vec!["ok shutting-down"]);
        daemon.join().unwrap().unwrap();
    });
    let _ = std::fs::remove_dir_all(&root);
}
