//! Golden-master determinism tests: fixed-seed SACGA and MESACGA fronts
//! are committed as snapshots under `tests/golden/`, rendered with exact
//! f64 bit patterns. A run must reproduce its snapshot byte-for-byte
//! whether it is evaluated serially, evaluated in parallel, or killed at
//! a generation boundary and resumed — any drift in the optimizer's
//! arithmetic, RNG consumption, or checkpoint restore shows up here.
//!
//! To re-record after an intentional behavior change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p integration-tests --test golden_master
//! ```

use analog_dse::engine::ParallelEvaluator;
use analog_dse::moea::problems::Schaffer;
use analog_dse::moea::RunStatus;
use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};
use analog_dse::sacga::steady::{SteadyConfig, SteadySacga};
use analog_dse::sacga::telemetry::Optimizer;

mod common;
use common::{check_golden, render_front};

const SEED: u64 = 42;

fn sacga_config() -> SacgaConfig {
    SacgaConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .build()
        .unwrap()
}

fn mesacga_config() -> MesacgaConfig {
    MesacgaConfig::builder()
        .population_size(32)
        .phase1_max(5)
        .phases(vec![
            PhaseSpec::new(6, 7),
            PhaseSpec::new(3, 7),
            PhaseSpec::new(1, 7),
        ])
        .build()
        .unwrap()
}

#[test]
fn sacga_serial_front_matches_snapshot() {
    let r = Sacga::new(Schaffer::new(), sacga_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn sacga_parallel_front_matches_snapshot() {
    let cfg = SacgaConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .evaluator(ParallelEvaluator::with_threads(4))
        .build()
        .unwrap();
    let r = Sacga::new(Schaffer::new(), cfg).run_seeded(SEED).unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn sacga_kill_and_resume_front_matches_snapshot() {
    let ga = Sacga::new(Schaffer::new(), sacga_config());
    let cp = match ga.run_until(SEED, 9).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend at gen 9"),
    };
    // Simulate a process restart: the checkpoint crosses a text boundary.
    let cp = analog_dse::sacga::SacgaCheckpoint::from_text(&cp.to_text()).unwrap();
    let r = ga.resume(&cp).unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn mesacga_serial_front_matches_snapshot() {
    let r = Mesacga::new(Schaffer::new(), mesacga_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("mesacga_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn mesacga_parallel_front_matches_snapshot() {
    let cfg = MesacgaConfig::builder()
        .population_size(32)
        .phase1_max(5)
        .phases(vec![
            PhaseSpec::new(6, 7),
            PhaseSpec::new(3, 7),
            PhaseSpec::new(1, 7),
        ])
        .evaluator(ParallelEvaluator::with_threads(4))
        .build()
        .unwrap();
    let r = Mesacga::new(Schaffer::new(), cfg).run_seeded(SEED).unwrap();
    check_golden("mesacga_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn mesacga_kill_and_resume_front_matches_snapshot() {
    let ga = Mesacga::new(Schaffer::new(), mesacga_config());
    // Stop inside the second expanding phase (phase I ends at gen 1 on
    // the unconstrained Schaffer problem, phases run 7 generations each).
    let cp = match ga.run_until(SEED, 12).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend at gen 12"),
    };
    let cp = analog_dse::sacga::MesacgaCheckpoint::from_text(&cp.to_text()).unwrap();
    let r = ga.resume(&cp).unwrap();
    check_golden("mesacga_schaffer_seed42.txt", &render_front(&r.front));
}

fn steady_config() -> SteadyConfig {
    SteadyConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .window(48)
        .quantum(8)
        .build()
        .unwrap()
}

#[test]
fn steady_serial_front_matches_snapshot() {
    let r = SteadySacga::new(Schaffer::new(), steady_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("steady_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn steady_parallel_front_matches_snapshot() {
    let cfg = SteadyConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .window(48)
        .quantum(8)
        .evaluator(ParallelEvaluator::with_threads(4))
        .build()
        .unwrap();
    let r = SteadySacga::new(Schaffer::new(), cfg)
        .run_seeded(SEED)
        .unwrap();
    check_golden("steady_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn steady_kill_and_resume_front_matches_snapshot() {
    let ga = SteadySacga::new(Schaffer::new(), steady_config());
    let cp = match ga.run_until(SEED, 9).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend at gen 9"),
    };
    // The look-ahead runs ahead of the merge frontier, so the rescued
    // pending evaluations cross the text boundary too.
    let cp = analog_dse::sacga::SteadyCheckpoint::from_text(&cp.to_text()).unwrap();
    let r = ga.resume(&cp).unwrap();
    check_golden("steady_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn steady_degenerate_window_matches_the_sacga_snapshot() {
    // With window == quantum == population_size the steady loop executes
    // the generational schedule exactly, so it must reproduce the
    // *generational* SACGA golden byte for byte.
    let cfg = SteadyConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .window(32)
        .quantum(32)
        .build()
        .unwrap();
    let r = SteadySacga::new(Schaffer::new(), cfg)
        .run_seeded(SEED)
        .unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));
}

/// Delegating wrapper that hides a problem's `evaluate_all` override (and
/// cache canonicalizer), forcing the default scalar mapping — used to pin
/// that the batch kernel and the scalar path produce the same fronts.
struct ForceScalar<P>(P);

impl<P: analog_dse::moea::Problem> analog_dse::moea::Problem for ForceScalar<P> {
    fn name(&self) -> &str {
        self.0.name()
    }
    fn bounds(&self) -> &analog_dse::moea::Bounds {
        self.0.bounds()
    }
    fn num_objectives(&self) -> usize {
        self.0.num_objectives()
    }
    fn num_constraints(&self) -> usize {
        self.0.num_constraints()
    }
    fn evaluate(&self, x: &[f64]) -> analog_dse::moea::Evaluation {
        self.0.evaluate(x)
    }
}

fn drivable_config() -> SacgaConfig {
    let (lo, hi) = analog_circuits::DrivableLoadProblem::slice_range();
    SacgaConfig::builder()
        .population_size(16)
        .generations(6)
        .partitions(4)
        .slice_range(lo, hi)
        .build()
        .unwrap()
}

#[test]
fn sacga_drivable_kernel_front_matches_snapshot() {
    // The circuit problem overrides `evaluate_all`, so this run exercises
    // the struct-of-arrays batch kernel end to end.
    let problem = analog_circuits::DrivableLoadProblem::new(analog_circuits::Spec::featured());
    let r = Sacga::new(problem, drivable_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("sacga_drivable_seed42.txt", &render_front(&r.front));
}

#[test]
fn sacga_drivable_scalar_path_matches_the_same_snapshot() {
    // Hiding the kernel behind ForceScalar must reproduce the identical
    // pinned front: the batch path is a pure performance feature.
    let problem = ForceScalar(analog_circuits::DrivableLoadProblem::new(
        analog_circuits::Spec::featured(),
    ));
    let r = Sacga::new(problem, drivable_config())
        .run_seeded(SEED)
        .unwrap();
    check_golden("sacga_drivable_seed42.txt", &render_front(&r.front));
}

#[test]
fn sacga_drivable_with_never_screen_matches_the_same_snapshot() {
    // A never-firing surrogate screen is a provable no-op.
    use analog_circuits::surrogate::{drivable_screen, ScreenThresholds};
    let problem = analog_circuits::DrivableLoadProblem::new(analog_circuits::Spec::featured());
    let screen = drivable_screen(problem.process(), ScreenThresholds::never());
    let (lo, hi) = analog_circuits::DrivableLoadProblem::slice_range();
    let cfg = SacgaConfig::builder()
        .population_size(16)
        .generations(6)
        .partitions(4)
        .slice_range(lo, hi)
        .surrogate_screen(screen)
        .build()
        .unwrap();
    let r = Sacga::new(problem, cfg).run_seeded(SEED).unwrap();
    check_golden("sacga_drivable_seed42.txt", &render_front(&r.front));
}

#[test]
fn sacga_schaffer_with_never_screen_matches_the_same_snapshot() {
    use analog_dse::engine::SurrogateScreen;
    let cfg = SacgaConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .surrogate_screen(SurrogateScreen::new("never", |_genes: &[f64]| None))
        .build()
        .unwrap();
    let r = Sacga::new(Schaffer::new(), cfg).run_seeded(SEED).unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));
}

#[test]
fn sacga_front_with_jsonl_sink_attached_matches_snapshot() {
    // ISSUE acceptance: instrumentation must not perturb the run — the
    // golden front is reproduced bit for bit with a JSONL sink attached,
    // and every logged line parses back into a RunEvent.
    use analog_dse::sacga::telemetry::{JsonlSink, RunEvent, Sink};

    let mut sink = JsonlSink::new(Vec::new());
    let r = Sacga::new(Schaffer::new(), sacga_config())
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));

    sink.flush().unwrap();
    let log = String::from_utf8(sink.into_inner().unwrap()).unwrap();
    let events: Vec<RunEvent> = log
        .lines()
        .map(|l| RunEvent::from_json(l).expect("log line parses"))
        .collect();
    assert_eq!(events.len() as u64, log.lines().count() as u64);
    let ends = events
        .iter()
        .filter(|e| matches!(e, RunEvent::GenerationEnd { .. }))
        .count();
    assert_eq!(ends, r.generations);
}

#[test]
fn mesacga_front_with_memory_sink_attached_matches_snapshot() {
    use analog_dse::sacga::telemetry::MemorySink;

    let mut sink = MemorySink::new();
    let r = Mesacga::new(Schaffer::new(), mesacga_config())
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("mesacga_schaffer_seed42.txt", &render_front(&r.front));
    assert!(!sink.events().is_empty());
}

#[test]
fn sacga_front_with_stage_timing_enabled_matches_snapshot() {
    // Stage timers read the monotonic clock but never the RNG, so a
    // run with timing collection forced on (a sink wanting only
    // `StageTiming`) reproduces the committed snapshot bit for bit.
    // The timing payloads themselves are wall-clock and are *not* part
    // of any golden comparison — only their count is checked.
    use analog_dse::sacga::telemetry::{EventKind, RunEvent, Sink};

    struct TimingOnly(usize);
    impl Sink for TimingOnly {
        fn record(&mut self, event: &RunEvent) {
            assert!(matches!(event, RunEvent::StageTiming { .. }));
            self.0 += 1;
        }
        fn wants(&self, kind: EventKind) -> bool {
            kind == EventKind::StageTiming
        }
    }

    let mut sink = TimingOnly(0);
    let r = Sacga::new(Schaffer::new(), sacga_config())
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));
    assert_eq!(sink.0, r.generations);
}

#[test]
fn sacga_front_with_metrics_registry_attached_matches_snapshot() {
    // ISSUE acceptance: mirroring the run into a live metrics registry
    // (engine counter/histogram bundle + run-trajectory sink) is pure
    // observation — the committed golden front is reproduced bit for
    // bit, and the scraped counters balance exactly.
    use analog_dse::engine::{EngineMetrics, MetricsRegistry};
    use analog_dse::sacga::telemetry::RegistrySink;

    let registry = MetricsRegistry::new();
    let labels = [("arm", "sacga")];
    let metrics = EngineMetrics::register(&registry, &labels);
    let cfg = SacgaConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .metrics(metrics.clone())
        .build()
        .unwrap();
    let mut sink = RegistrySink::register(&registry, &labels);
    let r = Sacga::new(Schaffer::new(), cfg)
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("sacga_schaffer_seed42.txt", &render_front(&r.front));
    assert_eq!(metrics.candidates.get(), r.stats.candidates);
    assert_eq!(
        metrics.candidates.get(),
        metrics.evaluations.get() + metrics.cache_hits.get() + metrics.screened.get()
    );
    assert_eq!(metrics.eval_latency.count(), metrics.evaluations.get());
    let text = registry.render_text();
    assert!(text.contains("dse_run_generations_total{arm=\"sacga\"} 20"));
}

#[test]
fn mesacga_front_with_metrics_registry_attached_matches_snapshot() {
    use analog_dse::engine::{EngineMetrics, MetricsRegistry};
    use analog_dse::sacga::telemetry::RegistrySink;

    let registry = MetricsRegistry::new();
    let labels = [("arm", "mesacga")];
    let metrics = EngineMetrics::register(&registry, &labels);
    let cfg = MesacgaConfig::builder()
        .population_size(32)
        .phase1_max(5)
        .phases(vec![
            PhaseSpec::new(6, 7),
            PhaseSpec::new(3, 7),
            PhaseSpec::new(1, 7),
        ])
        .metrics(metrics.clone())
        .build()
        .unwrap();
    let mut sink = RegistrySink::register(&registry, &labels);
    let r = Mesacga::new(Schaffer::new(), cfg)
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("mesacga_schaffer_seed42.txt", &render_front(&r.front));
    assert_eq!(
        metrics.candidates.get(),
        metrics.evaluations.get() + metrics.cache_hits.get() + metrics.screened.get()
    );
}

#[test]
fn steady_front_with_metrics_registry_attached_matches_snapshot() {
    use analog_dse::engine::{EngineMetrics, MetricsRegistry};
    use analog_dse::sacga::telemetry::RegistrySink;

    let registry = MetricsRegistry::new();
    let labels = [("arm", "steady")];
    let metrics = EngineMetrics::register(&registry, &labels);
    let cfg = SteadyConfig::builder()
        .population_size(32)
        .generations(20)
        .partitions(5)
        .window(48)
        .quantum(8)
        .metrics(metrics.clone())
        .build()
        .unwrap();
    let mut sink = RegistrySink::register(&registry, &labels);
    let r = SteadySacga::new(Schaffer::new(), cfg)
        .run_with(SEED, &mut sink)
        .unwrap();
    check_golden("steady_schaffer_seed42.txt", &render_front(&r.front));
    assert_eq!(
        metrics.candidates.get(),
        metrics.evaluations.get() + metrics.cache_hits.get() + metrics.screened.get()
    );
}

#[test]
fn local_island_nsga2_fronts_are_unchanged_by_an_attached_registry() {
    // The remaining loops have no committed snapshot; pin instead that
    // a bare run and a registry-attached run of the same seed produce
    // identical fronts, and that each bundle balances.
    use analog_dse::engine::{EngineMetrics, MetricsRegistry};
    use analog_dse::moea::nsga2::{Nsga2, Nsga2Config};
    use analog_dse::sacga::local::LocalCompetitionGaBuilder;
    use analog_dse::sacga::{IslandConfig, IslandGa};

    let registry = MetricsRegistry::new();
    let balances = |m: &EngineMetrics| {
        assert!(m.candidates.get() > 0);
        assert_eq!(
            m.candidates.get(),
            m.evaluations.get() + m.cache_hits.get() + m.screened.get()
        );
    };

    let local = |metrics: Option<EngineMetrics>| {
        let mut b = LocalCompetitionGaBuilder::new()
            .population_size(24)
            .generations(12)
            .partitions(4);
        if let Some(m) = metrics {
            b = b.metrics(m);
        }
        b.build(Schaffer::new()).unwrap().run_seeded(SEED).unwrap()
    };
    let m = EngineMetrics::register(&registry, &[("arm", "local")]);
    assert_eq!(
        local(None).front_objectives(),
        local(Some(m.clone())).front_objectives()
    );
    balances(&m);

    let island = |metrics: Option<EngineMetrics>| {
        let mut b = IslandConfig::builder()
            .population_size(24)
            .generations(12)
            .islands(3);
        if let Some(m) = metrics {
            b = b.metrics(m);
        }
        IslandGa::new(Schaffer::new(), b.build().unwrap())
            .run_seeded(SEED)
            .unwrap()
    };
    let m = EngineMetrics::register(&registry, &[("arm", "island")]);
    assert_eq!(
        island(None).front_objectives(),
        island(Some(m.clone())).front_objectives()
    );
    balances(&m);

    let nsga2 = |metrics: Option<EngineMetrics>| {
        let mut b = Nsga2Config::builder().population_size(24).generations(12);
        if let Some(m) = metrics {
            b = b.metrics(m);
        }
        Nsga2::new(Schaffer::new(), b.build().unwrap())
            .run_seeded(SEED)
            .unwrap()
    };
    let m = EngineMetrics::register(&registry, &[("arm", "nsga2")]);
    assert_eq!(
        nsga2(None).front_objectives(),
        nsga2(Some(m.clone())).front_objectives()
    );
    balances(&m);
}

#[test]
fn mesacga_front_with_watchdogs_attached_matches_snapshot() {
    use analog_dse::sacga::telemetry::{FaultRateAlarm, InfeasibilityAlarm, StallDetector, Tee};

    let stall = StallDetector::new(vec![16.0, 16.0], 100);
    let infeasible = InfeasibilityAlarm::new(5);
    let faults = FaultRateAlarm::new(0.01);
    let mut tee = Tee::new(stall, Tee::new(infeasible, faults));
    let r = Mesacga::new(Schaffer::new(), mesacga_config())
        .run_with(SEED, &mut tee)
        .unwrap();
    check_golden("mesacga_schaffer_seed42.txt", &render_front(&r.front));
    let (stall, rest) = tee.into_inner();
    let (infeasible, faults) = rest.into_inner();
    assert!(stall.warnings().is_empty());
    assert!(infeasible.warnings().is_empty());
    assert!(faults.warnings().is_empty());
}
