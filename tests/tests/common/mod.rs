//! Helpers shared by the integration-test binaries: bit-exact front
//! rendering, golden-snapshot record/replay, and per-run scratch
//! directories. Each test binary pulls this in with `mod common;`, so
//! any one binary may use only a subset of it.
#![allow(dead_code)]

use analog_dse::moea::individual::Individual;
use std::path::PathBuf;

/// Renders a front with exact bit patterns: one member per line, gene
/// bits then objective bits, all as 16-digit hex of `f64::to_bits`.
pub fn render_front(front: &[Individual]) -> String {
    let hex = |vs: &[f64]| {
        vs.iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let mut out = String::new();
    for m in front {
        out.push_str(&format!("{} | {}\n", hex(&m.genes), hex(m.objectives())));
    }
    out
}

/// The committed snapshot path for `name` under `tests/golden/`.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(name)
}

/// Compares against the committed snapshot, or re-records it when the
/// `UPDATE_GOLDEN` environment variable is set.
pub fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}; record it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "output diverged from committed snapshot {}",
        path.display()
    );
}

/// A scratch directory unique to this test run, wiped on entry.
/// `prefix` namespaces the owning test binary (`server-it`, ...).
pub fn scratch_dir(prefix: &str, name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("{prefix}-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
