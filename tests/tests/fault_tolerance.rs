//! Fault-tolerance and checkpoint/resume acceptance tests, exercised
//! through the public `analog-dse` facade exactly as a user would:
//!
//! * a seeded MESACGA run killed mid-Phase-II and resumed (including
//!   across a serialized-text "process restart") reproduces the
//!   uninterrupted run's front bit for bit, with continuous engine
//!   counters;
//! * a fault-injected run whose failures all recover within the retry
//!   budget matches the fault-free front at the same seed, and
//!   `EngineStats` reports the exact injected failure/retry counts;
//! * quarantined candidates never reach the reported front;
//! * an exhausted retry budget under the abort policy surfaces as a
//!   typed `OptimizeError::EvaluationFailed`.

use analog_dse::circuits::{DrivableLoadProblem, Spec};
use analog_dse::engine::{EngineStats, FaultKind, FaultPlan, FaultPolicy};
use analog_dse::moea::problems::Schaffer;
use analog_dse::moea::OptimizeError;
use analog_dse::moea::RunStatus;
use analog_dse::sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use analog_dse::sacga::sacga::{Sacga, SacgaConfig};
use analog_dse::sacga::telemetry::Optimizer;
use analog_dse::sacga::{MesacgaCheckpoint, SacgaCheckpoint};
use std::time::Duration;

/// Strips wall-clock timing so stats can be compared across runs.
fn scrub(mut stats: EngineStats) -> EngineStats {
    stats.eval_time = Duration::ZERO;
    stats.backoff_time = Duration::ZERO;
    stats
}

fn mesacga_config() -> MesacgaConfig {
    MesacgaConfig::builder()
        .population_size(40)
        .phase1_max(5)
        .phases(vec![
            PhaseSpec::new(8, 10),
            PhaseSpec::new(4, 10),
            PhaseSpec::new(1, 10),
        ])
        .build()
        .unwrap()
}

#[test]
fn mesacga_killed_mid_phase2_resumes_to_identical_front() {
    let full = Mesacga::new(Schaffer::new(), mesacga_config())
        .run_seeded(42)
        .unwrap();
    let ga = Mesacga::new(Schaffer::new(), mesacga_config());
    // Gen 17 is deep inside Phase II (the annealed expanding phases).
    let cp = match ga.run_until(42, 17).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend at gen 17"),
    };
    assert_eq!(cp.state.gen, 17);
    assert!(cp.state.phase1_done);

    // Round-trip through text, as a real kill/restart would.
    let text = cp.to_text();
    let restored = MesacgaCheckpoint::from_text(&text).unwrap();
    assert_eq!(*cp, restored);

    let resumed = ga.resume(&restored).unwrap();
    assert_eq!(resumed.front_objectives(), full.front_objectives());
    assert_eq!(resumed.history, full.history);
    assert_eq!(resumed.gen_t, full.gen_t);
    assert_eq!(scrub(resumed.stats), scrub(full.stats));
}

#[test]
fn sacga_killed_on_circuit_problem_resumes_to_identical_front() {
    // Same invariant on the analog sizing layer: the checkpoint carries
    // 14-gene op-amp candidates with constraint violations intact.
    let config = SacgaConfig::builder()
        .population_size(24)
        .generations(12)
        .partitions(4)
        .slice_range(
            DrivableLoadProblem::slice_range().0,
            DrivableLoadProblem::slice_range().1,
        )
        .build()
        .unwrap();
    let problem = DrivableLoadProblem::new(Spec::featured());
    let full = Sacga::new(&problem, config.clone()).run_seeded(7).unwrap();

    let ga = Sacga::new(&problem, config);
    let cp = match ga.run_until(7, 6).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend at gen 6"),
    };
    let restored = SacgaCheckpoint::from_text(&cp.to_text()).unwrap();
    let resumed = ga.resume(&restored).unwrap();
    assert_eq!(resumed.front_objectives(), full.front_objectives());
    assert_eq!(resumed.history, full.history);
}

#[test]
fn recovered_faults_leave_the_front_untouched_with_exact_accounting() {
    let base = MesacgaConfig::builder()
        .population_size(40)
        .phase1_max(5)
        .phases(vec![
            PhaseSpec::new(8, 10),
            PhaseSpec::new(4, 10),
            PhaseSpec::new(1, 10),
        ]);
    let clean_cfg = base.clone().build().unwrap();
    let faulty_cfg = base
        .fault_policy(FaultPolicy::tolerant(3))
        .inject_faults(FaultPlan::seeded(19).panics(0.04).nonfinite(0.04))
        .build()
        .unwrap();
    let clean = Mesacga::new(Schaffer::new(), clean_cfg)
        .run_seeded(42)
        .unwrap();
    let faulty = Mesacga::new(Schaffer::new(), faulty_cfg)
        .run_seeded(42)
        .unwrap();

    assert_eq!(clean.front_objectives(), faulty.front_objectives());
    let stats = &faulty.stats;
    assert!(stats.failures > 0, "injection should have fired");
    // Every failure is one of ours, each was retried exactly once, and
    // every candidate recovered — no quarantines.
    assert_eq!(
        stats.failures,
        stats.injected_panics + stats.injected_nonfinite
    );
    assert_eq!(stats.retries, stats.failures);
    assert_eq!(stats.recovered, stats.failures);
    assert_eq!(stats.quarantined, 0);
    assert_eq!(clean.stats.failures, 0);
}

#[test]
fn quarantined_candidates_never_reach_the_front() {
    // Candidates picked by the injector stay non-finite on every attempt
    // and end quarantined; the front must still be entirely finite.
    let cfg = SacgaConfig::builder()
        .population_size(24)
        .generations(10)
        .partitions(4)
        .fault_policy(FaultPolicy::tolerant(2))
        .inject_faults(
            FaultPlan::seeded(3)
                .nonfinite(0.1)
                .faults_per_candidate(u32::MAX),
        )
        .build()
        .unwrap();
    let r = Sacga::new(Schaffer::new(), cfg).run_seeded(13).unwrap();
    assert!(r.stats.quarantined > 0, "injection should have quarantined");
    assert!(!r.front.is_empty());
    for m in &r.front {
        assert!(m.objectives().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn exhausted_retry_budget_aborts_with_typed_error() {
    let cfg = SacgaConfig::builder()
        .population_size(8)
        .generations(2)
        .inject_faults(FaultPlan::seeded(1).panics(1.0))
        .build()
        .unwrap();
    let err = Sacga::new(Schaffer::new(), cfg).run_seeded(1).unwrap_err();
    match err {
        OptimizeError::EvaluationFailed(f) => assert_eq!(f.kind, FaultKind::Panic),
        other => panic!("expected EvaluationFailed, got {other:?}"),
    }
}

#[test]
fn resume_under_mismatched_config_is_rejected() {
    let ga = Sacga::new(Schaffer::new(), SacgaConfig::builder().build().unwrap());
    let cp = match ga.run_until(5, 3).unwrap() {
        RunStatus::Suspended(cp) => cp,
        RunStatus::Complete(_) => panic!("run should suspend"),
    };
    // Corrupt the checkpoint: point the partition grid at an objective
    // the problem does not have.
    let mut doctored = (*cp).clone();
    doctored.state.grid_objective = 7;
    assert!(matches!(
        ga.resume(&doctored),
        Err(OptimizeError::InvalidCheckpoint { .. })
    ));
}
