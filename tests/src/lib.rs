//! Integration test crate; see `tests/tests/`.
