//! Shared helpers for the experiment harness binaries (`src/bin/fig*.rs`)
//! that regenerate every figure of the reproduced paper.
//!
//! Each binary prints the figure's series as a table and writes a CSV into
//! `results/`. Budgets mirror the paper: population 100, 800 iterations
//! for the front comparisons (Figs. 2, 5, 8), 1200–1250 for the long
//! studies (Figs. 6, 9, 10, 11), a pure-local phase cap of 200.

use analog_circuits::{DrivableLoadProblem, Spec};
use moea::evaluation::Evaluation;
use moea::individual::Individual;
use moea::metrics::{bin_occupancy, spread};
use moea::nsga2::{Nsga2, Nsga2Config};
use moea::RunOutcome;
use sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use sacga::sacga::{Sacga, SacgaConfig};
use sacga::telemetry::{JsonlSink, MemorySink, Optimizer, RunEvent, Sink, Tee};
use std::io::Write as _;
use std::path::Path;

pub mod trace;

/// Population size used by every paper experiment.
pub const POP: usize = 100;

/// Iteration budget of the front-comparison figures (2, 5, 8).
pub const GENS_MAIN: usize = 800;

/// Pure-local phase cap (the paper quotes a 200-iteration local phase).
pub const PHASE1_MAX: usize = 200;

/// Default seed; override with the first CLI argument.
pub const DEFAULT_SEED: u64 = 42;

/// Memoization-cache capacity of every figure run. The circuit problems
/// quantize designs onto manufacturing grids, so distinct raw gene
/// vectors frequently collapse to one evaluated design; the problems'
/// cache canonicalizer keys the cache by the quantized basis, turning
/// those collisions into hits (they were all misses when raw genes were
/// the key, which is why earlier `BENCH_runtime.json` aggregates showed
/// a 0% hit rate). Cached answers are bit-identical to re-evaluation,
/// so fronts match cache-free runs exactly.
pub const FIG_CACHE_CAPACITY: usize = 1 << 16;

/// Parses `args[1]` as a seed, defaulting to [`DEFAULT_SEED`].
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// The problem instance every figure uses: the drivable-load integrator
/// sizing problem under the featured specification.
pub fn paper_problem() -> DrivableLoadProblem {
    DrivableLoadProblem::new(Spec::featured())
}

/// The TPG baseline (textbook NSGA-II), configured for this harness.
///
/// # Panics
///
/// Panics on configuration errors (static configs in this harness).
pub fn tpg_ga(problem: &DrivableLoadProblem, gens: usize) -> Nsga2<&DrivableLoadProblem> {
    let cfg = Nsga2Config::builder()
        .population_size(POP)
        .generations(gens)
        .cache_capacity(FIG_CACHE_CAPACITY)
        .build()
        .expect("static config");
    Nsga2::new(problem, cfg)
}

/// Runs the TPG baseline (NSGA-II) and returns its outcome.
///
/// # Panics
///
/// Panics on configuration errors (static configs in this harness).
pub fn run_tpg(problem: &DrivableLoadProblem, gens: usize, seed: u64) -> RunOutcome {
    tpg_ga(problem, gens).run_seeded(seed).expect("tpg run")
}

/// Runs the paper's **TPG / "Only Global"** baseline: the same rank-based
/// engine as SACGA but with a single partition — pure global competition
/// from the first generation, no density-based niching (the paper's
/// framework has none; partitioning *is* its diversity mechanism).
///
/// Textbook NSGA-II ([`run_tpg`]) is reported alongside as the modern
/// baseline; with crowding-based truncation it does not exhibit the
/// diversity pathology the paper documents (see `EXPERIMENTS.md`).
///
/// # Panics
///
/// Panics on configuration errors (static configs in this harness).
pub fn run_only_global(problem: &DrivableLoadProblem, gens: usize, seed: u64) -> RunOutcome {
    run_sacga(problem, 1, gens, seed)
}

/// An `m`-partition SACGA, configured for this harness.
///
/// # Panics
///
/// Panics on configuration errors (static configs in this harness).
pub fn sacga_ga(
    problem: &DrivableLoadProblem,
    partitions: usize,
    gens: usize,
) -> Sacga<&DrivableLoadProblem> {
    let (lo, hi) = DrivableLoadProblem::slice_range();
    let cfg = SacgaConfig::builder()
        .population_size(POP)
        .generations(gens)
        .partitions(partitions)
        .phase1_max(PHASE1_MAX.min(gens / 2))
        .slice_range(lo, hi)
        .cache_capacity(FIG_CACHE_CAPACITY)
        .build()
        .expect("static config");
    Sacga::new(problem, cfg)
}

/// Runs an `m`-partition SACGA and returns its outcome.
///
/// # Panics
///
/// Panics on configuration errors (static configs in this harness).
pub fn run_sacga(
    problem: &DrivableLoadProblem,
    partitions: usize,
    gens: usize,
    seed: u64,
) -> RunOutcome {
    sacga_ga(problem, partitions, gens)
        .run_seeded(seed)
        .expect("sacga run")
}

/// Runs the paper's 7-phase MESACGA (20, 13, 8, 5, 3, 2, 1 partitions)
/// with a uniform per-phase span.
///
/// # Panics
///
/// Panics on configuration errors (static configs in this harness).
pub fn run_mesacga(
    problem: &DrivableLoadProblem,
    span: usize,
    phase1_max: usize,
    seed: u64,
) -> RunOutcome {
    mesacga_ga(problem, span, phase1_max)
        .run_seeded(seed)
        .expect("mesacga run")
}

/// The paper's 7-phase MESACGA, configured for this harness.
///
/// # Panics
///
/// Panics on configuration errors (static configs in this harness).
pub fn mesacga_ga(
    problem: &DrivableLoadProblem,
    span: usize,
    phase1_max: usize,
) -> Mesacga<&DrivableLoadProblem> {
    let (lo, hi) = DrivableLoadProblem::slice_range();
    let cfg = MesacgaConfig::builder()
        .population_size(POP)
        .phase1_max(phase1_max)
        .phases(
            [20, 13, 8, 5, 3, 2, 1]
                .into_iter()
                .map(|m| PhaseSpec::new(m, span))
                .collect(),
        )
        .slice_range(lo, hi)
        .cache_capacity(FIG_CACHE_CAPACITY)
        .build()
        .expect("static config");
    Mesacga::new(problem, cfg)
}

/// Runs any [`Optimizer`] with the event stream teed into an in-memory
/// sink and a JSONL log under `results/<name>_seed<seed>.jsonl`, then
/// returns the outcome together with the captured events for replay.
///
/// # Panics
///
/// Panics when the run fails or the log cannot be written
/// (harness-fatal).
pub fn run_logged<O: Optimizer>(ga: &O, name: &str, seed: u64) -> (RunOutcome, Vec<RunEvent>) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}_seed{seed}.jsonl"));
    let jsonl = JsonlSink::create(&path).expect("create jsonl log");
    let mut tee = Tee::new(MemorySink::new(), jsonl);
    let outcome = ga
        .run_with(seed, &mut tee)
        .unwrap_or_else(|e| panic!("{name} run: {e}"));
    tee.flush().expect("flush jsonl log");
    let (memory, jsonl) = tee.into_inner();
    println!(
        "logged {} events to {}",
        jsonl.lines_written(),
        path.display()
    );
    (outcome, memory.into_events())
}

/// Replays a captured event stream: the front carried by the last
/// [`RunEvent::GenerationEnd`] (empty when no generation ran).
pub fn replay_final_front(events: &[RunEvent]) -> Vec<Vec<f64>> {
    events
        .iter()
        .rev()
        .find_map(|e| match e {
            RunEvent::GenerationEnd { front, .. } => Some(front.clone()),
            _ => None,
        })
        .unwrap_or_default()
}

/// Reads a JSONL event log back into events, skipping blank lines and
/// — with a warning on stderr — corrupt lines (e.g. a crash-truncated
/// trailing line).
///
/// # Panics
///
/// Panics when the file cannot be read (harness-fatal).
pub fn read_jsonl_events(path: &Path) -> Vec<RunEvent> {
    let (events, skipped) = read_jsonl_events_lossy(path);
    if skipped > 0 {
        eprintln!(
            "warning: skipped {skipped} corrupt line(s) replaying {}",
            path.display()
        );
    }
    events
}

/// Like [`read_jsonl_events`], but returns the skipped-line count to
/// the caller instead of warning.
///
/// # Panics
///
/// Panics when the file cannot be read (harness-fatal).
pub fn read_jsonl_events_lossy(path: &Path) -> (Vec<RunEvent>, usize) {
    let text = std::fs::read_to_string(path).expect("read jsonl log");
    let replay = RunEvent::parse_jsonl_lossy(&text);
    (replay.events, replay.skipped)
}

/// Rehydrates replayed objective vectors into individuals so the
/// paper-axis metric helpers accept event-stream fronts.
pub fn front_individuals(front: &[Vec<f64>]) -> Vec<Individual> {
    front
        .iter()
        .map(|obj| Individual::new(Vec::new(), Evaluation::unconstrained(obj.clone())))
        .collect()
}

/// Front points on the paper's axes, sorted by load: `(C_L pF, P W)`.
pub fn paper_front(front: &[Vec<f64>]) -> Vec<(f64, f64)> {
    let mut rows: Vec<(f64, f64)> = front
        .iter()
        .map(|obj| DrivableLoadProblem::to_paper_axes(obj))
        .collect();
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    rows
}

/// Summary metrics of a front: `(hypervolume, occupancy-of-20-bins,
/// spread, size)`.
pub fn front_metrics(front: &[Individual]) -> (f64, f64, f64, usize) {
    let hv = DrivableLoadProblem::paper_hypervolume(front);
    let pts: Vec<Vec<f64>> = front
        .iter()
        .map(|m| {
            let (cl, p) = DrivableLoadProblem::to_paper_axes(m.objectives());
            vec![cl, p * 1e4]
        })
        .collect();
    let occ = if pts.is_empty() {
        0.0
    } else {
        bin_occupancy(&pts, 0, 0.0, 5.0, 20)
    };
    (hv, occ, spread(&pts), front.len())
}

/// Writes a CSV file under `results/`, creating the directory on demand.
///
/// # Panics
///
/// Panics when the file cannot be written (harness-fatal).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        writeln!(f, "{row}").expect("write row");
    }
    println!("\nwrote {}", path.display());
}

/// Removes stale working files (`*.partial`, `*.bak`) that interrupted
/// harness runs can leave under `dir` and its subdirectories, returning
/// the paths removed. Files that fail to delete are skipped — cleanup
/// is best-effort.
pub fn clean_stale_artifacts(dir: &Path) -> Vec<std::path::PathBuf> {
    fn walk(dir: &Path, removed: &mut Vec<std::path::PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                walk(&path, removed);
                continue;
            }
            let stale = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e == "partial" || e == "bak");
            if stale && std::fs::remove_file(&path).is_ok() {
                removed.push(path);
            }
        }
    }
    let mut removed = Vec::new();
    walk(dir, &mut removed);
    removed.sort();
    removed
}

/// Prints a front of objective vectors (from [`RunOutcome::front_objectives`]
/// or an event-stream replay) as a two-column table.
pub fn print_front(name: &str, front: &[Vec<f64>]) {
    let rows = paper_front(front);
    println!("\n{name} front ({} designs):", rows.len());
    println!("{:>10} {:>12}", "CL (pF)", "P (mW)");
    for (cl, p) in &rows {
        println!("{cl:10.3} {:12.4}", p * 1e3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::evaluation::Evaluation;
    use moea::individual::Individual;

    #[test]
    fn paper_front_sorts_by_load() {
        let ind = |cl_pf: f64, p: f64| vec![-cl_pf * 1e-12, p];
        let front = vec![ind(3.0, 0.2e-3), ind(1.0, 0.1e-3), ind(5.0, 0.3e-3)];
        let rows = paper_front(&front);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].0 - 1.0).abs() < 1e-9);
        assert!((rows[2].0 - 5.0).abs() < 1e-9);
        assert!((rows[1].1 - 0.2e-3).abs() < 1e-12);
    }

    #[test]
    fn front_metrics_reports_occupancy_of_clustered_front() {
        let ind = |cl_pf: f64| {
            Individual::new(
                vec![0.0],
                Evaluation::unconstrained(vec![-cl_pf * 1e-12, 1e-4]),
            )
        };
        // three designs inside one 0.25 pF bin
        let front = vec![ind(4.8), ind(4.85), ind(4.9)];
        let (_, occ, _, n) = front_metrics(&front);
        assert_eq!(n, 3);
        assert!((occ - 0.05).abs() < 1e-9, "one of twenty bins: {occ}");
    }

    #[test]
    fn paper_problem_has_expected_shape() {
        use moea::Problem;
        let p = paper_problem();
        assert_eq!(p.num_variables(), 15);
        assert_eq!(p.num_objectives(), 2);
    }

    #[test]
    fn front_metrics_of_empty_front() {
        let (hv, occ, spr, n) = front_metrics(&[]);
        assert_eq!(n, 0);
        assert_eq!(occ, 0.0);
        assert_eq!(spr, 0.0);
        // empty front: ceiling charged over the whole range
        assert!(hv > 0.0);
    }
}
