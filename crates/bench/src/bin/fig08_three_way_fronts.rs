//! **Fig. 8** — Pareto fronts after 800 iterations of (i) purely global
//! competition (TPG/NSGA-II), (ii) 8-partition SACGA, and (iii) MESACGA
//! with the 20/13/8/5/3/2/1 expanding-partition schedule.
//!
//! The paper's trend for ≥ 650-iteration budgets:
//! MESACGA ≥ SACGA ≥ TPG in front quality.

use dse_bench::{
    front_metrics, paper_front, paper_problem, print_front, run_mesacga, run_only_global,
    run_sacga, seed_from_args, write_csv, GENS_MAIN, PHASE1_MAX,
};

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    println!("Fig. 8: TPG (Only-Global) vs SACGA-8 vs MESACGA, pop 100 x {GENS_MAIN}, seed {seed}");

    let tpg = run_only_global(&problem, GENS_MAIN, seed);
    let sacga = run_sacga(&problem, 8, GENS_MAIN, seed);
    // Budget-match MESACGA: phase I (up to the same cap the SACGA run
    // uses) + 7 equal spans filling the rest of the 800 iterations.
    let span = (GENS_MAIN - sacga.gen_t.min(PHASE1_MAX)) / 7;
    let mesacga = run_mesacga(&problem, span, PHASE1_MAX, seed);

    print_front("TPG (only global)", &tpg.front_objectives());
    print_front("SACGA (8 partitions)", &sacga.front_objectives());
    print_front("MESACGA (20/13/8/5/3/2/1)", &mesacga.front_objectives());

    println!();
    for (name, front) in [
        ("TPG", &tpg.front),
        ("SACGA", &sacga.front),
        ("MESACGA", &mesacga.front),
    ] {
        let (hv, occ, spr, n) = front_metrics(front);
        println!("{name:8}: hv {hv:6.2} | occupancy {occ:.2} | spread {spr:.2} | {n} designs");
    }
    println!(
        "\nMESACGA generations: {} (phase I {} + 7 x {span})",
        mesacga.generations, mesacga.gen_t
    );

    let mut rows = Vec::new();
    for (label, front) in [
        ("tpg", tpg.front_objectives()),
        ("sacga8", sacga.front_objectives()),
        ("mesacga", mesacga.front_objectives()),
    ] {
        for (cl, p) in paper_front(&front) {
            rows.push(format!("{label},{cl:.6},{p:.9}"));
        }
    }
    write_csv(
        "fig08_three_way_fronts.csv",
        "algorithm,cl_pf,power_w",
        &rows,
    );
}
