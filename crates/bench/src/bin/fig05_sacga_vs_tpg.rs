//! **Fig. 5** — Pareto fronts after 800 iterations of (i) traditional
//! purely-global-competition NSGA-II and (ii) an 8-partition SACGA.
//!
//! The paper shows SACGA reaching lower power and wider load coverage at
//! the same iteration budget.
//!
//! Usage: `fig05_sacga_vs_tpg [seed] [gens]` — the iteration budget
//! defaults to the paper's 800; CI passes a small budget for its trace
//! smoke run.

use dse_bench::{
    front_metrics, paper_front, paper_problem, print_front, run_logged, sacga_ga, seed_from_args,
    write_csv, GENS_MAIN,
};

fn main() {
    let seed = seed_from_args();
    let gens: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(GENS_MAIN);
    let problem = paper_problem();
    println!("Fig. 5: TPG (Only-Global) vs 8-partition SACGA, pop 100 x {gens}, seed {seed}");

    // Both runs stream their events into results/*.jsonl logs (replay
    // them with `trace_report`); event emission never consumes RNG, so
    // the fronts match the un-instrumented runs bit for bit.
    let t0 = std::time::Instant::now();
    let (tpg, _) = run_logged(&sacga_ga(&problem, 1, gens), "fig05_tpg", seed);
    println!("TPG done in {:.0} s", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    let (sacga, _) = run_logged(&sacga_ga(&problem, 8, gens), "fig05_sacga8", seed);
    println!(
        "SACGA done in {:.0} s (phase I took {} generations)",
        t0.elapsed().as_secs_f64(),
        sacga.gen_t
    );

    print_front("TPG (only global)", &tpg.front_objectives());
    print_front("SACGA (8 partitions)", &sacga.front_objectives());

    for (name, front) in [("TPG", &tpg.front), ("SACGA", &sacga.front)] {
        let (hv, occ, spr, n) = front_metrics(front);
        println!("{name:6}: hv {hv:6.2} | occupancy {occ:.2} | spread {spr:.2} | {n} designs");
    }

    let mut rows = Vec::new();
    for (label, front) in [
        ("tpg", tpg.front_objectives()),
        ("sacga8", sacga.front_objectives()),
    ] {
        for (cl, p) in paper_front(&front) {
            rows.push(format!("{label},{cl:.6},{p:.9}"));
        }
    }
    write_csv("fig05_sacga_vs_tpg.csv", "algorithm,cl_pf,power_w", &rows);
}
