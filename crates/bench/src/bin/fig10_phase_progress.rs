//! **Fig. 10** — progress of the Pareto front across the 7 phases of
//! MESACGA: hypervolume at the end of each phase, for per-phase spans of
//! 50, 100 and 150 iterations.
//!
//! The paper shows monotone improvement across phases and better final
//! quality for larger spans.

use analog_circuits::DrivableLoadProblem;
use dse_bench::{paper_problem, run_mesacga, seed_from_args, write_csv, PHASE1_MAX};

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    println!("Fig. 10: hypervolume at the end of each MESACGA phase, seed {seed}");

    let mut rows = Vec::new();
    let mut tables: Vec<(usize, Vec<f64>)> = Vec::new();
    for span in [50usize, 100, 150] {
        let t0 = std::time::Instant::now();
        let r = run_mesacga(&problem, span, PHASE1_MAX, seed);
        let hvs: Vec<f64> = r
            .phase_fronts
            .iter()
            .map(|front| DrivableLoadProblem::paper_hypervolume(front))
            .collect();
        println!(
            "span {span:3}: phase I = {} generations, total = {} ({:.0} s)",
            r.gen_t,
            r.generations,
            t0.elapsed().as_secs_f64()
        );
        for (phase, hv) in hvs.iter().enumerate() {
            rows.push(format!("{span},{},{hv:.6}", phase + 1));
        }
        tables.push((span, hvs));
    }

    println!(
        "\n{:>6} {:>9} {:>9} {:>9}",
        "phase", "span=50", "span=100", "span=150"
    );
    for phase in 0..7 {
        println!(
            "{:6} {:9.3} {:9.3} {:9.3}",
            phase + 1,
            tables[0].1[phase],
            tables[1].1[phase],
            tables[2].1[phase]
        );
    }
    write_csv("fig10_phase_progress.csv", "span,phase,hypervolume", &rows);
}
