//! **Ablation — the competition spectrum.** The paper's argument is that
//! *pure local* competition diversifies but converges slowly (Sec. 4.3),
//! *pure global* converges but clusters (Sec. 3), and the SA-mixed
//! schedule gets both. This harness runs the full spectrum at one budget:
//!
//! * Only-Global (m = 1);
//! * Local-Only (m = 8, promotion disabled forever);
//! * SACGA (m = 8, annealed promotion) with three different probability
//!   shapings (aggressive / standard / conservative);
//! * MESACGA.

use analog_circuits::DrivableLoadProblem;
use dse_bench::{
    front_metrics, paper_problem, run_mesacga, run_only_global, seed_from_args, write_csv,
    PHASE1_MAX, POP,
};
use sacga::anneal::ProbabilityShaper;
use sacga::sacga::{CompetitionMode, Sacga, SacgaConfig};

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    let gens = 600;
    let (lo, hi) = DrivableLoadProblem::slice_range();
    println!("competition-mode ablation, pop {POP} x {gens}, seed {seed}");
    println!(
        "\n{:<26} {:>10} {:>10} {:>7}",
        "variant", "hv", "occupancy", "front"
    );

    let mut rows: Vec<String> = Vec::new();
    let mut report = |name: &str, front: &[moea::Individual]| {
        let (hv, occ, _, n) = front_metrics(front);
        println!("{name:<26} {hv:10.3} {occ:10.2} {n:7}");
        rows.push(format!("{name},{hv:.6},{occ:.4},{n}"));
    };

    let base = |mode: CompetitionMode, shaper: ProbabilityShaper| {
        SacgaConfig::builder()
            .population_size(POP)
            .generations(gens)
            .partitions(8)
            .phase1_max(PHASE1_MAX.min(gens / 2))
            .slice_range(lo, hi)
            .mode(mode)
            .shaper(shaper)
            .build()
            .expect("static config")
    };

    let og = run_only_global(&problem, gens, seed);
    report("only-global(m=1)", &og.front);

    let local = Sacga::new(
        &problem,
        base(CompetitionMode::LocalOnly, ProbabilityShaper::standard()),
    )
    .run_seeded(seed)
    .expect("run");
    report("local-only(m=8)", &local.front);

    for (label, shaper) in [
        (
            "sacga8(aggressive)",
            ProbabilityShaper::new(0.8, 0.3, 0.98).unwrap(),
        ),
        ("sacga8(standard)", ProbabilityShaper::standard()),
        (
            "sacga8(conservative)",
            ProbabilityShaper::new(0.2, 0.02, 0.6).unwrap(),
        ),
    ] {
        let r = Sacga::new(&problem, base(CompetitionMode::Annealed, shaper))
            .run_seeded(seed)
            .expect("run");
        report(label, &r.front);
    }

    let mes = run_mesacga(&problem, (gens - PHASE1_MAX) / 7, PHASE1_MAX, seed);
    report("mesacga", &mes.front);

    write_csv(
        "ablation_competition_modes.csv",
        "variant,hypervolume,occupancy,front_size",
        &rows,
    );
}
