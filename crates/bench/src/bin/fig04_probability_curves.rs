//! **Fig. 4** — promotion-probability curves for `n = 5`, `span = 100`:
//! the probability that the `i`-th locally superior solution of a
//! partition joins the global competition, as a function of the phase-II
//! generation `gen − gen_t`, for `i = 1..5`.
//!
//! Pure algorithm mathematics — no circuit involved. The constants come
//! from the closed-form [`ProbabilityShaper`] with the standard targets
//! (0.5 / 0.1 / 0.9), reproducing the fan of curves in the paper.

use dse_bench::write_csv;
use sacga::anneal::ProbabilityShaper;

fn main() {
    let n = 5;
    let span = 100;
    let (policy, schedule) = ProbabilityShaper::standard()
        .solve(n, span)
        .expect("standard targets are valid");

    println!(
        "Fig. 4: prob(i, gen) for n = {n}, span = {span} (k2 = {:.4}, alpha = {:.4}, T_init = {:.1})",
        policy.k2, policy.alpha, schedule.t_init
    );
    println!(
        "\n{:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "gen-gen_t", "i=1", "i=2", "i=3", "i=4", "i=5"
    );
    let mut rows = Vec::new();
    for gen in (0..=span).step_by(5) {
        let t = schedule.temperature(gen);
        let probs: Vec<f64> = (1..=n).map(|i| policy.probability(i, t)).collect();
        println!(
            "{gen:9} {:8.4} {:8.4} {:8.4} {:8.4} {:8.4}",
            probs[0], probs[1], probs[2], probs[3], probs[4]
        );
        rows.push(format!(
            "{gen},{:.6},{:.6},{:.6},{:.6},{:.6}",
            probs[0], probs[1], probs[2], probs[3], probs[4]
        ));
    }
    write_csv("fig04_probability_curves.csv", "gen,i1,i2,i3,i4,i5", &rows);
}
