//! The SACGA-vs-TPG diversity claim as a statistical campaign.
//!
//! Runs an `m`-partition SACGA arm against the paper's TPG / "Only
//! Global" baseline (the 1-partition degenerate of the same engine),
//! plus the steady-state SACGA variant (same partitioning, no
//! generation barrier), over a pinned seed list, computes per-cell
//! front metrics and pairwise rank-sum / bootstrap statistics, and
//! writes the deterministic aggregate to
//! `results/BENCH_campaign.json`. Running the binary twice with the
//! same arguments produces byte-identical JSON whatever the thread
//! count — that property is pinned by the `campaign-smoke` CI job.
//!
//! Usage: `campaign_report [n_seeds] [gens] [threads] [--logs]`
//! (defaults: 16 seeds, 120 generations, 4 threads). `--logs` fans
//! each cell's run-event stream out as JSONL under
//! `results/campaign_logs/`.

use analog_circuits::{DrivableLoadProblem, IntegratorProblem};
use campaign::{
    Campaign, CampaignReport, CampaignRunner, CellResult, Metric, MetricSpec, RunnerConfig,
};
use dse_bench::{paper_problem, PHASE1_MAX, POP};
use engine::{CacheConfig, SharedCache};
use moea::Evaluation;
use sacga::cellular::{CellularConfig, CellularGa};
use sacga::sacga::{Sacga, SacgaConfig};
use sacga::steady::{SteadyConfig, SteadySacga};
use sacga::telemetry::DynOptimizer;
use sacga::topology::Topology;
use std::path::Path;

/// Pinned seed base: campaign seeds are `SEED_BASE..SEED_BASE + n`.
const SEED_BASE: u64 = 1000;

/// SACGA partition count under test (the paper's featured setting).
const PARTITIONS: usize = 8;

/// Total population of the cellular arms (split across cells).
const CELL_POP: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let logs = args.iter().any(|a| a == "--logs");
    let nums: Vec<usize> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.parse().expect("numeric argument"))
        .collect();
    let n_seeds = nums.first().copied().unwrap_or(16).max(1);
    let gens = nums.get(1).copied().unwrap_or(120).max(2);
    let threads = nums.get(2).copied().unwrap_or(4).max(1);
    let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| SEED_BASE + i).collect();

    println!(
        "campaign: sacga{PARTITIONS} vs tpg vs steady{PARTITIONS} vs cell_ring{CELL_POP} vs cell_torus{CELL_POP} | {n_seeds} seeds | {gens} generations | {threads} threads"
    );

    let sacga_arm = |partitions: usize| {
        move |shared: Option<&SharedCache<Evaluation>>| {
            let (lo, hi) = DrivableLoadProblem::slice_range();
            let mut b = SacgaConfig::builder()
                .population_size(POP)
                .generations(gens)
                .partitions(partitions)
                .phase1_max(PHASE1_MAX.min(gens / 2))
                .slice_range(lo, hi);
            if let Some(cache) = shared {
                b = b.shared_cache(cache.clone());
            }
            let config = b.build().expect("static config");
            Box::new(Sacga::new(paper_problem(), config)) as Box<dyn DynOptimizer>
        }
    };
    let steady_arm = move |shared: Option<&SharedCache<Evaluation>>| {
        let (lo, hi) = DrivableLoadProblem::slice_range();
        let mut b = SteadyConfig::builder()
            .population_size(POP)
            .generations(gens)
            .partitions(PARTITIONS)
            .phase1_max(PHASE1_MAX.min(gens / 2))
            .slice_range(lo, hi);
        if let Some(cache) = shared {
            b = b.shared_cache(cache.clone());
        }
        let config = b.build().expect("static config");
        Box::new(SteadySacga::new(paper_problem(), config)) as Box<dyn DynOptimizer>
    };
    // Structured-population arms: the same total population spread over
    // a ring of 8 cells and a 4×4 torus, with mild open mating. Neither
    // uses objective-space partitions, so they probe whether topological
    // locality alone buys the diversity that partitioned competition
    // buys the SACGA arms.
    let cellular_arm = |topology: Topology| {
        move |shared: Option<&SharedCache<Evaluation>>| {
            let mut b = CellularConfig::builder()
                .population_size(CELL_POP)
                .generations(gens)
                .topology(topology.clone())
                .migration_interval(10)
                .migrants(1)
                .openness(0.25);
            if let Some(cache) = shared {
                b = b.shared_cache(cache.clone());
            }
            let config = b.build().expect("static config");
            Box::new(CellularGa::new(paper_problem(), config)) as Box<dyn DynOptimizer>
        }
    };
    let campaign = Campaign::new("sacga-vs-tpg")
        .arm(format!("sacga{PARTITIONS}"), sacga_arm(PARTITIONS))
        .arm("tpg", sacga_arm(1))
        .arm(format!("steady{PARTITIONS}"), steady_arm)
        .arm(
            format!("cell_ring{CELL_POP}"),
            cellular_arm(Topology::Ring {
                cells: 8,
                radius: 1,
            }),
        )
        .arm(
            format!("cell_torus{CELL_POP}"),
            cellular_arm(Topology::Torus {
                rows: 4,
                cols: 4,
                radius: 1,
            }),
        )
        .seeds(seeds);

    let mut config = RunnerConfig::default()
        .threads(threads)
        .shared_cache(CacheConfig::with_capacity(1 << 16));
    if logs {
        config = config.telemetry_dir("results/campaign_logs");
    }
    let results = CampaignRunner::new(config)
        .run(&campaign)
        .unwrap_or_else(|e| panic!("campaign failed: {e}"));

    // Report metrics on scaled paper coordinates: objective 0 becomes
    // -C_L in pF (range -5..0), objective 1 becomes power in 0.1 mW
    // units, so hypervolume, spread and 20-bin occupancy all have
    // readable magnitudes. The same two constants scale every cell, so
    // the scaling cannot break cross-cell comparability.
    let scaled: Vec<CellResult> = results
        .iter()
        .map(|cell| {
            let mut cell = cell.clone();
            for (_, obj) in &mut cell.front {
                obj[0] *= 1e12;
                obj[1] *= 1e4;
            }
            cell
        })
        .collect();
    let labels: Vec<String> = campaign
        .arms()
        .iter()
        .map(|a| a.label().to_string())
        .collect();
    let (slice_lo, _) = DrivableLoadProblem::slice_range();
    let spec = MetricSpec::new(
        [0.0, IntegratorProblem::HV_POWER_CEILING],
        (slice_lo * 1e12, 0.0),
        20,
    );
    let report = CampaignReport::build(campaign.name(), &labels, &scaled, &spec);

    println!(
        "\n{:>8} {:>6} {:>12} {:>10} {:>10} {:>6}",
        "arm", "seed", "hypervol", "spread", "occup", "front"
    );
    for arm in &report.arms {
        for cell in &arm.cells {
            println!(
                "{:>8} {:>6} {:>12.4} {:>10.4} {:>10.3} {:>6}",
                arm.label,
                cell.seed,
                cell.metrics.hypervolume,
                cell.metrics.spread,
                cell.metrics.occupancy,
                cell.front_size
            );
        }
    }

    println!("\npairwise comparisons (one-sided exact rank-sum, 95% bootstrap CI):");
    // Every arm against the TPG baseline (labels[1]).
    let pairs: Vec<(&String, &String)> = labels
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 1)
        .map(|(_, l)| (l, &labels[1]))
        .collect();
    for pair in pairs {
        for metric in Metric::ALL {
            let c = report
                .comparison(pair.0, pair.1, metric)
                .expect("comparison exists");
            println!(
                "  {:<12} U = {:>6.1}  p({} > {}) = {:.4}  p({} > {}) = {:.4}  mean diff = {:+.4} [{:+.4}, {:+.4}]",
                c.metric, c.u_a, c.arm_a, c.arm_b, c.p_a_greater, c.arm_b, c.arm_a, c.p_b_greater, c.mean_diff, c.ci_lo, c.ci_hi
            );
        }
    }

    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join("BENCH_campaign.json");
    std::fs::write(&path, report.to_json()).expect("write campaign report");
    println!("\nwrote {}", path.display());
}
