//! **Fig. 11** — the punchline comparison: a 1250-iteration MESACGA
//! (200-iteration pure-local phase + 7 phases of 150) against the *best*
//! statically-partitioned SACGA (16 partitions, 1200 iterations, the
//! optimum of Fig. 6).
//!
//! The paper reports hypervolumes of 21.83 (MESACGA) vs 22.19 (SACGA-16):
//! MESACGA matches the best hand-tuned partition count without the sweep.

use dse_bench::{
    front_metrics, paper_front, paper_problem, print_front, run_mesacga, run_sacga, seed_from_args,
    write_csv,
};

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    println!("Fig. 11: 1250-iter MESACGA vs best (16-partition, 1200-iter) SACGA, seed {seed}");

    let t0 = std::time::Instant::now();
    let sacga = run_sacga(&problem, 16, 1200, seed);
    println!("SACGA-16 done in {:.0} s", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    let mesacga = run_mesacga(&problem, 150, 200, seed);
    println!(
        "MESACGA done in {:.0} s ({} generations)",
        t0.elapsed().as_secs_f64(),
        mesacga.generations
    );

    print_front(
        "SACGA (16 partitions, 1200 iters)",
        &sacga.front_objectives(),
    );
    print_front("MESACGA (200 + 7 x 150)", &mesacga.front_objectives());

    println!();
    for (name, front) in [("SACGA-16", &sacga.front), ("MESACGA", &mesacga.front)] {
        let (hv, occ, spr, n) = front_metrics(front);
        println!("{name:9}: hv {hv:6.3} | occupancy {occ:.2} | spread {spr:.2} | {n} designs");
    }
    println!("(paper: 22.19 for SACGA-16 vs 21.83 for MESACGA — comparable quality)");

    let mut rows = Vec::new();
    for (label, front) in [
        ("sacga16", sacga.front_objectives()),
        ("mesacga", mesacga.front_objectives()),
    ] {
        for (cl, p) in paper_front(&front) {
            rows.push(format!("{label},{cl:.6},{p:.9}"));
        }
    }
    write_csv(
        "fig11_mesacga_vs_best_sacga.csv",
        "algorithm,cl_pf,power_w",
        &rows,
    );
}
