//! **Ablation (Sec. 4 "first approach")** — the paper notes that simply
//! raising the mutation probability helps diversity "upto a certain
//! extent beyond which the entire optimization process becomes random and
//! loses the focus required for convergence".
//!
//! This harness sweeps the per-variable mutation probability of the
//! Only-Global baseline and reports hypervolume + coverage, exposing the
//! sweet spot and the degradation beyond it.

use dse_bench::{front_metrics, paper_problem, seed_from_args, write_csv, PHASE1_MAX, POP};
use moea::operators::{PolynomialMutation, Sbx, Variation};
use sacga::sacga::{Sacga, SacgaConfig};

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    let gens = 400;
    let (lo, hi) = analog_circuits::DrivableLoadProblem::slice_range();
    println!("mutation-probability sweep, Only-Global engine, pop {POP} x {gens}, seed {seed}");
    println!(
        "\n{:>8} {:>10} {:>10} {:>7}",
        "pm", "hv", "occupancy", "front"
    );

    let mut rows = Vec::new();
    for pm in [0.01, 1.0 / 15.0, 0.15, 0.3, 0.5, 0.8] {
        let variation = Variation {
            sbx: Sbx::new(15.0, 0.9),
            mutation: PolynomialMutation::new(20.0, pm),
        };
        let cfg = SacgaConfig::builder()
            .population_size(POP)
            .generations(gens)
            .partitions(1)
            .phase1_max(PHASE1_MAX.min(gens / 2))
            .slice_range(lo, hi)
            .variation(variation)
            .build()
            .expect("static config");
        let r = Sacga::new(&problem, cfg).run_seeded(seed).expect("run");
        let (hv, occ, _, n) = front_metrics(&r.front);
        println!("{pm:8.3} {hv:10.3} {occ:10.2} {n:7}");
        rows.push(format!("{pm:.4},{hv:.6},{occ:.4},{n}"));
    }
    write_csv(
        "ablation_mutation_sweep.csv",
        "mutation_probability,hypervolume,occupancy,front_size",
        &rows,
    );
}
