//! **Fig. 6** — determination of the optimal number of static partitions:
//! hypervolume after 1200 iterations of SACGA as a function of the
//! partition count `m ∈ {6, 8, …, 24}`.
//!
//! The paper finds a bowl with its optimum at `m = 16` for its problem
//! instance; the point of the figure is that the optimum is
//! problem-dependent and only found by full experimentation — the
//! motivation for MESACGA.

use dse_bench::{front_metrics, paper_problem, run_sacga, seed_from_args, write_csv};

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    let gens = 1200;
    println!("Fig. 6: SACGA hypervolume after {gens} iterations vs partition count, seed {seed}");
    println!(
        "\n{:>4} {:>10} {:>10} {:>8} {:>8}",
        "m", "hv", "occupancy", "front", "gen_t"
    );

    let mut rows = Vec::new();
    for m in [6usize, 8, 12, 16, 20, 24] {
        let t0 = std::time::Instant::now();
        let r = run_sacga(&problem, m, gens, seed);
        let (hv, occ, _, n) = front_metrics(&r.front);
        println!(
            "{m:4} {hv:10.3} {occ:10.2} {n:8} {:8}   ({:.0} s)",
            r.gen_t,
            t0.elapsed().as_secs_f64()
        );
        rows.push(format!("{m},{hv:.6},{occ:.4},{n},{}", r.gen_t));
    }
    write_csv(
        "fig06_partition_sweep.csv",
        "partitions,hypervolume,occupancy,front_size,gen_t",
        &rows,
    );
}
