//! `dse_serve` — the optimization-as-a-service daemon.
//!
//! ```text
//! dse_serve <store-dir> [options]
//!
//!   --port <n>        TCP port (default 0 = ephemeral; prints the bound addr)
//!   --workers <n>     worker threads (default 2)
//!   --queue <n>       queue capacity (default 64)
//!   --cache <n>       per-tenant shared-cache capacity (default 65536)
//!   --job "<spec>"    submit a canonical job line at startup (repeatable)
//!   --drain           no TCP: run submitted + rescanned jobs to idle, exit
//!   --max-slices <n>  with --drain: stop abruptly after n generation
//!                     slices (deterministic crash simulation)
//! ```
//!
//! In drain mode the exit line per job is `job <id> <status> <health>`;
//! the process exits 0 when every job is terminal, 2 after a simulated
//! kill (restart with the same store to resume).

use std::net::TcpListener;
use std::process::ExitCode;

use dse_server::{JobSpec, Server, ServerConfig, ServerError};
use engine::CacheConfig;

struct Args {
    store: String,
    port: u16,
    workers: usize,
    queue: usize,
    cache: usize,
    jobs: Vec<String>,
    drain: bool,
    max_slices: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let store = argv
        .next()
        .ok_or("usage: dse_serve <store-dir> [options]")?;
    let mut args = Args {
        store,
        port: 0,
        workers: 2,
        queue: 64,
        cache: 1 << 16,
        jobs: Vec::new(),
        drain: false,
        max_slices: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
            }
            "--job" => args.jobs.push(value("--job")?),
            "--drain" => args.drain = true,
            "--max-slices" => {
                args.max_slices = Some(
                    value("--max-slices")?
                        .parse()
                        .map_err(|e| format!("--max-slices: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.max_slices.is_some() && !args.drain {
        return Err("--max-slices requires --drain".into());
    }
    Ok(args)
}

fn run(args: Args) -> Result<ExitCode, ServerError> {
    let config = ServerConfig {
        workers: args.workers.max(1),
        queue_capacity: args.queue,
        cache: CacheConfig::with_capacity(args.cache.max(1)),
    };
    let server = Server::open(&args.store, config)?;
    for line in &args.jobs {
        let spec = JobSpec::parse(line)?;
        match server.submit(spec) {
            Ok(id) => println!("submitted {id}"),
            Err(ServerError::DuplicateJob(id)) => println!("already-known {id}"),
            Err(e) => return Err(e),
        }
    }
    if args.drain {
        let drained = match args.max_slices {
            Some(budget) => server.run_slices_at_most(budget)?,
            None => {
                server.run_until_idle()?;
                true
            }
        };
        for view in server.list() {
            println!(
                "job {} {} {}",
                view.id,
                view.status.token(),
                view.health.token()
            );
        }
        return Ok(if drained {
            ExitCode::SUCCESS
        } else {
            println!("killed after {} slices", args.max_slices.unwrap_or(0));
            ExitCode::from(2)
        });
    }
    let listener = TcpListener::bind(("127.0.0.1", args.port))?;
    println!("listening {}", listener.local_addr()?);
    server.serve(listener)?;
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("dse_serve: {msg}");
            return ExitCode::from(64);
        }
    };
    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("dse_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
