//! **Fig. 2** — Pareto-optimal front after 800 iterations of the
//! traditional purely-global-competition GA.
//!
//! The paper shows the front clustering mostly between 4 and 5 pF instead
//! of covering the whole 0–5 pF load range. Two baselines are rerun here:
//!
//! * **Only-Global** — the paper's framework with one partition (global
//!   rank-based competition, no density niching), which reproduces the
//!   clustering pathology;
//! * **NSGA-II** — the textbook algorithm with crowded-comparison
//!   selection, reported for transparency: on this substrate its explicit
//!   density maintenance prevents the pathology (see `EXPERIMENTS.md`).

use dse_bench::{
    front_individuals, front_metrics, paper_front, paper_problem, print_front, replay_final_front,
    run_logged, sacga_ga, seed_from_args, tpg_ga, write_csv, GENS_MAIN,
};

fn clustering_report(name: &str, front: &[Vec<f64>]) {
    let (hv, occ, spr, n) = front_metrics(&front_individuals(front));
    let rows = paper_front(front);
    let clustered = rows.iter().filter(|(cl, _)| *cl >= 4.0).count();
    println!("\n{name}: {n} designs | hypervolume {hv:.2} | occupancy {occ:.2} | spread {spr:.2}");
    println!(
        "fraction of front in the 4-5 pF band: {:.2} (paper: clustered 'mostly between 4 and 5 pF')",
        clustered as f64 / n.max(1) as f64
    );
}

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    println!("Fig. 2: purely global competition, pop 100 x {GENS_MAIN} iterations, seed {seed}");

    // Both runs stream their events into results/*.jsonl; every table
    // below is replayed from the captured stream rather than computed
    // from the outcome directly.
    let t0 = std::time::Instant::now();
    let (_, og_events) = run_logged(&sacga_ga(&problem, 1, GENS_MAIN), "fig02_only_global", seed);
    println!("Only-Global done in {:.0} s", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    let (_, nsga2_events) = run_logged(&tpg_ga(&problem, GENS_MAIN), "fig02_nsga2", seed);
    println!("NSGA-II done in {:.0} s", t0.elapsed().as_secs_f64());

    let og_front = replay_final_front(&og_events);
    let nsga2_front = replay_final_front(&nsga2_events);

    print_front("Only-Global (paper's TPG)", &og_front);
    clustering_report("Only-Global", &og_front);
    clustering_report("NSGA-II (modern baseline)", &nsga2_front);

    let mut csv = Vec::new();
    for (label, front) in [("only_global", &og_front), ("nsga2", &nsga2_front)] {
        for (cl, p) in paper_front(front) {
            csv.push(format!("{label},{cl:.6},{p:.9}"));
        }
    }
    write_csv("fig02_nsga2_front.csv", "algorithm,cl_pf,power_w", &csv);
}
