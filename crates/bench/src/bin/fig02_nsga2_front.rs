//! **Fig. 2** — Pareto-optimal front after 800 iterations of the
//! traditional purely-global-competition GA.
//!
//! The paper shows the front clustering mostly between 4 and 5 pF instead
//! of covering the whole 0–5 pF load range. Two baselines are rerun here:
//!
//! * **Only-Global** — the paper's framework with one partition (global
//!   rank-based competition, no density niching), which reproduces the
//!   clustering pathology;
//! * **NSGA-II** — the textbook algorithm with crowded-comparison
//!   selection, reported for transparency: on this substrate its explicit
//!   density maintenance prevents the pathology (see `EXPERIMENTS.md`).

use dse_bench::{
    front_metrics, paper_front, paper_problem, print_front, run_only_global, run_tpg,
    seed_from_args, write_csv, GENS_MAIN,
};
use moea::individual::Individual;

fn clustering_report(name: &str, front: &[Individual]) {
    let (hv, occ, spr, n) = front_metrics(front);
    let rows = paper_front(front);
    let clustered = rows.iter().filter(|(cl, _)| *cl >= 4.0).count();
    println!("\n{name}: {n} designs | hypervolume {hv:.2} | occupancy {occ:.2} | spread {spr:.2}");
    println!(
        "fraction of front in the 4-5 pF band: {:.2} (paper: clustered 'mostly between 4 and 5 pF')",
        clustered as f64 / n.max(1) as f64
    );
}

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    println!("Fig. 2: purely global competition, pop 100 x {GENS_MAIN} iterations, seed {seed}");

    let t0 = std::time::Instant::now();
    let og = run_only_global(&problem, GENS_MAIN, seed);
    println!("Only-Global done in {:.0} s", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    let nsga2 = run_tpg(&problem, GENS_MAIN, seed);
    println!("NSGA-II done in {:.0} s", t0.elapsed().as_secs_f64());

    print_front("Only-Global (paper's TPG)", &og.front);
    clustering_report("Only-Global", &og.front);
    clustering_report("NSGA-II (modern baseline)", &nsga2.front);

    let mut csv = Vec::new();
    for (label, front) in [("only_global", &og.front), ("nsga2", &nsga2.front)] {
        for (cl, p) in paper_front(front) {
            csv.push(format!("{label},{cl:.6},{p:.9}"));
        }
    }
    write_csv("fig02_nsga2_front.csv", "algorithm,cl_pf,power_w", &csv);
}
