//! Pins raw evaluator throughput into `results/BENCH_eval.json`.
//!
//! ```text
//! bench_eval [--quick]
//! ```
//!
//! Measures the scalar `Problem::evaluate` loop against the
//! struct-of-arrays `evaluate_all` batch kernels for both circuit
//! problems, over a fixed deterministic batch of designs, and reports
//! evals/sec plus the batch-over-scalar speedup. Also measures the
//! scheduling arm: a heterogeneous-cost (bimodal spin) workload pushed
//! through a 4-worker engine both generationally (barrier batches) and
//! through a steady [`engine::EvaluationSession`] (windowed submission,
//! quantum drains), reporting the steady-over-barrier speedup that the
//! `bench_gate --eval` CI gate pins. `--quick` shrinks the per-routine
//! budget for CI smoke runs. The evaluation paths are pinned
//! bit-identical by the `batch_equivalence` and session suites, so
//! this binary only cares about throughput.

use std::hint::black_box;
use std::time::{Duration, Instant};

use analog_circuits::{DrivableLoadProblem, IntegratorProblem, Spec};
use engine::{EngineConfig, EvaluatorKind, ExecutionEngine};
use moea::{Evaluation, Problem};

/// Designs per measured repetition (also the kernel batch size).
const BATCH: usize = 256;

/// One kernel's measurement.
struct Sample {
    label: &'static str,
    evals: u64,
    wall_s: f64,
}

impl Sample {
    fn evals_per_sec(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let evals = self.evals as f64;
        evals / self.wall_s
    }
}

/// Deterministic unit-cube batch (same recipe as the equivalence
/// tests, so the measured designs are reproducible across runs).
fn pseudo_batch(n: usize, salt: u64) -> Vec<Vec<f64>> {
    #[allow(clippy::cast_precision_loss)]
    (0..n)
        .map(|i| {
            (0..15)
                .map(|j| {
                    let x = (i as f64 + 1.0) * 12.9898 + j as f64 * 78.233 + salt as f64 * 0.517;
                    (x.sin() * 43758.5453).fract().abs()
                })
                .collect()
        })
        .collect()
}

/// Runs `routine` repeatedly (each rep evaluates `per_rep` designs)
/// until `budget` elapses, after one untimed warm-up rep.
fn measure_n(
    label: &'static str,
    per_rep: usize,
    budget: Duration,
    mut routine: impl FnMut(),
) -> Sample {
    routine();
    let start = Instant::now();
    let mut reps = 0u64;
    while start.elapsed() < budget {
        routine();
        reps += 1;
    }
    Sample {
        label,
        evals: reps * per_rep as u64,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

fn measure(label: &'static str, budget: Duration, routine: impl FnMut()) -> Sample {
    measure_n(label, BATCH, budget, routine)
}

/// Candidates per scheduling-arm repetition.
const SCHED_TOTAL: usize = 512;
/// Worker threads for both scheduling arms.
const SCHED_WORKERS: usize = 4;
/// Barrier batch size of the generational arm.
const SCHED_GEN_BATCH: usize = 16;
/// Look-ahead window of the steady arm.
const SCHED_WINDOW: usize = 64;
/// Merge quantum of the steady arm.
const SCHED_QUANTUM: usize = 8;

/// Bimodal per-candidate cost: most designs are cheap, but a
/// deterministic ~1-in-16 hash bucket costs 16x — the heterogeneity
/// (one slow corner-case simulation per batch, on average) that makes
/// a per-generation barrier expensive. The cost is paid as a blocking
/// sleep, modelling an external simulator call: workers overlap their
/// waits (even on a CPU-starved CI box), but a barrier still stalls the
/// whole batch on its slowest candidate.
fn hetero_cost(genes: &[f64]) -> Duration {
    let h = genes[0].to_bits() ^ genes[1].to_bits().rotate_left(17);
    if h.is_multiple_of(16) {
        Duration::from_micros(800)
    } else {
        Duration::from_micros(50)
    }
}

/// Measures the same heterogeneous workload under the generational
/// barrier (batches of [`SCHED_GEN_BATCH`]) and under a steady
/// [`engine::EvaluationSession`] (window/quantum submission), both on a
/// [`SCHED_WORKERS`]-thread engine. Returns (generational, steady,
/// steady-over-generational speedup).
fn bench_scheduling(budget: Duration) -> (Sample, Sample, f64) {
    let designs = pseudo_batch(SCHED_TOTAL, 7);
    let eval = |genes: &[f64]| {
        std::thread::sleep(hetero_cost(genes));
        Evaluation::new(vec![genes[0]], vec![])
    };
    let batch_eval = |chunk: &[Vec<f64>]| chunk.iter().map(|g| eval(g)).collect::<Vec<_>>();
    let engine_config =
        || EngineConfig::default().evaluator(EvaluatorKind::ParallelWith(SCHED_WORKERS));

    let mut barrier_engine: ExecutionEngine<Evaluation> = ExecutionEngine::new(engine_config());
    let generational = measure_n("hetero_generational", SCHED_TOTAL, budget, || {
        for chunk in designs.chunks(SCHED_GEN_BATCH) {
            black_box(barrier_engine.evaluate_batch(chunk, &eval));
        }
    });

    let mut steady_engine: ExecutionEngine<Evaluation> = ExecutionEngine::new(engine_config());
    let steady = measure_n("hetero_steady", SCHED_TOTAL, budget, || {
        steady_engine.with_session(&eval, &batch_eval, |session| {
            let mut submitted = 0;
            let mut drained = 0;
            while drained < SCHED_TOTAL {
                while submitted < SCHED_TOTAL && submitted - drained < SCHED_WINDOW {
                    session.submit(&designs[submitted]);
                    submitted += 1;
                }
                let want = SCHED_QUANTUM.min(SCHED_TOTAL - drained);
                black_box(session.drain(want).expect("no faults injected"));
                drained += want;
            }
        });
    });

    let speedup = steady.evals_per_sec() / generational.evals_per_sec();
    println!(
        "{:<12} barrier {:>9.0} evals/s | steady {:>9.0} evals/s | {speedup:.2}x ({SCHED_WORKERS} workers)",
        "scheduling",
        generational.evals_per_sec(),
        steady.evals_per_sec(),
    );
    (generational, steady, speedup)
}

fn bench_problem<P: Problem>(
    name: &str,
    problem: &P,
    batch: &[Vec<f64>],
    budget: Duration,
    scalar_label: &'static str,
    batch_label: &'static str,
) -> (Sample, Sample, f64) {
    let scalar = measure(scalar_label, budget, || {
        for genes in batch {
            black_box(problem.evaluate(black_box(genes)));
        }
    });
    let kernel = measure(batch_label, budget, || {
        black_box(problem.evaluate_all(black_box(batch)));
    });
    let speedup = kernel.evals_per_sec() / scalar.evals_per_sec();
    println!(
        "{name:<12} scalar {:>9.0} evals/s | batch {:>9.0} evals/s | {speedup:.2}x",
        scalar.evals_per_sec(),
        kernel.evals_per_sec(),
    );
    (scalar, kernel, speedup)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let budget = if quick {
        Duration::from_millis(100)
    } else {
        Duration::from_millis(400)
    };
    let batch = pseudo_batch(BATCH, 42);

    let drivable = DrivableLoadProblem::new(Spec::featured());
    let (d_scalar, d_batch, d_speedup) = bench_problem(
        "drivable",
        &drivable,
        &batch,
        budget,
        "drivable_scalar",
        "drivable_batch",
    );
    let integrator = IntegratorProblem::new(Spec::featured());
    let (i_scalar, i_batch, i_speedup) = bench_problem(
        "integrator",
        &integrator,
        &batch,
        budget,
        "integrator_scalar",
        "integrator_batch",
    );

    let (generational, steady, sched_speedup) = bench_scheduling(budget);

    let kernels = [
        &d_scalar,
        &d_batch,
        &i_scalar,
        &i_batch,
        &generational,
        &steady,
    ]
    .map(|s| {
        format!(
            "{{\"label\":{:?},\"evals\":{},\"wall_s\":{:?},\"evals_per_sec\":{:?}}}",
            s.label,
            s.evals,
            s.wall_s,
            s.evals_per_sec()
        )
    })
    .join(",");
    // Host parallelism contextualizes the numbers: a 1.1x scheduling
    // speedup on a 2-core CI box is not comparable to one on 32 cores.
    let host_workers = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);
    let doc = format!(
        "{{\"schema\":3,\"batch\":{BATCH},\"host_workers\":{host_workers},\
         \"kernels\":[{kernels}],\
         \"speedup\":{{\"drivable\":{d_speedup:?},\"integrator\":{i_speedup:?}}},\
         \"scheduling\":{{\"total\":{SCHED_TOTAL},\"workers\":{SCHED_WORKERS},\
         \"gen_batch\":{SCHED_GEN_BATCH},\"window\":{SCHED_WINDOW},\
         \"quantum\":{SCHED_QUANTUM},\"steady_speedup\":{sched_speedup:?}}}}}\n"
    );
    let path = std::path::Path::new("results").join("BENCH_eval.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(&path, doc).expect("write BENCH_eval.json");
    println!("\nwrote {}", path.display());
}
