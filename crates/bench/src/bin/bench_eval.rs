//! Pins raw evaluator throughput into `results/BENCH_eval.json`.
//!
//! ```text
//! bench_eval [--quick]
//! ```
//!
//! Measures the scalar `Problem::evaluate` loop against the
//! struct-of-arrays `evaluate_all` batch kernels for both circuit
//! problems, over a fixed deterministic batch of designs, and reports
//! evals/sec plus the batch-over-scalar speedup. `--quick` shrinks the
//! per-routine budget for CI smoke runs. The two paths are pinned
//! bit-identical by the `batch_equivalence` suite, so this binary only
//! cares about throughput.

use std::hint::black_box;
use std::time::{Duration, Instant};

use analog_circuits::{DrivableLoadProblem, IntegratorProblem, Spec};
use moea::Problem;

/// Designs per measured repetition (also the kernel batch size).
const BATCH: usize = 256;

/// One kernel's measurement.
struct Sample {
    label: &'static str,
    evals: u64,
    wall_s: f64,
}

impl Sample {
    fn evals_per_sec(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let evals = self.evals as f64;
        evals / self.wall_s
    }
}

/// Deterministic unit-cube batch (same recipe as the equivalence
/// tests, so the measured designs are reproducible across runs).
fn pseudo_batch(n: usize, salt: u64) -> Vec<Vec<f64>> {
    #[allow(clippy::cast_precision_loss)]
    (0..n)
        .map(|i| {
            (0..15)
                .map(|j| {
                    let x = (i as f64 + 1.0) * 12.9898 + j as f64 * 78.233 + salt as f64 * 0.517;
                    (x.sin() * 43758.5453).fract().abs()
                })
                .collect()
        })
        .collect()
}

/// Runs `routine` repeatedly (each rep evaluates [`BATCH`] designs)
/// until `budget` elapses, after one untimed warm-up rep.
fn measure(label: &'static str, budget: Duration, mut routine: impl FnMut()) -> Sample {
    routine();
    let start = Instant::now();
    let mut reps = 0u64;
    while start.elapsed() < budget {
        routine();
        reps += 1;
    }
    Sample {
        label,
        evals: reps * BATCH as u64,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

fn bench_problem<P: Problem>(
    name: &str,
    problem: &P,
    batch: &[Vec<f64>],
    budget: Duration,
    scalar_label: &'static str,
    batch_label: &'static str,
) -> (Sample, Sample, f64) {
    let scalar = measure(scalar_label, budget, || {
        for genes in batch {
            black_box(problem.evaluate(black_box(genes)));
        }
    });
    let kernel = measure(batch_label, budget, || {
        black_box(problem.evaluate_all(black_box(batch)));
    });
    let speedup = kernel.evals_per_sec() / scalar.evals_per_sec();
    println!(
        "{name:<12} scalar {:>9.0} evals/s | batch {:>9.0} evals/s | {speedup:.2}x",
        scalar.evals_per_sec(),
        kernel.evals_per_sec(),
    );
    (scalar, kernel, speedup)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let budget = if quick {
        Duration::from_millis(100)
    } else {
        Duration::from_millis(400)
    };
    let batch = pseudo_batch(BATCH, 42);

    let drivable = DrivableLoadProblem::new(Spec::featured());
    let (d_scalar, d_batch, d_speedup) = bench_problem(
        "drivable",
        &drivable,
        &batch,
        budget,
        "drivable_scalar",
        "drivable_batch",
    );
    let integrator = IntegratorProblem::new(Spec::featured());
    let (i_scalar, i_batch, i_speedup) = bench_problem(
        "integrator",
        &integrator,
        &batch,
        budget,
        "integrator_scalar",
        "integrator_batch",
    );

    let kernels = [&d_scalar, &d_batch, &i_scalar, &i_batch]
        .map(|s| {
            format!(
                "{{\"label\":{:?},\"evals\":{},\"wall_s\":{:?},\"evals_per_sec\":{:?}}}",
                s.label,
                s.evals,
                s.wall_s,
                s.evals_per_sec()
            )
        })
        .join(",");
    let doc = format!(
        "{{\"schema\":1,\"batch\":{BATCH},\"kernels\":[{kernels}],\
         \"speedup\":{{\"drivable\":{d_speedup:?},\"integrator\":{i_speedup:?}}}}}\n"
    );
    let path = std::path::Path::new("results").join("BENCH_eval.json");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write(&path, doc).expect("write BENCH_eval.json");
    println!("\nwrote {}", path.display());
}
