//! **Fig. 9** — performance of an 8-partition SACGA for progressively
//! larger preset iteration budgets: hypervolume of the final front vs the
//! total number of iterations.
//!
//! The paper observes diminishing returns past ~700 iterations and no
//! meaningful improvement beyond a span of 1000.

use dse_bench::{front_metrics, paper_problem, run_sacga, seed_from_args, write_csv};

fn main() {
    let seed = seed_from_args();
    let problem = paper_problem();
    println!("Fig. 9: SACGA-8 hypervolume vs preset total iteration budget, seed {seed}");
    println!(
        "\n{:>6} {:>10} {:>10} {:>8}",
        "iters", "hv", "occupancy", "front"
    );

    let mut rows = Vec::new();
    for gens in [100usize, 200, 400, 600, 800, 1000, 1200] {
        let t0 = std::time::Instant::now();
        let r = run_sacga(&problem, 8, gens, seed);
        let (hv, occ, _, n) = front_metrics(&r.front);
        println!(
            "{gens:6} {hv:10.3} {occ:10.2} {n:8}   ({:.0} s)",
            t0.elapsed().as_secs_f64()
        );
        rows.push(format!("{gens},{hv:.6},{occ:.4},{n}"));
    }
    write_csv(
        "fig09_span_sweep.csv",
        "iterations,hypervolume,occupancy,front_size",
        &rows,
    );
}
