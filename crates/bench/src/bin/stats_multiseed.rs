//! Multi-seed statistics for the headline comparison — the paper reports
//! single runs (2005 practice); this harness adds medians and spreads
//! over several seeds so the ordering claims can be judged statistically.
//!
//! Runs TPG (Only-Global), SACGA-8, MESACGA and the island-model baseline
//! (\[7\] of the paper) at an equal budget over `N_SEEDS` seeds and prints
//! median / min / max of the paper hypervolume and load-axis occupancy.
//!
//! Usage: `stats_multiseed [base_seed] [gens]` (defaults 42, 400).

use analog_circuits::DrivableLoadProblem;
use dse_bench::{
    front_metrics, paper_problem, run_mesacga, run_only_global, run_sacga, seed_from_args,
    write_csv, PHASE1_MAX, POP,
};
use sacga::island::{IslandConfig, IslandGa};

const N_SEEDS: u64 = 5;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let base_seed = seed_from_args();
    let gens: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let problem = paper_problem();
    println!("multi-seed stats: {N_SEEDS} seeds from {base_seed}, pop {POP} x {gens} generations");

    let mut rows = Vec::new();
    let mut table: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();

    type AlgorithmRunner<'p> = Box<dyn Fn(u64) -> Vec<moea::Individual> + 'p>;
    let algorithms: Vec<(&str, AlgorithmRunner)> = vec![
        (
            "only-global",
            Box::new(|s| run_only_global(&problem, gens, s).front),
        ),
        (
            "sacga8",
            Box::new(|s| run_sacga(&problem, 8, gens, s).front),
        ),
        (
            "mesacga",
            Box::new(|s| {
                let span = (gens.saturating_sub(PHASE1_MAX / 2) / 7).max(1);
                run_mesacga(&problem, span, PHASE1_MAX, s).front
            }),
        ),
        (
            "island5",
            Box::new(|s| {
                let cfg = IslandConfig::builder()
                    .population_size(POP)
                    .generations(gens)
                    .islands(5)
                    .migration_interval(20)
                    .migrants(2)
                    .build()
                    .expect("static config");
                IslandGa::new(&problem, cfg)
                    .run_seeded(s)
                    .expect("run")
                    .front
            }),
        ),
    ];

    for (name, run) in &algorithms {
        let mut hvs = Vec::new();
        let mut occs = Vec::new();
        for k in 0..N_SEEDS {
            let front = run(base_seed + k);
            let (hv, occ, _, _) = front_metrics(&front);
            let _ = DrivableLoadProblem::slice_range();
            hvs.push(hv);
            occs.push(occ);
            rows.push(format!("{name},{},{hv:.6},{occ:.4}", base_seed + k));
        }
        table.push((name.to_string(), hvs, occs));
    }

    println!(
        "\n{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "algorithm", "hv med", "hv min", "hv max", "occ med", "occ min"
    );
    for (name, hvs, occs) in &table {
        println!(
            "{name:<12} {:8.3} {:8.3} {:8.3} {:8.2} {:8.2}",
            median(hvs.clone()),
            hvs.iter().copied().fold(f64::INFINITY, f64::min),
            hvs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            median(occs.clone()),
            occs.iter().copied().fold(f64::INFINITY, f64::min),
        );
    }
    write_csv(
        "stats_multiseed.csv",
        "algorithm,seed,hypervolume,occupancy",
        &rows,
    );
}
