//! CI regression gate over `BENCH_runtime.json` stage breakdowns and
//! the `BENCH_eval.json` scheduling speedup.
//!
//! ```text
//! bench_gate <fresh.json> <baseline.json>
//! bench_gate --eval <BENCH_eval.json> <min_steady_speedup>
//! ```
//!
//! The two-report form replays the comparison
//! [`dse_bench::trace::gate_runtime_report`] defines: every baseline
//! run must still exist in the fresh report with evals/sec above
//! `baseline / 8`, a non-dead memoization cache, and no support stage
//! ballooning past its baseline share of wall-clock. Tolerances are
//! deliberately generous — the gate exists to catch order-of-magnitude
//! regressions across heterogeneous CI machines, not timing jitter.
//!
//! The `--eval` form reads the `scheduling.steady_speedup` field that
//! `bench_eval` records (steady-session over generational-barrier
//! throughput on the heterogeneous-cost workload) and fails when it
//! drops below the given floor — a steady-state scheduling regression.
//!
//! Exit codes: 0 pass, 1 usage error, 2 unreadable input or gate
//! failure.

use std::process::ExitCode;

use dse_bench::trace::{
    gate_runtime_report, parse_eval_report, parse_runtime_report, EVAL_REGEN_HINT,
};

fn gate_eval(path: &str, floor_tok: &str) -> ExitCode {
    let floor: f64 = match floor_tok.parse() {
        Ok(f) => f,
        Err(_) => {
            eprintln!("bench_gate: bad speedup floor {floor_tok:?}");
            return ExitCode::from(1);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_gate: {path}: {e}; {EVAL_REGEN_HINT}");
            return ExitCode::from(2);
        }
    };
    let reading = match parse_eval_report(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(host) = reading.host_workers {
        println!("bench_gate: eval report from a {host}-thread host");
    }
    let speedup = reading.steady_speedup;
    if speedup >= floor {
        println!("bench_gate: ok — steady scheduling speedup {speedup:.2}x >= {floor:.2}x");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_gate: steady scheduling speedup {speedup:.2}x below the {floor:.2}x floor"
        );
        ExitCode::from(2)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let ["--eval", path, floor] = &args
        .iter()
        .map(String::as_str)
        .collect::<Vec<_>>()
        .as_slice()
    {
        return gate_eval(path, floor);
    }
    let [fresh_path, baseline_path] = args.as_slice() else {
        eprintln!(
            "usage: bench_gate <fresh.json> <baseline.json>\n       bench_gate --eval <BENCH_eval.json> <min_steady_speedup>"
        );
        return ExitCode::from(1);
    };
    let fresh = match load(fresh_path) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("bench_gate: {fresh_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load(baseline_path) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("bench_gate: {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = gate_runtime_report(&fresh, &baseline);
    if violations.is_empty() {
        println!(
            "bench_gate: ok — {} run(s) within tolerance of {baseline_path}",
            baseline.len()
        );
        for run in &fresh {
            let eps = run
                .evals_per_sec
                .map_or_else(|| "n/a".to_string(), |e| format!("{e:.1}"));
            let hit = run
                .cache_hit_rate
                .map_or_else(|| "n/a".to_string(), |h| format!("{:.1}%", h * 100.0));
            println!(
                "  {:<24} evals/sec {eps:>9}  cache hits {hit:>6}",
                run.label
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_gate: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::from(2)
    }
}

fn load(path: &str) -> Result<Vec<dse_bench::trace::RuntimeRun>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let runs = parse_runtime_report(&text)?;
    if runs.is_empty() {
        return Err("report holds no runs".to_string());
    }
    Ok(runs)
}
