//! CI regression gate over `BENCH_runtime.json` stage breakdowns.
//!
//! ```text
//! bench_gate <fresh.json> <baseline.json>
//! ```
//!
//! Replays the comparison [`dse_bench::trace::gate_runtime_report`]
//! defines: every baseline run must still exist in the fresh report
//! with evals/sec above `baseline / 8`, a non-dead memoization cache,
//! and no support stage ballooning past its baseline share of
//! wall-clock. Tolerances are deliberately generous — the gate exists
//! to catch order-of-magnitude regressions across heterogeneous CI
//! machines, not timing jitter.
//!
//! Exit codes: 0 pass, 1 usage error, 2 unreadable input or gate
//! failure.

use std::process::ExitCode;

use dse_bench::trace::{gate_runtime_report, parse_runtime_report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [fresh_path, baseline_path] = args.as_slice() else {
        eprintln!("usage: bench_gate <fresh.json> <baseline.json>");
        return ExitCode::from(1);
    };
    let fresh = match load(fresh_path) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("bench_gate: {fresh_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load(baseline_path) {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("bench_gate: {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let violations = gate_runtime_report(&fresh, &baseline);
    if violations.is_empty() {
        println!(
            "bench_gate: ok — {} run(s) within tolerance of {baseline_path}",
            baseline.len()
        );
        for run in &fresh {
            let eps = run
                .evals_per_sec
                .map_or_else(|| "n/a".to_string(), |e| format!("{e:.1}"));
            let hit = run
                .cache_hit_rate
                .map_or_else(|| "n/a".to_string(), |h| format!("{:.1}%", h * 100.0));
            println!(
                "  {:<24} evals/sec {eps:>9}  cache hits {hit:>6}",
                run.label
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_gate: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::from(2)
    }
}

fn load(path: &str) -> Result<Vec<dse_bench::trace::RuntimeRun>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let runs = parse_runtime_report(&text)?;
    if runs.is_empty() {
        return Err("report holds no runs".to_string());
    }
    Ok(runs)
}
