//! `dse_client` — one-shot client for the `dse_serve` text protocol.
//!
//! ```text
//! dse_client <addr> <command> [args...]
//!
//!   dse_client 127.0.0.1:4242 ping
//!   dse_client 127.0.0.1:4242 submit job v1 name=demo problem=schaffer \
//!       algo=sacga:pop=16,gens=10,parts=4 seed=42
//!   dse_client 127.0.0.1:4242 status <id>
//!   dse_client 127.0.0.1:4242 stream <id>
//!   dse_client 127.0.0.1:4242 list
//!   dse_client 127.0.0.1:4242 metrics          # Prometheus text scrape
//!   dse_client 127.0.0.1:4242 metrics json     # one-line JSON snapshot
//!   dse_client 127.0.0.1:4242 debug <id>       # per-job flight recorder
//!   dse_client 127.0.0.1:4242 shutdown
//! ```
//!
//! Prints the server's response lines verbatim; exits 1 on an `err`
//! response, 64 on usage errors.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        return Err("usage: dse_client <addr> <command> [args...]".into());
    }
    let addr = &argv[0];
    let command = argv[1..].join(" ");
    let multi_line = match argv[1].as_str() {
        "list" | "stream" | "debug" => true,
        // `metrics` streams the text exposition; `metrics json` is one line.
        "metrics" => argv.len() == 2,
        _ => false,
    };
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    writeln!(stream, "{command}").map_err(|e| format!("send failed: {e}"))?;
    let reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut failed = false;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read failed: {e}"))?;
        println!("{line}");
        if line.starts_with("err ") {
            failed = true;
            break;
        }
        if !multi_line || line.starts_with("end") {
            break;
        }
    }
    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dse_client: {msg}");
            ExitCode::from(64)
        }
    }
}
