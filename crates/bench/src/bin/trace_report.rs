//! **trace_report** — replay analysis of `results/*.jsonl` run-event
//! logs.
//!
//! ```text
//! trace_report <log.jsonl>... [--json [PATH]] [--scrape ADDR]
//! trace_report --scrape ADDR                    print a live snapshot
//! trace_report --diff <a.jsonl> <b.jsonl>       compare two runs
//! trace_report --clean [DIR]                    remove *.partial/*.bak
//! ```
//!
//! Summary mode prints, per log: generation/evaluation/fault counts,
//! promotion acceptance bucketed by annealing temperature, the
//! hypervolume trajectory, and the per-stage wall-clock breakdown
//! recorded by the `stage_timing` events. `--json` additionally writes
//! the machine-readable runtime aggregate `BENCH_runtime.json`
//! (default `results/BENCH_runtime.json`) that CI publishes.
//!
//! `--scrape ADDR` asks a running `dse_serve` daemon for its live
//! metrics snapshot (the `metrics json` protocol command) and prints
//! it; combined with `--json` the snapshot is folded into the runtime
//! report as a `"scrape"` sibling of `"runs"`.
//!
//! Exit status: `0` on success, `1` on usage errors, `2` when a log
//! cannot be read or replays to an empty summary (no generations) —
//! so CI can use a summary pass as a smoke check.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dse_bench::trace::{
    merge_reference, reference_point, runtime_json_entry, RunSummary, TrajectoryPoint,
};
use dse_bench::{clean_stale_artifacts, read_jsonl_events_lossy};
use engine::Stage;
use sacga::telemetry::RunEvent;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--help" | "-h") => {
            eprintln!(
                "usage: trace_report <log.jsonl>... [--json [PATH]] [--scrape ADDR]\n\
                 \x20      trace_report --scrape ADDR\n\
                 \x20      trace_report --diff <a.jsonl> <b.jsonl>\n\
                 \x20      trace_report --clean [DIR]"
            );
            ExitCode::from(u8::from(args.is_empty()))
        }
        Some("--diff") => match &args[1..] {
            [a, b] => diff(Path::new(a), Path::new(b)),
            _ => {
                eprintln!("usage: trace_report --diff <a.jsonl> <b.jsonl>");
                ExitCode::from(1)
            }
        },
        Some("--clean") => {
            let dir = args.get(1).map_or("results", String::as_str);
            let removed = clean_stale_artifacts(Path::new(dir));
            for path in &removed {
                println!("removed {}", path.display());
            }
            println!("{} stale file(s) removed from {dir}", removed.len());
            ExitCode::SUCCESS
        }
        Some(_) => summaries(&args),
    }
}

/// Loads a log leniently, reporting skipped lines on stderr. `None`
/// when the file cannot be read or holds no events at all.
fn load(path: &Path) -> Option<(Vec<RunEvent>, usize)> {
    if !path.is_file() {
        eprintln!("trace_report: cannot read {}", path.display());
        return None;
    }
    let (events, skipped) = read_jsonl_events_lossy(path);
    if skipped > 0 {
        eprintln!(
            "trace_report: skipped {skipped} corrupt line(s) in {}",
            path.display()
        );
    }
    if events.is_empty() {
        eprintln!("trace_report: {} replays to no events", path.display());
        return None;
    }
    Some((events, skipped))
}

fn summaries(args: &[String]) -> ExitCode {
    let mut logs: Vec<PathBuf> = Vec::new();
    let mut json_path: Option<PathBuf> = None;
    let mut scrape_addr: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--json" {
            let next = iter.peek().filter(|a| !a.starts_with("--"));
            json_path = Some(match next {
                Some(_) => PathBuf::from(iter.next().unwrap()),
                None => PathBuf::from("results/BENCH_runtime.json"),
            });
        } else if arg == "--scrape" {
            match iter.next() {
                Some(addr) => scrape_addr = Some(addr.clone()),
                None => {
                    eprintln!("trace_report: --scrape needs an address");
                    return ExitCode::from(1);
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("trace_report: unknown flag {arg}");
            return ExitCode::from(1);
        } else {
            logs.push(PathBuf::from(arg));
        }
    }
    if logs.is_empty() && scrape_addr.is_none() {
        eprintln!("trace_report: no logs given");
        return ExitCode::from(1);
    }

    let scrape = match &scrape_addr {
        Some(addr) => match scrape_metrics(addr) {
            Ok(snapshot) => {
                println!("live scrape from {addr}: {} bytes", snapshot.len());
                Some(snapshot)
            }
            Err(e) => {
                eprintln!("trace_report: scrape of {addr} failed: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let mut entries = Vec::new();
    for path in &logs {
        let Some((events, skipped)) = load(path) else {
            return ExitCode::from(2);
        };
        let summary = RunSummary::from_events(&events, None);
        if summary.generations == 0 {
            eprintln!(
                "trace_report: {} holds no completed generations",
                path.display()
            );
            return ExitCode::from(2);
        }
        print_summary(path, &summary, skipped);
        let label = path.file_stem().map_or_else(
            || path.display().to_string(),
            |s| s.to_string_lossy().into(),
        );
        entries.push(runtime_json_entry(&label, &summary, skipped));
    }

    if let Some(path) = json_path {
        // The parser brace-matches inside "runs":[...], so the optional
        // "scrape" sibling stays backward compatible.
        let scrape_field = scrape
            .as_deref()
            .map_or_else(String::new, |s| format!(",\"scrape\":{s}"));
        let doc = format!(
            "{{\"schema\":1,\"runs\":[{}]{scrape_field}}}\n",
            entries.join(",")
        );
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("trace_report: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("\nwrote {}", path.display());
    } else if let Some(snapshot) = &scrape {
        println!("{snapshot}");
    }
    ExitCode::SUCCESS
}

/// Fetches one `metrics json` snapshot from a running daemon over the
/// line protocol; returns the bare JSON document.
fn scrape_metrics(addr: &str) -> Result<String, String> {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    writeln!(stream, "metrics json").map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let line = line.trim_end();
    line.strip_prefix("ok ")
        .filter(|body| body.starts_with('{'))
        .map(str::to_string)
        .ok_or_else(|| format!("unexpected reply {line:?}"))
}

fn print_summary(path: &Path, s: &RunSummary, skipped: usize) {
    println!("== {} ==", path.display());
    println!(
        "generations     {:>10}  (phase I: {})",
        s.generations, s.phase1_generations
    );
    println!("evaluations     {:>10}", s.evaluations);
    println!(
        "fault episodes  {:>10}  ({} quarantined)",
        s.fault_episodes, s.fault_quarantined
    );
    if s.checkpoints > 0 {
        println!("checkpoints     {:>10}", s.checkpoints);
    }
    if skipped > 0 {
        println!("corrupt lines   {:>10}  (skipped)", skipped);
    }

    let acceptance = s.acceptance_by_temperature(5);
    if acceptance.is_empty() {
        println!("promotion acceptance: no annealed promotions recorded");
    } else {
        println!("promotion acceptance by temperature (cold -> hot):");
        for (upper, promoted, candidates) in acceptance {
            #[allow(clippy::cast_precision_loss)]
            let pct = 100.0 * promoted as f64 / candidates as f64;
            println!("  T <= {upper:<8.4} {pct:5.1}%  ({promoted}/{candidates})");
        }
    }

    let ref_point: Vec<String> = s.ref_point.iter().map(|x| format!("{x:.3e}")).collect();
    println!("hypervolume trajectory (ref [{}]):", ref_point.join(", "));
    for point in sample_trajectory(&s.trajectory, 10) {
        println!(
            "  gen {:>5}  front {:>4}  feasible {:>4}  hv {:.4e}",
            point.generation, point.front_size, point.feasible, point.hypervolume
        );
    }

    if s.timed_generations == 0 {
        println!("stage breakdown: no stage timings recorded (v1 log or timing-free sink)");
    } else {
        let total = s.wall_seconds();
        println!(
            "stage breakdown over {} timed generations ({total:.3} s):",
            s.timed_generations
        );
        for stage in Stage::ALL {
            #[allow(clippy::cast_precision_loss)]
            let secs = s.stages.get(stage) as f64 / 1e9;
            let pct = if total > 0.0 {
                100.0 * secs / total
            } else {
                0.0
            };
            println!("  {:<10} {secs:>10.3} s  {pct:5.1}%", stage.name());
        }
        if let Some(eps) = s.evals_per_sec() {
            println!("  evals/sec  {eps:>10.1}");
        }
        if let Some(rate) = s.cache_hit_rate() {
            println!(
                "  cache hits {:>9.1}%  ({}/{})",
                100.0 * rate,
                s.cache_hits,
                s.candidates
            );
        }
    }
    println!();
}

/// At most `max` evenly spaced trajectory points, always keeping the
/// first and last.
fn sample_trajectory(trajectory: &[TrajectoryPoint], max: usize) -> Vec<&TrajectoryPoint> {
    if trajectory.len() <= max {
        return trajectory.iter().collect();
    }
    let last = trajectory.len() - 1;
    let mut picks: Vec<usize> = (0..max).map(|i| i * last / (max - 1)).collect();
    picks.dedup();
    picks.iter().map(|&i| &trajectory[i]).collect()
}

fn diff(path_a: &Path, path_b: &Path) -> ExitCode {
    let (Some((events_a, skipped_a)), Some((events_b, skipped_b))) = (load(path_a), load(path_b))
    else {
        return ExitCode::from(2);
    };
    // One shared reference point so the hypervolumes are comparable.
    let shared = merge_reference(reference_point(&events_a), reference_point(&events_b));
    let a = RunSummary::from_events(&events_a, shared.clone());
    let b = RunSummary::from_events(&events_b, shared);
    if a.generations == 0 || b.generations == 0 {
        eprintln!("trace_report: a diffed log holds no completed generations");
        return ExitCode::from(2);
    }
    if skipped_a + skipped_b > 0 {
        println!(
            "(skipped corrupt lines: {} in A, {} in B)",
            skipped_a, skipped_b
        );
    }

    println!("A = {}", path_a.display());
    println!("B = {}", path_b.display());
    println!("{:<18} {:>14} {:>14} {:>14}", "metric", "A", "B", "B - A");
    let rows: Vec<(&str, f64, f64)> = vec![
        ("generations", to_f64(a.generations), to_f64(b.generations)),
        ("evaluations", to_f64(a.evaluations), to_f64(b.evaluations)),
        (
            "fault episodes",
            to_f64(a.fault_episodes),
            to_f64(b.fault_episodes),
        ),
        (
            "final front size",
            a.last().map_or(0.0, |p| to_f64(p.front_size)),
            b.last().map_or(0.0, |p| to_f64(p.front_size)),
        ),
        ("wall s", a.wall_seconds(), b.wall_seconds()),
        (
            "evals/sec",
            a.evals_per_sec().unwrap_or(0.0),
            b.evals_per_sec().unwrap_or(0.0),
        ),
    ];
    for (name, va, vb) in rows {
        println!("{name:<18} {va:>14.3} {vb:>14.3} {:>+14.3}", vb - va);
    }
    // Hypervolumes live on the problem's objective scale (tiny for the
    // paper problem), so print them in scientific notation.
    let hv_a = a.last().map_or(0.0, |p| p.hypervolume);
    let hv_b = b.last().map_or(0.0, |p| p.hypervolume);
    println!(
        "{:<18} {hv_a:>14.4e} {hv_b:>14.4e} {:>+14.4e}",
        "final hv (shared)",
        hv_b - hv_a
    );
    if a.timed_generations > 0 || b.timed_generations > 0 {
        println!("per-stage seconds:");
        for stage in Stage::ALL {
            #[allow(clippy::cast_precision_loss)]
            let sa = a.stages.get(stage) as f64 / 1e9;
            #[allow(clippy::cast_precision_loss)]
            let sb = b.stages.get(stage) as f64 / 1e9;
            println!(
                "  {:<16} {sa:>14.3} {sb:>14.3} {:>+14.3}",
                stage.name(),
                sb - sa
            );
        }
    }
    ExitCode::SUCCESS
}

/// Lossy-but-fine numeric conversion for table printing.
#[allow(clippy::cast_precision_loss)]
fn to_f64(x: impl TryInto<u64>) -> f64 {
    x.try_into().map_or(f64::NAN, |v: u64| v as f64)
}
