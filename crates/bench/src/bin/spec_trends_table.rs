//! **Sec. 5 trends table** — the paper evaluated all three approaches on
//! 20 circuit specifications graded by difficulty and reports that, for
//! budgets above ~650 iterations, front quality ordered
//! MESACGA ≥ SACGA ≥ TPG in every case (and that SACGA/MESACGA cost ~18 %
//! more wall-clock time, measured by the criterion bench instead).
//!
//! This binary reruns the three algorithms on every graded specification
//! and prints the per-spec hypervolumes plus the aggregate win counts.
//!
//! Budget per run defaults to 700 iterations (paper trend regime); pass a
//! second CLI argument to change it: `spec_trends_table [seed] [gens]`.

use analog_circuits::{DrivableLoadProblem, Spec};
use dse_bench::{
    front_individuals, front_metrics, mesacga_ga, replay_final_front, run_only_global, run_sacga,
    seed_from_args, write_csv, PHASE1_MAX,
};
use sacga::telemetry::{MemorySink, Optimizer};

fn main() {
    let seed = seed_from_args();
    let gens: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(700);
    println!("Sec. 5 trends: 20 graded specs x 3 algorithms, pop 100 x {gens}, seed {seed}");
    println!(
        "\n{:<10} {:>9} {:>9} {:>9} {:>22}",
        "spec", "TPG", "SACGA-8", "MESACGA", "ordering (lower=better)"
    );

    let mut rows = Vec::new();
    let mut sacga_beats_tpg = 0usize;
    let mut mesacga_beats_sacga = 0usize;
    let mut mesacga_beats_tpg = 0usize;
    let suite = Spec::graded_suite();
    let total = suite.len();
    for spec in suite {
        let name = spec.name.clone();
        let problem = DrivableLoadProblem::new(spec);
        let tpg = run_only_global(&problem, gens, seed);
        let sac = run_sacga(&problem, 8, gens, seed);
        let span = (gens.saturating_sub(sac.gen_t.min(PHASE1_MAX)) / 7).max(1);
        // The MESACGA column is replayed from its event stream: the final
        // front is the one carried by the last GenerationEnd event.
        let mut events = MemorySink::new();
        mesacga_ga(&problem, span, PHASE1_MAX)
            .run_with(seed, &mut events)
            .expect("mesacga run");
        let mes_front = front_individuals(&replay_final_front(events.events()));

        let (hv_t, _, _, _) = front_metrics(&tpg.front);
        let (hv_s, _, _, _) = front_metrics(&sac.front);
        let (hv_m, _, _, _) = front_metrics(&mes_front);
        if hv_s <= hv_t {
            sacga_beats_tpg += 1;
        }
        if hv_m <= hv_s {
            mesacga_beats_sacga += 1;
        }
        if hv_m <= hv_t {
            mesacga_beats_tpg += 1;
        }
        let mut order = [("MESACGA", hv_m), ("SACGA", hv_s), ("TPG", hv_t)];
        order.sort_by(|a, b| a.1.total_cmp(&b.1));
        let order_str = format!("{} < {} < {}", order[0].0, order[1].0, order[2].0);
        println!("{name:<10} {hv_t:9.3} {hv_s:9.3} {hv_m:9.3} {order_str:>22}");
        rows.push(format!("{name},{hv_t:.6},{hv_s:.6},{hv_m:.6}"));
    }

    println!(
        "\nSACGA <= TPG on {sacga_beats_tpg}/{total} specs; MESACGA <= SACGA on \
         {mesacga_beats_sacga}/{total}; MESACGA <= TPG on {mesacga_beats_tpg}/{total}"
    );
    println!("(paper: MESACGA >= SACGA >= TPG on all 20 for budgets > 650 iterations)");
    write_csv(
        "spec_trends_table.csv",
        "spec,hv_tpg,hv_sacga8,hv_mesacga",
        &rows,
    );
}
