//! Replay analysis of run-event logs: the per-run summaries, reference
//! points and runtime aggregates behind the `trace_report` binary.
//!
//! Everything here works on replayed [`RunEvent`] streams — no live
//! optimizer state — so any `results/*.jsonl` log, including one
//! recovered from a crash, can be summarized after the fact.

use engine::{Stage, StageNanos};
use moea::hypervolume::hypervolume;
use sacga::telemetry::RunEvent;

/// One promotion step joined with the temperature its generation ran
/// at (from the matching [`RunEvent::GenerationEnd`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPoint {
    /// Generation the promotion fed into.
    pub generation: usize,
    /// Annealing temperature of that generation (∞ during phase I).
    pub temperature: f64,
    /// Candidates that won the SA gamble.
    pub promoted: usize,
    /// Locally superior candidates considered.
    pub candidates: usize,
}

/// One generation of the convergence trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Generation index.
    pub generation: usize,
    /// Points on the feasible global front.
    pub front_size: usize,
    /// Feasible individuals in the population.
    pub feasible: usize,
    /// Front hypervolume against the summary's reference point.
    pub hypervolume: f64,
}

/// Everything `trace_report` prints about one run, computed from a
/// replayed event stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Executed generations (`GenerationEnd` count).
    pub generations: usize,
    /// Generations spent in phase I (pure local competition).
    pub phase1_generations: usize,
    /// Cumulative objective evaluations (from the last `GenerationEnd`).
    pub evaluations: u64,
    /// Fault episodes (retries-to-success plus quarantines).
    pub fault_episodes: u64,
    /// Fault episodes that ended in quarantine.
    pub fault_quarantined: u64,
    /// Suspension checkpoints written.
    pub checkpoints: usize,
    /// Promotion steps joined with their generation's temperature.
    pub promotions: Vec<PromotionPoint>,
    /// Per-generation front trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Reference point the trajectory hypervolumes were measured
    /// against (empty when the log carries no front points).
    pub ref_point: Vec<f64>,
    /// Summed per-stage wall-clock across all timed generations.
    pub stages: StageNanos,
    /// Generations that carried a `StageTiming` event.
    pub timed_generations: usize,
    /// Candidates submitted to the engine across timed generations.
    pub candidates: u64,
    /// Evaluations actually performed across timed generations.
    pub timed_evaluations: u64,
    /// Candidates answered from the memoization cache.
    pub cache_hits: u64,
}

impl RunSummary {
    /// Summarizes a replayed event stream. `ref_point` overrides the
    /// hypervolume reference (pass the union reference when comparing
    /// runs); `None` derives it from this stream via
    /// [`reference_point`].
    pub fn from_events(events: &[RunEvent], ref_point: Option<Vec<f64>>) -> RunSummary {
        let mut s = RunSummary {
            ref_point: ref_point
                .or_else(|| reference_point(events))
                .unwrap_or_default(),
            ..RunSummary::default()
        };
        let mut pending: Vec<(usize, usize, usize)> = Vec::new();
        for event in events {
            match event {
                RunEvent::GenerationEnd {
                    generation,
                    phase,
                    temperature,
                    feasible,
                    evaluations,
                    front,
                    ..
                } => {
                    s.generations += 1;
                    if *phase == 1 {
                        s.phase1_generations += 1;
                    }
                    s.evaluations = s.evaluations.max(*evaluations);
                    let hv = if front.is_empty() || s.ref_point.is_empty() {
                        0.0
                    } else {
                        hypervolume(front, &s.ref_point)
                    };
                    s.trajectory.push(TrajectoryPoint {
                        generation: *generation,
                        front_size: front.len(),
                        feasible: *feasible,
                        hypervolume: hv,
                    });
                    pending.retain(|&(gen, promoted, candidates)| {
                        if gen == *generation {
                            s.promotions.push(PromotionPoint {
                                generation: gen,
                                temperature: *temperature,
                                promoted,
                                candidates,
                            });
                            false
                        } else {
                            true
                        }
                    });
                }
                RunEvent::Promotion {
                    generation,
                    promoted,
                    candidates,
                } => pending.push((*generation, *promoted, *candidates)),
                RunEvent::EvaluationFault { resolution, .. } => {
                    s.fault_episodes += 1;
                    if matches!(resolution, engine::FaultResolution::Quarantined) {
                        s.fault_quarantined += 1;
                    }
                }
                RunEvent::CheckpointWritten { .. } => s.checkpoints += 1,
                RunEvent::StageTiming {
                    stages,
                    candidates,
                    evaluations,
                    cache_hits,
                    ..
                } => {
                    s.timed_generations += 1;
                    s.stages.merge(stages);
                    s.candidates += candidates;
                    s.timed_evaluations += evaluations;
                    s.cache_hits += cache_hits;
                }
                RunEvent::PhaseTransition { .. } | RunEvent::PartitionFeasible { .. } => {}
            }
        }
        s
    }

    /// Total timed wall-clock in seconds (0 when the log carries no
    /// stage timings).
    pub fn wall_seconds(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let ns = self.stages.total() as f64;
        ns / 1e9
    }

    /// Evaluations per timed second; `None` without stage timings.
    pub fn evals_per_sec(&self) -> Option<f64> {
        let wall = self.wall_seconds();
        #[allow(clippy::cast_precision_loss)]
        (wall > 0.0).then(|| self.timed_evaluations as f64 / wall)
    }

    /// Fraction of candidates answered from the memoization cache;
    /// `None` without stage timings.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.candidates > 0).then(|| self.cache_hits as f64 / self.candidates as f64)
    }

    /// Final trajectory point, if any generation ran.
    pub fn last(&self) -> Option<&TrajectoryPoint> {
        self.trajectory.last()
    }

    /// Aggregates promotion acceptance into `bins` equal-width
    /// temperature bins over the observed finite-temperature range:
    /// `(temperature-bin upper edge, promoted, candidates)` rows,
    /// coldest bin first. Empty when no finite-temperature promotions
    /// were recorded.
    pub fn acceptance_by_temperature(&self, bins: usize) -> Vec<(f64, usize, usize)> {
        let finite: Vec<&PromotionPoint> = self
            .promotions
            .iter()
            .filter(|p| p.temperature.is_finite() && p.candidates > 0)
            .collect();
        if finite.is_empty() || bins == 0 {
            return Vec::new();
        }
        let lo = finite
            .iter()
            .map(|p| p.temperature)
            .fold(f64::MAX, f64::min);
        let hi = finite
            .iter()
            .map(|p| p.temperature)
            .fold(f64::MIN, f64::max);
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut rows = vec![(0.0, 0usize, 0usize); bins];
        for (i, row) in rows.iter_mut().enumerate() {
            row.0 = lo + width * (i + 1) as f64;
        }
        for p in finite {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let bin = (((p.temperature - lo) / width) as usize).min(bins - 1);
            rows[bin].1 += p.promoted;
            rows[bin].2 += p.candidates;
        }
        rows.retain(|&(_, _, candidates)| candidates > 0);
        rows
    }
}

/// Derives a hypervolume reference point from every front point in an
/// event stream: the per-objective maximum, padded by 5% of the range
/// so extreme points still contribute volume. `None` when the stream
/// carries no front points.
pub fn reference_point(events: &[RunEvent]) -> Option<Vec<f64>> {
    let mut lo: Vec<f64> = Vec::new();
    let mut hi: Vec<f64> = Vec::new();
    for event in events {
        let RunEvent::GenerationEnd { front, .. } = event else {
            continue;
        };
        for point in front {
            if lo.is_empty() {
                lo = point.clone();
                hi = point.clone();
                continue;
            }
            for (i, &x) in point.iter().enumerate().take(lo.len()) {
                lo[i] = lo[i].min(x);
                hi[i] = hi[i].max(x);
            }
        }
    }
    if hi.is_empty() {
        return None;
    }
    Some(
        hi.iter()
            .zip(&lo)
            .map(|(&h, &l)| h + 0.05 * (h - l).max(1e-12))
            .collect(),
    )
}

/// Merges reference points by taking the per-objective maximum, so two
/// runs can be diffed against one shared reference.
pub fn merge_reference(a: Option<Vec<f64>>, b: Option<Vec<f64>>) -> Option<Vec<f64>> {
    match (a, b) {
        (Some(a), Some(b)) => Some(
            a.iter()
                .zip(&b)
                .map(|(&x, &y)| x.max(y))
                .collect::<Vec<f64>>(),
        ),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

/// Renders one run's row of `BENCH_runtime.json` (an object literal;
/// the binary assembles the surrounding document).
pub fn runtime_json_entry(label: &str, summary: &RunSummary, skipped_lines: usize) -> String {
    let mut stage_fields = String::new();
    for stage in Stage::ALL {
        if !stage_fields.is_empty() {
            stage_fields.push(',');
        }
        #[allow(clippy::cast_precision_loss)]
        let secs = summary.stages.get(stage) as f64 / 1e9;
        stage_fields.push_str(&format!("\"{}\":{}", stage.name(), json_f64(secs)));
    }
    let evals_per_sec = summary
        .evals_per_sec()
        .map_or_else(|| "null".to_string(), json_f64);
    let cache_hit_rate = summary
        .cache_hit_rate()
        .map_or_else(|| "null".to_string(), json_f64);
    format!(
        "{{\"label\":{label:?},\"generations\":{},\"evaluations\":{},\
         \"fault_episodes\":{},\"quarantined\":{},\"skipped_lines\":{skipped_lines},\
         \"timed_generations\":{},\"wall_s\":{},\"evals_per_sec\":{evals_per_sec},\
         \"cache_hit_rate\":{cache_hit_rate},\"stage_s\":{{{stage_fields}}}}}",
        summary.generations,
        summary.evaluations,
        summary.fault_episodes,
        summary.fault_quarantined,
        summary.timed_generations,
        json_f64(summary.wall_seconds()),
    )
}

/// Formats a finite float as a JSON number (shortest round-trip form).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_end(
        generation: usize,
        phase: u8,
        temperature: f64,
        evaluations: u64,
        front: Vec<Vec<f64>>,
    ) -> RunEvent {
        RunEvent::GenerationEnd {
            generation,
            phase,
            temperature,
            promoted: 0,
            feasible: front.len(),
            population: 40,
            evaluations,
            front,
        }
    }

    fn timing(generation: usize, evaluation_ns: u64, candidates: u64, hits: u64) -> RunEvent {
        RunEvent::StageTiming {
            generation,
            stages: StageNanos {
                variation: 1_000,
                evaluation: evaluation_ns,
                ranking: 500,
                promotion: 0,
                selection: 250,
            },
            candidates,
            evaluations: candidates - hits,
            cache_hits: hits,
        }
    }

    fn sample_stream() -> Vec<RunEvent> {
        vec![
            gen_end(1, 1, f64::INFINITY, 40, vec![]),
            timing(1, 1_000_000_000, 40, 0),
            RunEvent::Promotion {
                generation: 2,
                promoted: 3,
                candidates: 10,
            },
            gen_end(2, 2, 0.8, 80, vec![vec![1.0, 2.0], vec![2.0, 1.0]]),
            timing(2, 1_000_000_000, 40, 10),
            RunEvent::Promotion {
                generation: 3,
                promoted: 1,
                candidates: 10,
            },
            gen_end(3, 2, 0.2, 120, vec![vec![0.5, 2.0], vec![2.0, 0.5]]),
            timing(3, 1_000_000_000, 40, 20),
        ]
    }

    #[test]
    fn summary_counts_and_trajectory() {
        let s = RunSummary::from_events(&sample_stream(), None);
        assert_eq!(s.generations, 3);
        assert_eq!(s.phase1_generations, 1);
        assert_eq!(s.evaluations, 120);
        assert_eq!(s.timed_generations, 3);
        assert_eq!(s.candidates, 120);
        assert_eq!(s.cache_hits, 30);
        assert_eq!(s.trajectory.len(), 3);
        assert_eq!(s.trajectory[0].hypervolume, 0.0);
        assert!(s.trajectory[2].hypervolume > s.trajectory[1].hypervolume);
    }

    #[test]
    fn promotions_join_their_generations_temperature() {
        let s = RunSummary::from_events(&sample_stream(), None);
        assert_eq!(s.promotions.len(), 2);
        assert_eq!(s.promotions[0].temperature, 0.8);
        assert_eq!(s.promotions[1].temperature, 0.2);
        let rows = s.acceptance_by_temperature(2);
        assert_eq!(rows.len(), 2);
        // Cold bin holds the gen-3 promotion (1/10), hot the gen-2 (3/10).
        assert_eq!((rows[0].1, rows[0].2), (1, 10));
        assert_eq!((rows[1].1, rows[1].2), (3, 10));
    }

    #[test]
    fn runtime_rates_derive_from_stage_timings() {
        let s = RunSummary::from_events(&sample_stream(), None);
        // Three timed generations, ~1s evaluation each plus small spans.
        assert!(s.wall_seconds() > 3.0 && s.wall_seconds() < 3.1);
        let eps = s.evals_per_sec().unwrap();
        assert!(eps > 28.0 && eps < 31.0, "evals/sec {eps}");
        let hit = s.cache_hit_rate().unwrap();
        assert!((hit - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_without_timings_has_no_rates() {
        let events = vec![gen_end(1, 2, 1.0, 40, vec![vec![1.0, 1.0]])];
        let s = RunSummary::from_events(&events, None);
        assert_eq!(s.timed_generations, 0);
        assert_eq!(s.evals_per_sec(), None);
        assert_eq!(s.cache_hit_rate(), None);
    }

    #[test]
    fn reference_point_pads_the_observed_maximum() {
        let r = reference_point(&sample_stream()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r[0] > 2.0 && r[1] > 2.0);
        let merged = merge_reference(Some(vec![5.0, 1.0]), Some(r.clone())).unwrap();
        assert_eq!(merged[0], 5.0);
        assert_eq!(merged[1], r[1]);
    }

    #[test]
    fn runtime_json_entry_is_parseable_shape() {
        let s = RunSummary::from_events(&sample_stream(), None);
        let json = runtime_json_entry("demo", &s, 1);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"label\":\"demo\""));
        assert!(json.contains("\"skipped_lines\":1"));
        assert!(json.contains("\"evaluation\":"));
        assert!(!json.contains("inf"));
    }
}
