//! Replay analysis of run-event logs: the per-run summaries, reference
//! points and runtime aggregates behind the `trace_report` binary.
//!
//! Everything here works on replayed [`RunEvent`] streams — no live
//! optimizer state — so any `results/*.jsonl` log, including one
//! recovered from a crash, can be summarized after the fact.

use engine::{Stage, StageNanos};
use moea::hypervolume::hypervolume;
use sacga::telemetry::RunEvent;

/// One promotion step joined with the temperature its generation ran
/// at (from the matching [`RunEvent::GenerationEnd`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPoint {
    /// Generation the promotion fed into.
    pub generation: usize,
    /// Annealing temperature of that generation (∞ during phase I).
    pub temperature: f64,
    /// Candidates that won the SA gamble.
    pub promoted: usize,
    /// Locally superior candidates considered.
    pub candidates: usize,
}

/// One generation of the convergence trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Generation index.
    pub generation: usize,
    /// Points on the feasible global front.
    pub front_size: usize,
    /// Feasible individuals in the population.
    pub feasible: usize,
    /// Front hypervolume against the summary's reference point.
    pub hypervolume: f64,
}

/// Everything `trace_report` prints about one run, computed from a
/// replayed event stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSummary {
    /// Executed generations (`GenerationEnd` count).
    pub generations: usize,
    /// Generations spent in phase I (pure local competition).
    pub phase1_generations: usize,
    /// Cumulative objective evaluations (from the last `GenerationEnd`).
    pub evaluations: u64,
    /// Fault episodes (retries-to-success plus quarantines).
    pub fault_episodes: u64,
    /// Fault episodes that ended in quarantine.
    pub fault_quarantined: u64,
    /// Suspension checkpoints written.
    pub checkpoints: usize,
    /// Promotion steps joined with their generation's temperature.
    pub promotions: Vec<PromotionPoint>,
    /// Per-generation front trajectory.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Reference point the trajectory hypervolumes were measured
    /// against (empty when the log carries no front points).
    pub ref_point: Vec<f64>,
    /// Summed per-stage wall-clock across all timed generations.
    pub stages: StageNanos,
    /// Generations that carried a `StageTiming` event.
    pub timed_generations: usize,
    /// Candidates submitted to the engine across timed generations.
    pub candidates: u64,
    /// Evaluations actually performed across timed generations.
    pub timed_evaluations: u64,
    /// Candidates answered from the memoization cache.
    pub cache_hits: u64,
}

impl RunSummary {
    /// Summarizes a replayed event stream. `ref_point` overrides the
    /// hypervolume reference (pass the union reference when comparing
    /// runs); `None` derives it from this stream via
    /// [`reference_point`].
    pub fn from_events(events: &[RunEvent], ref_point: Option<Vec<f64>>) -> RunSummary {
        let mut s = RunSummary {
            ref_point: ref_point
                .or_else(|| reference_point(events))
                .unwrap_or_default(),
            ..RunSummary::default()
        };
        let mut pending: Vec<(usize, usize, usize)> = Vec::new();
        for event in events {
            match event {
                RunEvent::GenerationEnd {
                    generation,
                    phase,
                    temperature,
                    feasible,
                    evaluations,
                    front,
                    ..
                } => {
                    s.generations += 1;
                    if *phase == 1 {
                        s.phase1_generations += 1;
                    }
                    s.evaluations = s.evaluations.max(*evaluations);
                    let hv = if front.is_empty() || s.ref_point.is_empty() {
                        0.0
                    } else {
                        hypervolume(front, &s.ref_point)
                    };
                    s.trajectory.push(TrajectoryPoint {
                        generation: *generation,
                        front_size: front.len(),
                        feasible: *feasible,
                        hypervolume: hv,
                    });
                    pending.retain(|&(gen, promoted, candidates)| {
                        if gen == *generation {
                            s.promotions.push(PromotionPoint {
                                generation: gen,
                                temperature: *temperature,
                                promoted,
                                candidates,
                            });
                            false
                        } else {
                            true
                        }
                    });
                }
                RunEvent::Promotion {
                    generation,
                    promoted,
                    candidates,
                } => pending.push((*generation, *promoted, *candidates)),
                RunEvent::EvaluationFault { resolution, .. } => {
                    s.fault_episodes += 1;
                    if matches!(resolution, engine::FaultResolution::Quarantined) {
                        s.fault_quarantined += 1;
                    }
                }
                RunEvent::CheckpointWritten { .. } => s.checkpoints += 1,
                RunEvent::StageTiming {
                    stages,
                    candidates,
                    evaluations,
                    cache_hits,
                    ..
                } => {
                    s.timed_generations += 1;
                    s.stages.merge(stages);
                    s.candidates += candidates;
                    s.timed_evaluations += evaluations;
                    s.cache_hits += cache_hits;
                }
                RunEvent::PhaseTransition { .. } | RunEvent::PartitionFeasible { .. } => {}
            }
        }
        s
    }

    /// Total timed wall-clock in seconds (0 when the log carries no
    /// stage timings).
    pub fn wall_seconds(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let ns = self.stages.total() as f64;
        ns / 1e9
    }

    /// Evaluations per timed second; `None` without stage timings.
    pub fn evals_per_sec(&self) -> Option<f64> {
        let wall = self.wall_seconds();
        #[allow(clippy::cast_precision_loss)]
        (wall > 0.0).then(|| self.timed_evaluations as f64 / wall)
    }

    /// Fraction of candidates answered from the memoization cache;
    /// `None` without stage timings.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        (self.candidates > 0).then(|| self.cache_hits as f64 / self.candidates as f64)
    }

    /// Final trajectory point, if any generation ran.
    pub fn last(&self) -> Option<&TrajectoryPoint> {
        self.trajectory.last()
    }

    /// Aggregates promotion acceptance into `bins` equal-width
    /// temperature bins over the observed finite-temperature range:
    /// `(temperature-bin upper edge, promoted, candidates)` rows,
    /// coldest bin first. Empty when no finite-temperature promotions
    /// were recorded.
    pub fn acceptance_by_temperature(&self, bins: usize) -> Vec<(f64, usize, usize)> {
        let finite: Vec<&PromotionPoint> = self
            .promotions
            .iter()
            .filter(|p| p.temperature.is_finite() && p.candidates > 0)
            .collect();
        if finite.is_empty() || bins == 0 {
            return Vec::new();
        }
        let lo = finite
            .iter()
            .map(|p| p.temperature)
            .fold(f64::MAX, f64::min);
        let hi = finite
            .iter()
            .map(|p| p.temperature)
            .fold(f64::MIN, f64::max);
        let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
        let mut rows = vec![(0.0, 0usize, 0usize); bins];
        for (i, row) in rows.iter_mut().enumerate() {
            row.0 = lo + width * (i + 1) as f64;
        }
        for p in finite {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let bin = (((p.temperature - lo) / width) as usize).min(bins - 1);
            rows[bin].1 += p.promoted;
            rows[bin].2 += p.candidates;
        }
        rows.retain(|&(_, _, candidates)| candidates > 0);
        rows
    }
}

/// Derives a hypervolume reference point from every front point in an
/// event stream: the per-objective maximum, padded by 5% of the range
/// so extreme points still contribute volume. `None` when the stream
/// carries no front points.
pub fn reference_point(events: &[RunEvent]) -> Option<Vec<f64>> {
    let mut lo: Vec<f64> = Vec::new();
    let mut hi: Vec<f64> = Vec::new();
    for event in events {
        let RunEvent::GenerationEnd { front, .. } = event else {
            continue;
        };
        for point in front {
            if lo.is_empty() {
                lo = point.clone();
                hi = point.clone();
                continue;
            }
            for (i, &x) in point.iter().enumerate().take(lo.len()) {
                lo[i] = lo[i].min(x);
                hi[i] = hi[i].max(x);
            }
        }
    }
    if hi.is_empty() {
        return None;
    }
    Some(
        hi.iter()
            .zip(&lo)
            .map(|(&h, &l)| h + 0.05 * (h - l).max(1e-12))
            .collect(),
    )
}

/// Merges reference points by taking the per-objective maximum, so two
/// runs can be diffed against one shared reference.
pub fn merge_reference(a: Option<Vec<f64>>, b: Option<Vec<f64>>) -> Option<Vec<f64>> {
    match (a, b) {
        (Some(a), Some(b)) => Some(
            a.iter()
                .zip(&b)
                .map(|(&x, &y)| x.max(y))
                .collect::<Vec<f64>>(),
        ),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

/// Renders one run's row of `BENCH_runtime.json` (an object literal;
/// the binary assembles the surrounding document).
pub fn runtime_json_entry(label: &str, summary: &RunSummary, skipped_lines: usize) -> String {
    let mut stage_fields = String::new();
    for stage in Stage::ALL {
        if !stage_fields.is_empty() {
            stage_fields.push(',');
        }
        #[allow(clippy::cast_precision_loss)]
        let secs = summary.stages.get(stage) as f64 / 1e9;
        stage_fields.push_str(&format!("\"{}\":{}", stage.name(), json_f64(secs)));
    }
    let evals_per_sec = summary
        .evals_per_sec()
        .map_or_else(|| "null".to_string(), json_f64);
    let cache_hit_rate = summary
        .cache_hit_rate()
        .map_or_else(|| "null".to_string(), json_f64);
    format!(
        "{{\"label\":{label:?},\"generations\":{},\"evaluations\":{},\
         \"fault_episodes\":{},\"quarantined\":{},\"skipped_lines\":{skipped_lines},\
         \"timed_generations\":{},\"wall_s\":{},\"evals_per_sec\":{evals_per_sec},\
         \"cache_hit_rate\":{cache_hit_rate},\"stage_s\":{{{stage_fields}}}}}",
        summary.generations,
        summary.evaluations,
        summary.fault_episodes,
        summary.fault_quarantined,
        summary.timed_generations,
        json_f64(summary.wall_seconds()),
    )
}

/// Formats a finite float as a JSON number (shortest round-trip form).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// One run row parsed back out of a `BENCH_runtime.json` document — the
/// subset of [`runtime_json_entry`] fields the regression gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeRun {
    /// Run label (the source log's file stem).
    pub label: String,
    /// Generations that carried stage timings.
    pub timed_generations: u64,
    /// Total timed wall-clock in seconds.
    pub wall_s: f64,
    /// Evaluations per timed second (`null` when nothing was timed).
    pub evals_per_sec: Option<f64>,
    /// Memoization hit rate over submitted candidates.
    pub cache_hit_rate: Option<f64>,
    /// Per-stage seconds in [`Stage::ALL`] order.
    pub stage_s: Vec<(String, f64)>,
}

impl RuntimeRun {
    /// Fraction of total timed stage seconds spent in `stage`; `None`
    /// when the stage is absent or nothing was timed.
    pub fn stage_share(&self, stage: &str) -> Option<f64> {
        let total: f64 = self.stage_s.iter().map(|(_, s)| s).sum();
        if total <= 0.0 {
            return None;
        }
        self.stage_s
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, s)| s / total)
    }
}

/// Parses a `BENCH_runtime.json` document written by `trace_report
/// --json` back into its run rows. Hand-rolled for exactly the fixed
/// schema [`runtime_json_entry`] emits; anything else is an error, not
/// a guess.
pub fn parse_runtime_report(text: &str) -> Result<Vec<RuntimeRun>, String> {
    let runs_start = text
        .find("\"runs\":[")
        .ok_or_else(|| "missing \"runs\" array".to_string())?
        + "\"runs\":[".len();
    let mut runs = Vec::new();
    let mut depth = 0usize;
    let mut obj_start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in text[runs_start..].char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(runs_start + i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    let start = obj_start.take().ok_or("unbalanced braces")?;
                    runs.push(parse_runtime_run(&text[start..=runs_start + i])?);
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    Ok(runs)
}

fn parse_runtime_run(obj: &str) -> Result<RuntimeRun, String> {
    let label = json_string_field(obj, "label")?;
    let timed_generations = json_number_field(obj, "timed_generations")?
        .ok_or_else(|| format!("{label}: timed_generations is null"))?
        as u64;
    let wall_s =
        json_number_field(obj, "wall_s")?.ok_or_else(|| format!("{label}: wall_s is null"))?;
    let evals_per_sec = json_number_field(obj, "evals_per_sec")?;
    let cache_hit_rate = json_number_field(obj, "cache_hit_rate")?;
    let stages_at = obj
        .find("\"stage_s\":{")
        .ok_or_else(|| format!("{label}: missing stage_s"))?;
    let stages_obj = &obj[stages_at + "\"stage_s\":".len()..];
    let stages_end = stages_obj
        .find('}')
        .ok_or_else(|| format!("{label}: unterminated stage_s"))?;
    let mut stage_s = Vec::new();
    for stage in Stage::ALL {
        let secs = json_number_field(&stages_obj[..=stages_end], stage.name())?
            .ok_or_else(|| format!("{label}: stage {} is null", stage.name()))?;
        stage_s.push((stage.name().to_string(), secs));
    }
    Ok(RuntimeRun {
        label,
        timed_generations,
        wall_s,
        evals_per_sec,
        cache_hit_rate,
        stage_s,
    })
}

/// Extracts `"key":"value"` from a flat JSON object, undoing the two
/// escapes `{:?}` formatting produces for file-stem labels.
fn json_string_field(obj: &str, key: &str) -> Result<String, String> {
    let needle = format!("\"{key}\":\"");
    let start = obj
        .find(&needle)
        .ok_or_else(|| format!("missing string field {key:?}"))?
        + needle.len();
    let mut out = String::new();
    let mut escaped = false;
    for c in obj[start..].chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok(out);
        } else {
            out.push(c);
        }
    }
    Err(format!("unterminated string field {key:?}"))
}

/// Extracts `"key":<number|null>`; `Ok(None)` means an explicit `null`.
fn json_number_field(obj: &str, key: &str) -> Result<Option<f64>, String> {
    let needle = format!("\"{key}\":");
    let start = obj
        .find(&needle)
        .ok_or_else(|| format!("missing field {key:?}"))?
        + needle.len();
    let rest = &obj[start..];
    if rest.starts_with("null") {
        return Ok(None);
    }
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    rest[..end]
        .trim()
        .parse::<f64>()
        .map(Some)
        .map_err(|e| format!("field {key:?}: {e}"))
}

/// A fresh run may be this many times slower than the baseline before
/// the gate fails. Generous on purpose: CI machines vary widely, and
/// the gate exists to catch order-of-magnitude regressions (a dropped
/// batch kernel, an accidentally quadratic stage), not jitter.
pub const GATE_MIN_THROUGHPUT_FACTOR: f64 = 8.0;

/// Absolute slack allowed on each stage's share of timed wall-clock.
/// Evaluation dominates every committed baseline (>90%), so a support
/// stage climbing more than this many points signals a real regression
/// rather than machine noise.
pub const GATE_STAGE_SHARE_SLACK: f64 = 0.15;

/// Compares a fresh runtime report against a pinned baseline and
/// returns human-readable violations (empty = pass). Checks, per
/// baseline label: the label still exists and carries timings, evals
/// per second has not collapsed below `baseline /`
/// [`GATE_MIN_THROUGHPUT_FACTOR`], the memoization hit rate has not
/// regressed to zero, and no stage's share of wall-clock grew by more
/// than [`GATE_STAGE_SHARE_SLACK`].
pub fn gate_runtime_report(fresh: &[RuntimeRun], baseline: &[RuntimeRun]) -> Vec<String> {
    let mut violations = Vec::new();
    for base in baseline {
        let Some(run) = fresh.iter().find(|r| r.label == base.label) else {
            violations.push(format!("{}: missing from fresh report", base.label));
            continue;
        };
        if run.timed_generations == 0 {
            violations.push(format!("{}: no timed generations", run.label));
            continue;
        }
        match (run.evals_per_sec, base.evals_per_sec) {
            (Some(fresh_eps), Some(base_eps)) => {
                let floor = base_eps / GATE_MIN_THROUGHPUT_FACTOR;
                if fresh_eps < floor {
                    violations.push(format!(
                        "{}: evals/sec {fresh_eps:.1} fell below {floor:.1} \
                         (baseline {base_eps:.1} / {GATE_MIN_THROUGHPUT_FACTOR})",
                        run.label
                    ));
                }
            }
            (None, Some(_)) => {
                violations.push(format!(
                    "{}: evals/sec missing (baseline had one)",
                    run.label
                ));
            }
            _ => {}
        }
        if base.cache_hit_rate.unwrap_or(0.0) > 0.0 && run.cache_hit_rate.unwrap_or(0.0) <= 0.0 {
            violations.push(format!(
                "{}: cache hit rate dropped to zero (baseline {:.1}%)",
                run.label,
                base.cache_hit_rate.unwrap_or(0.0) * 100.0
            ));
        }
        for (stage, _) in &base.stage_s {
            let (Some(base_share), Some(fresh_share)) =
                (base.stage_share(stage), run.stage_share(stage))
            else {
                continue;
            };
            if fresh_share > base_share + GATE_STAGE_SHARE_SLACK {
                violations.push(format!(
                    "{}: stage {stage} grew to {:.1}% of wall-clock \
                     (baseline {:.1}%, slack {:.0} points)",
                    run.label,
                    fresh_share * 100.0,
                    base_share * 100.0,
                    GATE_STAGE_SHARE_SLACK * 100.0
                ));
            }
        }
    }
    violations
}

/// Oldest `BENCH_eval.json` schema the eval gate accepts: schema 2
/// introduced the `scheduling` block that carries `steady_speedup`.
pub const EVAL_SCHEMA_MIN: f64 = 2.0;

/// Newest schema this build understands (schema 3 added
/// `host_workers`). `bench_eval` and this constant move together.
pub const EVAL_SCHEMA_CURRENT: f64 = 3.0;

/// The fields the `bench_gate --eval` gate reads out of a
/// `BENCH_eval.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReading {
    /// The report's schema stamp.
    pub schema: f64,
    /// Steady-session over generational-barrier throughput on the
    /// heterogeneous-cost workload.
    pub steady_speedup: f64,
    /// Worker threads on the recording host (schema ≥ 3).
    pub host_workers: Option<f64>,
}

/// How to regenerate a missing or outdated `BENCH_eval.json`.
pub const EVAL_REGEN_HINT: &str =
    "regenerate it with `cargo run --release -p dse-bench --bin bench_eval`";

/// Parses the `schema` / `scheduling.steady_speedup` / `host_workers`
/// fields of a `BENCH_eval.json` document, rejecting stale or
/// too-new schema stamps with actionable messages instead of falling
/// over on a missing field downstream.
///
/// # Errors
///
/// Returns a human-readable message when the document has no schema
/// stamp (probably not a `BENCH_eval.json` at all), when the stamp
/// predates [`EVAL_SCHEMA_MIN`] or postdates [`EVAL_SCHEMA_CURRENT`],
/// or when a required field is missing or non-numeric.
pub fn parse_eval_report(text: &str) -> Result<EvalReading, String> {
    let schema = json_number_field(text, "schema")
        .ok()
        .flatten()
        .ok_or_else(|| format!("no \"schema\" stamp — not a BENCH_eval.json? {EVAL_REGEN_HINT}"))?;
    if schema < EVAL_SCHEMA_MIN {
        return Err(format!(
            "stale schema {schema} predates the scheduling block \
             (need >= {EVAL_SCHEMA_MIN}); {EVAL_REGEN_HINT}"
        ));
    }
    if schema > EVAL_SCHEMA_CURRENT {
        return Err(format!(
            "schema {schema} is newer than this gate understands \
             (<= {EVAL_SCHEMA_CURRENT}); rebuild bench_gate from the same tree as bench_eval"
        ));
    }
    let host_workers = if schema >= 3.0 {
        Some(
            json_number_field(text, "host_workers")
                .ok()
                .flatten()
                .ok_or_else(|| {
                    format!("schema {schema} report lacks host_workers; {EVAL_REGEN_HINT}")
                })?,
        )
    } else {
        None
    };
    let steady_speedup = json_number_field(text, "steady_speedup")
        .ok()
        .flatten()
        .ok_or_else(|| format!("no scheduling.steady_speedup field; {EVAL_REGEN_HINT}"))?;
    Ok(EvalReading {
        schema,
        steady_speedup,
        host_workers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_end(
        generation: usize,
        phase: u8,
        temperature: f64,
        evaluations: u64,
        front: Vec<Vec<f64>>,
    ) -> RunEvent {
        RunEvent::GenerationEnd {
            generation,
            phase,
            temperature,
            promoted: 0,
            feasible: front.len(),
            population: 40,
            evaluations,
            front,
        }
    }

    fn timing(generation: usize, evaluation_ns: u64, candidates: u64, hits: u64) -> RunEvent {
        RunEvent::StageTiming {
            generation,
            stages: StageNanos {
                variation: 1_000,
                evaluation: evaluation_ns,
                ranking: 500,
                promotion: 0,
                selection: 250,
            },
            candidates,
            evaluations: candidates - hits,
            cache_hits: hits,
        }
    }

    fn sample_stream() -> Vec<RunEvent> {
        vec![
            gen_end(1, 1, f64::INFINITY, 40, vec![]),
            timing(1, 1_000_000_000, 40, 0),
            RunEvent::Promotion {
                generation: 2,
                promoted: 3,
                candidates: 10,
            },
            gen_end(2, 2, 0.8, 80, vec![vec![1.0, 2.0], vec![2.0, 1.0]]),
            timing(2, 1_000_000_000, 40, 10),
            RunEvent::Promotion {
                generation: 3,
                promoted: 1,
                candidates: 10,
            },
            gen_end(3, 2, 0.2, 120, vec![vec![0.5, 2.0], vec![2.0, 0.5]]),
            timing(3, 1_000_000_000, 40, 20),
        ]
    }

    #[test]
    fn summary_counts_and_trajectory() {
        let s = RunSummary::from_events(&sample_stream(), None);
        assert_eq!(s.generations, 3);
        assert_eq!(s.phase1_generations, 1);
        assert_eq!(s.evaluations, 120);
        assert_eq!(s.timed_generations, 3);
        assert_eq!(s.candidates, 120);
        assert_eq!(s.cache_hits, 30);
        assert_eq!(s.trajectory.len(), 3);
        assert_eq!(s.trajectory[0].hypervolume, 0.0);
        assert!(s.trajectory[2].hypervolume > s.trajectory[1].hypervolume);
    }

    #[test]
    fn promotions_join_their_generations_temperature() {
        let s = RunSummary::from_events(&sample_stream(), None);
        assert_eq!(s.promotions.len(), 2);
        assert_eq!(s.promotions[0].temperature, 0.8);
        assert_eq!(s.promotions[1].temperature, 0.2);
        let rows = s.acceptance_by_temperature(2);
        assert_eq!(rows.len(), 2);
        // Cold bin holds the gen-3 promotion (1/10), hot the gen-2 (3/10).
        assert_eq!((rows[0].1, rows[0].2), (1, 10));
        assert_eq!((rows[1].1, rows[1].2), (3, 10));
    }

    #[test]
    fn runtime_rates_derive_from_stage_timings() {
        let s = RunSummary::from_events(&sample_stream(), None);
        // Three timed generations, ~1s evaluation each plus small spans.
        assert!(s.wall_seconds() > 3.0 && s.wall_seconds() < 3.1);
        let eps = s.evals_per_sec().unwrap();
        assert!(eps > 28.0 && eps < 31.0, "evals/sec {eps}");
        let hit = s.cache_hit_rate().unwrap();
        assert!((hit - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_without_timings_has_no_rates() {
        let events = vec![gen_end(1, 2, 1.0, 40, vec![vec![1.0, 1.0]])];
        let s = RunSummary::from_events(&events, None);
        assert_eq!(s.timed_generations, 0);
        assert_eq!(s.evals_per_sec(), None);
        assert_eq!(s.cache_hit_rate(), None);
    }

    #[test]
    fn reference_point_pads_the_observed_maximum() {
        let r = reference_point(&sample_stream()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r[0] > 2.0 && r[1] > 2.0);
        let merged = merge_reference(Some(vec![5.0, 1.0]), Some(r.clone())).unwrap();
        assert_eq!(merged[0], 5.0);
        assert_eq!(merged[1], r[1]);
    }

    #[test]
    fn runtime_json_entry_is_parseable_shape() {
        let s = RunSummary::from_events(&sample_stream(), None);
        let json = runtime_json_entry("demo", &s, 1);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"label\":\"demo\""));
        assert!(json.contains("\"skipped_lines\":1"));
        assert!(json.contains("\"evaluation\":"));
        assert!(!json.contains("inf"));
    }

    fn sample_report() -> String {
        let s = RunSummary::from_events(&sample_stream(), None);
        format!(
            "{{\"schema\":1,\"runs\":[{},{}]}}\n",
            runtime_json_entry("alpha", &s, 0),
            runtime_json_entry("beta", &s, 2),
        )
    }

    #[test]
    fn runtime_report_round_trips_through_the_parser() {
        let s = RunSummary::from_events(&sample_stream(), None);
        let runs = parse_runtime_report(&sample_report()).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "alpha");
        assert_eq!(runs[1].label, "beta");
        assert_eq!(runs[0].timed_generations, 3);
        assert!((runs[0].wall_s - s.wall_seconds()).abs() < 1e-12);
        assert_eq!(runs[0].evals_per_sec, s.evals_per_sec());
        assert_eq!(runs[0].cache_hit_rate, s.cache_hit_rate());
        assert_eq!(runs[0].stage_s.len(), Stage::ALL.len());
        // Evaluation dominates the synthetic stream's timings.
        assert!(runs[0].stage_share("evaluation").unwrap() > 0.99);
    }

    #[test]
    fn runtime_report_parser_rejects_garbage() {
        assert!(parse_runtime_report("not json").is_err());
        assert!(parse_runtime_report("{\"schema\":1,\"runs\":[{\"label\":\"x\"}]}").is_err());
    }

    #[test]
    fn gate_passes_a_report_against_itself() {
        let runs = parse_runtime_report(&sample_report()).unwrap();
        assert!(gate_runtime_report(&runs, &runs).is_empty());
    }

    #[test]
    fn gate_flags_throughput_collapse_and_dead_cache() {
        let baseline = parse_runtime_report(&sample_report()).unwrap();
        let mut fresh = baseline.clone();
        fresh[0].evals_per_sec = baseline[0].evals_per_sec.map(|e| e / 100.0);
        fresh[1].cache_hit_rate = Some(0.0);
        let violations = gate_runtime_report(&fresh, &baseline);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("alpha") && violations[0].contains("evals/sec"));
        assert!(violations[1].contains("beta") && violations[1].contains("cache hit rate"));
    }

    #[test]
    fn gate_flags_missing_labels_and_stage_blowups() {
        let baseline = parse_runtime_report(&sample_report()).unwrap();
        let mut fresh = vec![baseline[0].clone()];
        // Ranking balloons from ~0% to half the wall-clock.
        let total: f64 = fresh[0].stage_s.iter().map(|(_, s)| s).sum();
        for (name, secs) in &mut fresh[0].stage_s {
            if name == "ranking" {
                *secs = total;
            }
        }
        let violations = gate_runtime_report(&fresh, &baseline);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("ranking"), "{violations:?}");
        assert!(violations[1].contains("beta") && violations[1].contains("missing"));
    }

    #[test]
    fn gate_tolerates_machine_speed_jitter() {
        let baseline = parse_runtime_report(&sample_report()).unwrap();
        let mut fresh = baseline.clone();
        // Half the throughput and a mild share shuffle stay in tolerance.
        for run in &mut fresh {
            run.evals_per_sec = run.evals_per_sec.map(|e| e / 2.0);
            run.cache_hit_rate = run.cache_hit_rate.map(|h| h / 3.0);
            for (_, secs) in &mut run.stage_s {
                *secs *= 1.7;
            }
        }
        assert!(gate_runtime_report(&fresh, &baseline).is_empty());
    }

    #[test]
    fn eval_report_parses_current_and_previous_schemas() {
        let v3 = "{\"schema\":3,\"batch\":256,\"host_workers\":4,\
                  \"scheduling\":{\"steady_speedup\":1.42}}";
        let r = parse_eval_report(v3).unwrap();
        assert_eq!(r.schema, 3.0);
        assert_eq!(r.steady_speedup, 1.42);
        assert_eq!(r.host_workers, Some(4.0));
        let v2 = "{\"schema\":2,\"scheduling\":{\"steady_speedup\":1.1}}";
        let r = parse_eval_report(v2).unwrap();
        assert_eq!(r.host_workers, None);
    }

    #[test]
    fn eval_report_rejects_missing_stale_and_future_schemas() {
        let e = parse_eval_report("{\"steady_speedup\":1.0}").unwrap_err();
        assert!(e.contains("not a BENCH_eval.json"), "{e}");
        assert!(e.contains("bench_eval"), "{e}");
        let e = parse_eval_report("{\"schema\":1,\"speedup\":{}}").unwrap_err();
        assert!(e.contains("stale schema 1"), "{e}");
        assert!(e.contains("regenerate"), "{e}");
        let e = parse_eval_report("{\"schema\":9}").unwrap_err();
        assert!(e.contains("newer than this gate"), "{e}");
        // A current-schema report missing its required fields still
        // names what is missing rather than panicking downstream.
        let e = parse_eval_report("{\"schema\":3}").unwrap_err();
        assert!(e.contains("host_workers"), "{e}");
        let e = parse_eval_report("{\"schema\":3,\"host_workers\":2}").unwrap_err();
        assert!(e.contains("steady_speedup"), "{e}");
    }
}
