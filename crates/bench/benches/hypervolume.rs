//! Cost of the quality indicators: the paper's origin-anchored staircase
//! metric, the conventional 2-D hypervolume, and the recursive n-D
//! hypervolume, across front sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moea::hypervolume::{hypervolume, hypervolume_2d, staircase_area, staircase_volume};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_front_2d(n: usize, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen_range(0.0..10.0);
            [x, 10.0 - x + rng.gen_range(0.0..1.0)]
        })
        .collect()
}

fn random_front_nd(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect()
}

fn bench_indicators(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypervolume");
    for n in [10usize, 100, 1000] {
        let front = random_front_2d(n, 42);
        group.bench_with_input(BenchmarkId::new("staircase_2d", n), &front, |b, f| {
            b.iter(|| staircase_area(f));
        });
        group.bench_with_input(BenchmarkId::new("conventional_2d", n), &front, |b, f| {
            b.iter(|| hypervolume_2d(f, [11.0, 12.0]));
        });
    }
    for n in [10usize, 50, 100] {
        let front3 = random_front_nd(n, 3, 7);
        group.bench_with_input(BenchmarkId::new("staircase_3d", n), &front3, |b, f| {
            b.iter(|| staircase_volume(f));
        });
        group.bench_with_input(BenchmarkId::new("conventional_3d", n), &front3, |b, f| {
            b.iter(|| hypervolume(f, &[1.1, 1.1, 1.1]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indicators);
criterion_main!(benches);
