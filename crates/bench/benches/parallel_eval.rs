//! Execution-engine throughput on the integrator sizing problem: one
//! generation-sized batch evaluated serially, with the thread-pooled
//! evaluator, and through a warm memoization cache.

use analog_circuits::{DrivableLoadProblem, Spec};
use criterion::{criterion_group, criterion_main, Criterion};
use engine::{EngineConfig, Evaluator, ExecutionEngine, ParallelEvaluator, SerialEvaluator};
use moea::{Evaluation, Problem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const BATCH: usize = 100;

fn gene_batch() -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..BATCH)
        .map(|_| (0..15).map(|_| rng.gen_range(0.05..0.95)).collect())
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let problem = DrivableLoadProblem::new(Spec::featured());
    let eval = |genes: &[f64]| problem.evaluate(genes);
    let batch = gene_batch();

    c.bench_function("engine_batch100_serial", |b| {
        b.iter(|| SerialEvaluator.eval_batch(&eval, black_box(&batch)));
    });

    c.bench_function("engine_batch100_parallel", |b| {
        let par = ParallelEvaluator::default();
        b.iter(|| par.eval_batch(&eval, black_box(&batch)));
    });

    c.bench_function("engine_batch100_cached_warm", |b| {
        let mut exec: ExecutionEngine<Evaluation> =
            ExecutionEngine::new(EngineConfig::default().cache_capacity(4 * BATCH));
        let _ = exec.evaluate_batch(&batch, &eval);
        b.iter(|| exec.evaluate_batch(black_box(&batch), &eval));
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
