//! Cost of the circuit-analysis stack, bottom-up: device operating point,
//! op-amp DC + small-signal analysis, integrator performance equations,
//! corner/mismatch robustness, and the two full problem evaluations
//! (fixed-load and drivable-load with bisection).

use analog_circuits::integrator::{self, ClockContext};
use analog_circuits::mosfet::Mosfet;
use analog_circuits::process::{DeviceType, Process};
use analog_circuits::sizing::DesignVector;
use analog_circuits::yield_est;
use analog_circuits::{DrivableLoadProblem, IntegratorProblem, Spec};
use criterion::{criterion_group, criterion_main, Criterion};
use moea::Problem;
use std::hint::black_box;

fn bench_stack(c: &mut Criterion) {
    let process = Process::nominal();
    let clock = ClockContext::standard();
    let dv = DesignVector::reference();
    let genes = vec![0.5f64; 15];

    c.bench_function("mosfet_operating_point", |b| {
        let m = Mosfet::new(DeviceType::Nmos, 60e-6, 0.4e-6);
        b.iter(|| m.operating_point(&process, black_box(0.8), black_box(0.9)));
    });

    c.bench_function("mosfet_vgs_for_current", |b| {
        let m = Mosfet::new(DeviceType::Nmos, 60e-6, 0.4e-6);
        b.iter(|| m.vgs_for_current(&process, black_box(30e-6), 0.9, 1.8));
    });

    c.bench_function("opamp_analyze", |b| {
        b.iter(|| analog_circuits::opamp::analyze(black_box(&dv), &process));
    });

    c.bench_function("integrator_analyze", |b| {
        b.iter(|| integrator::analyze(black_box(&dv), &process, &clock));
    });

    c.bench_function("robustness_9_samples", |b| {
        let spec = Spec::featured();
        b.iter(|| yield_est::robustness(black_box(&dv), &process, &clock, &spec));
    });

    c.bench_function("evaluate_fixed_load", |b| {
        let p = IntegratorProblem::new(Spec::featured());
        b.iter(|| p.evaluate(black_box(&genes)));
    });

    c.bench_function("evaluate_drivable_load", |b| {
        let p = DrivableLoadProblem::new(Spec::featured());
        b.iter(|| p.evaluate(black_box(&genes)));
    });
}

/// Deterministic unit-cube batch matching the `batch_equivalence` and
/// `bench_eval` fixtures, so all three measure the same designs.
fn pseudo_batch(n: usize, salt: u64) -> Vec<Vec<f64>> {
    #[allow(clippy::cast_precision_loss)]
    (0..n)
        .map(|i| {
            (0..15)
                .map(|j| {
                    let x = (i as f64 + 1.0) * 12.9898 + j as f64 * 78.233 + salt as f64 * 0.517;
                    (x.sin() * 43758.5453).fract().abs()
                })
                .collect()
        })
        .collect()
}

/// Scalar loop vs struct-of-arrays `evaluate_all` over a generation-
/// sized batch; the equivalence suite pins the two bit-identical, so
/// any gap here is pure kernel overhead or win.
fn bench_batch_kernels(c: &mut Criterion) {
    let batch = pseudo_batch(64, 42);
    let drivable = DrivableLoadProblem::new(Spec::featured());
    let integrator = IntegratorProblem::new(Spec::featured());

    let mut group = c.benchmark_group("batch64");
    group.bench_function("drivable_scalar", |b| {
        b.iter(|| {
            for genes in &batch {
                black_box(drivable.evaluate(black_box(genes)));
            }
        });
    });
    group.bench_function("drivable_evaluate_all", |b| {
        b.iter(|| black_box(drivable.evaluate_all(black_box(&batch))));
    });
    group.bench_function("integrator_scalar", |b| {
        b.iter(|| {
            for genes in &batch {
                black_box(integrator.evaluate(black_box(genes)));
            }
        });
    });
    group.bench_function("integrator_evaluate_all", |b| {
        b.iter(|| black_box(integrator.evaluate_all(black_box(&batch))));
    });
    group.finish();
}

criterion_group!(benches, bench_stack, bench_batch_kernels);
criterion_main!(benches);
