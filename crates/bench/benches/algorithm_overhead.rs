//! The Sec. 5 runtime claim: SACGA and MESACGA take ~18 % more
//! computational time than NSGA-II for the same iteration budget, due to
//! the partition bookkeeping, promotion draws and per-partition sorting.
//!
//! Measured here as full (small-budget) runs on the integrator problem at
//! identical population sizes and generation counts, plus a
//! circuit-free measurement on ZDT1 where the algorithmic overhead is not
//! diluted by evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dse_bench::{paper_problem, PHASE1_MAX};
use moea::nsga2::{Nsga2, Nsga2Config};
use moea::problems::Zdt1;
use sacga::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
use sacga::sacga::{Sacga, SacgaConfig};

const POP: usize = 40;
const GENS: usize = 30;

fn bench_integrator(c: &mut Criterion) {
    let problem = paper_problem();
    let (lo, hi) = analog_circuits::DrivableLoadProblem::slice_range();
    let mut group = c.benchmark_group("integrator_runs");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("tpg", format!("{POP}x{GENS}")), |b| {
        let cfg = Nsga2Config::builder()
            .population_size(POP)
            .generations(GENS)
            .build()
            .unwrap();
        b.iter(|| Nsga2::new(&problem, cfg.clone()).run_seeded(1).unwrap());
    });
    group.bench_function(BenchmarkId::new("sacga8", format!("{POP}x{GENS}")), |b| {
        let cfg = SacgaConfig::builder()
            .population_size(POP)
            .generations(GENS)
            .partitions(8)
            .phase1_max(PHASE1_MAX.min(GENS / 2))
            .slice_range(lo, hi)
            .build()
            .unwrap();
        b.iter(|| Sacga::new(&problem, cfg.clone()).run_seeded(1).unwrap());
    });
    group.bench_function(BenchmarkId::new("mesacga", format!("{POP}x{GENS}")), |b| {
        let cfg = MesacgaConfig::builder()
            .population_size(POP)
            .phase1_max(GENS / 10)
            .phases(vec![
                PhaseSpec::new(8, GENS / 3),
                PhaseSpec::new(3, GENS / 3),
                PhaseSpec::new(1, GENS / 3),
            ])
            .slice_range(lo, hi)
            .build()
            .unwrap();
        b.iter(|| Mesacga::new(&problem, cfg.clone()).run_seeded(1).unwrap());
    });
    group.finish();
}

fn bench_pure_overhead(c: &mut Criterion) {
    // ZDT1 evaluations are nearly free, so this isolates the algorithmic
    // overhead of partitioned ranking + promotion.
    let problem = Zdt1::new(15);
    let mut group = c.benchmark_group("zdt1_runs");
    group.sample_size(20);
    let (pop, gens) = (100usize, 100usize);

    group.bench_function("tpg", |b| {
        let cfg = Nsga2Config::builder()
            .population_size(pop)
            .generations(gens)
            .build()
            .unwrap();
        b.iter(|| Nsga2::new(&problem, cfg.clone()).run_seeded(1).unwrap());
    });
    group.bench_function("sacga8", |b| {
        let cfg = SacgaConfig::builder()
            .population_size(pop)
            .generations(gens)
            .partitions(8)
            .build()
            .unwrap();
        b.iter(|| Sacga::new(&problem, cfg.clone()).run_seeded(1).unwrap());
    });
    group.bench_function("mesacga", |b| {
        let cfg = MesacgaConfig::builder()
            .population_size(pop)
            .phase1_max(10)
            .phases(vec![
                PhaseSpec::new(20, 30),
                PhaseSpec::new(8, 30),
                PhaseSpec::new(1, 30),
            ])
            .build()
            .unwrap();
        b.iter(|| Mesacga::new(&problem, cfg.clone()).run_seeded(1).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_integrator, bench_pure_overhead);
criterion_main!(benches);
