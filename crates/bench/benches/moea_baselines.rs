//! Substrate benchmarks: non-dominated sorting cost vs population size,
//! variation-operator throughput, and NSGA-II generations on the ZDT
//! suite — validating the GA machinery's performance independently of the
//! circuit models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moea::evaluation::Evaluation;
use moea::individual::Individual;
use moea::nsga2::{Nsga2, Nsga2Config};
use moea::operators::{random_vector, Variation};
use moea::problem::{Bounds, Problem};
use moea::problems::{Schaffer, Zdt1, Zdt3};
use moea::sorting::rank_and_crowd;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_population(n: usize, objectives: usize, seed: u64) -> Vec<Individual> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let objs: Vec<f64> = (0..objectives).map(|_| rng.gen_range(0.0..1.0)).collect();
            Individual::new(vec![0.0], Evaluation::unconstrained(objs))
        })
        .collect()
}

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("non_dominated_sort");
    for n in [50usize, 100, 200, 400] {
        let pop = random_population(n, 2, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pop, |b, p| {
            b.iter_batched(
                || p.clone(),
                |mut pop| rank_and_crowd(&mut pop),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let bounds = Bounds::uniform(15, 0.0, 1.0).unwrap();
    let variation = Variation::standard(15);
    c.bench_function("sbx_plus_mutation_15d", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let p1 = random_vector(&mut rng, &bounds);
        let p2 = random_vector(&mut rng, &bounds);
        b.iter(|| variation.offspring(&mut rng, &p1, &p2, &bounds));
    });
}

fn bench_nsga2_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2_full_runs");
    group.sample_size(10);
    let cfg = Nsga2Config::builder()
        .population_size(60)
        .generations(50)
        .build()
        .unwrap();
    let problems: Vec<(&str, Box<dyn Problem + Sync>)> = vec![
        ("SCH", Box::new(Schaffer::new())),
        ("ZDT1", Box::new(Zdt1::new(15))),
        ("ZDT3", Box::new(Zdt3::new(15))),
    ];
    for (name, problem) in &problems {
        group.bench_function(*name, |b| {
            b.iter(|| {
                Nsga2::new(problem.as_ref(), cfg.clone())
                    .run_seeded(1)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorting, bench_operators, bench_nsga2_suite);
criterion_main!(benches);
