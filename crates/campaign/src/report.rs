//! Per-cell front metrics and the aggregate campaign report.
//!
//! The report is a **pure function** of the cell results (in canonical
//! arm-major order), the metric specification, and the statistics
//! parameters — never of thread scheduling, wall-clock time, or cache
//! sharing. Its JSON rendering is hand-rolled with shortest-roundtrip
//! float formatting, so byte-for-byte identity across repeated runs is
//! an invariant the test suite pins.

use crate::cell::CellResult;
use crate::stats::{bootstrap_mean_diff, rank_sum};
use moea::hypervolume::hypervolume_2d;
use moea::metrics::{bin_occupancy, spread};

/// How per-cell front metrics are computed.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSpec {
    /// Reference point for the 2-D hypervolume (objectives are
    /// minimized; fronts are clipped to the dominated box).
    pub reference: [f64; 2],
    /// Objective whose range is binned for the occupancy metric.
    pub occupancy_objective: usize,
    /// The `[lo, hi]` range binned for occupancy.
    pub occupancy_range: (f64, f64),
    /// Number of occupancy bins.
    pub occupancy_bins: usize,
    /// Resamples for each bootstrap confidence interval.
    pub bootstrap_resamples: usize,
    /// Seed of the bootstrap RNG.
    pub bootstrap_seed: u64,
}

impl MetricSpec {
    /// A spec with the given hypervolume reference and occupancy
    /// binning, defaulting to 1000 bootstrap resamples at seed 0.
    pub fn new(reference: [f64; 2], occupancy_range: (f64, f64), occupancy_bins: usize) -> Self {
        MetricSpec {
            reference,
            occupancy_objective: 0,
            occupancy_range,
            occupancy_bins,
            bootstrap_resamples: 1000,
            bootstrap_seed: 0,
        }
    }
}

/// The three front metrics of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontMetrics {
    /// 2-D hypervolume against [`MetricSpec::reference`] (first two
    /// objectives).
    pub hypervolume: f64,
    /// Deb's Δ spread (lower = more uniform; 0 for fronts under 3
    /// points).
    pub spread: f64,
    /// Fraction of occupancy bins holding at least one front point —
    /// the paper's "well distributed over the entire range" notion.
    pub occupancy: f64,
}

/// Computes the three metrics of one front.
pub fn front_metrics(front: &[Vec<f64>], spec: &MetricSpec) -> FrontMetrics {
    let pts: Vec<[f64; 2]> = front
        .iter()
        .filter(|p| p.len() >= 2)
        .map(|p| [p[0], p[1]])
        .collect();
    FrontMetrics {
        hypervolume: hypervolume_2d(&pts, spec.reference),
        spread: spread(front),
        occupancy: bin_occupancy(
            front,
            spec.occupancy_objective,
            spec.occupancy_range.0,
            spec.occupancy_range.1,
            spec.occupancy_bins,
        ),
    }
}

/// One cell's row in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Seed of the run.
    pub seed: u64,
    /// Front size.
    pub front_size: usize,
    /// Generations executed.
    pub generations: usize,
    /// Phase-I length.
    pub gen_t: usize,
    /// Candidates submitted to the engine (scheduling-independent).
    pub candidates: u64,
    /// The cell's front metrics.
    pub metrics: FrontMetrics,
}

/// All cells of one arm, in seed order.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmReport {
    /// The arm's label.
    pub label: String,
    /// One row per seed, in the campaign's seed order.
    pub cells: Vec<CellReport>,
}

impl ArmReport {
    /// The named metric across this arm's cells, in seed order.
    pub fn metric_values(&self, metric: Metric) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| match metric {
                Metric::Hypervolume => c.metrics.hypervolume,
                Metric::Spread => c.metrics.spread,
                Metric::Occupancy => c.metrics.occupancy,
            })
            .collect()
    }
}

/// The metrics compared across arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// 2-D hypervolume (higher = better converged).
    Hypervolume,
    /// Deb's Δ spread (lower = more uniform).
    Spread,
    /// Occupancy fraction (higher = more diverse).
    Occupancy,
}

impl Metric {
    /// All compared metrics, in report order.
    pub const ALL: [Metric; 3] = [Metric::Hypervolume, Metric::Spread, Metric::Occupancy];

    /// Stable lower-case name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Hypervolume => "hypervolume",
            Metric::Spread => "spread",
            Metric::Occupancy => "occupancy",
        }
    }
}

/// An exact rank-sum test plus bootstrap CI between two arms on one
/// metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The compared metric's stable name.
    pub metric: String,
    /// Label of arm "a".
    pub arm_a: String,
    /// Label of arm "b".
    pub arm_b: String,
    /// Mann-Whitney U of arm "a".
    pub u_a: f64,
    /// One-sided p-value that "a" tends larger.
    pub p_a_greater: f64,
    /// One-sided p-value that "b" tends larger.
    pub p_b_greater: f64,
    /// Observed `mean(a) − mean(b)`.
    pub mean_diff: f64,
    /// Bootstrap CI lower edge for the mean difference.
    pub ci_lo: f64,
    /// Bootstrap CI upper edge for the mean difference.
    pub ci_hi: f64,
}

/// The aggregate campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Campaign name.
    pub name: String,
    /// Per-arm per-cell rows, in arm declaration order.
    pub arms: Vec<ArmReport>,
    /// Pairwise arm comparisons over every [`Metric`], ordered by arm
    /// pair then metric.
    pub comparisons: Vec<Comparison>,
}

impl CampaignReport {
    /// Builds the report from cell results in canonical arm-major
    /// order. `arm_labels` names the arms in declaration order; each
    /// result's `arm` field must match the label of the block it sits
    /// in.
    ///
    /// # Panics
    ///
    /// Panics when `results.len()` is not a multiple of
    /// `arm_labels.len()` or a result sits in the wrong arm block —
    /// both are orchestration bugs, not recoverable conditions.
    pub fn build(
        name: impl Into<String>,
        arm_labels: &[String],
        results: &[CellResult],
        spec: &MetricSpec,
    ) -> Self {
        assert!(
            !arm_labels.is_empty() && results.len().is_multiple_of(arm_labels.len()),
            "results must form an arms × seeds matrix"
        );
        let per_arm = results.len() / arm_labels.len();
        let arms: Vec<ArmReport> = arm_labels
            .iter()
            .enumerate()
            .map(|(i, label)| {
                let cells = results[i * per_arm..(i + 1) * per_arm]
                    .iter()
                    .map(|cell| {
                        assert_eq!(&cell.arm, label, "cell result in the wrong arm block");
                        CellReport {
                            seed: cell.seed,
                            front_size: cell.front.len(),
                            generations: cell.generations,
                            gen_t: cell.gen_t,
                            candidates: cell.candidates,
                            metrics: front_metrics(&cell.front_objectives(), spec),
                        }
                    })
                    .collect();
                ArmReport {
                    label: label.clone(),
                    cells,
                }
            })
            .collect();

        let mut comparisons = Vec::new();
        for i in 0..arms.len() {
            for j in (i + 1)..arms.len() {
                for metric in Metric::ALL {
                    let a = arms[i].metric_values(metric);
                    let b = arms[j].metric_values(metric);
                    let rs = rank_sum(&a, &b);
                    let ci = bootstrap_mean_diff(
                        &a,
                        &b,
                        spec.bootstrap_resamples,
                        0.95,
                        spec.bootstrap_seed,
                    );
                    comparisons.push(Comparison {
                        metric: metric.name().to_string(),
                        arm_a: arms[i].label.clone(),
                        arm_b: arms[j].label.clone(),
                        u_a: rs.u_a,
                        p_a_greater: rs.p_a_greater,
                        p_b_greater: rs.p_b_greater,
                        mean_diff: ci.point,
                        ci_lo: ci.lo,
                        ci_hi: ci.hi,
                    });
                }
            }
        }
        CampaignReport {
            name: name.into(),
            arms,
            comparisons,
        }
    }

    /// The comparison row for `(arm_a, arm_b, metric)`, in either arm
    /// order (swapping the roles of the one-sided p-values as needed).
    pub fn comparison(&self, arm_a: &str, arm_b: &str, metric: Metric) -> Option<Comparison> {
        for c in &self.comparisons {
            if c.metric != metric.name() {
                continue;
            }
            if c.arm_a == arm_a && c.arm_b == arm_b {
                return Some(c.clone());
            }
            if c.arm_a == arm_b && c.arm_b == arm_a {
                let mut sw = c.clone();
                std::mem::swap(&mut sw.arm_a, &mut sw.arm_b);
                std::mem::swap(&mut sw.p_a_greater, &mut sw.p_b_greater);
                sw.u_a =
                    (self.arm(arm_a)?.cells.len() * self.arm(arm_b)?.cells.len()) as f64 - c.u_a;
                sw.mean_diff = -c.mean_diff;
                sw.ci_lo = -c.ci_hi;
                sw.ci_hi = -c.ci_lo;
                return Some(sw);
            }
        }
        None
    }

    /// The report block of the named arm.
    pub fn arm(&self, label: &str) -> Option<&ArmReport> {
        self.arms.iter().find(|a| a.label == label)
    }

    /// Renders the report as deterministic, human-readable JSON.
    ///
    /// Floats use Rust's shortest-roundtrip formatting (a pure-Rust
    /// algorithm, identical on every platform); non-finite values
    /// become `null`. Key order and whitespace are fixed, so two
    /// reports built from identical cell results are byte-identical.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"campaign\": {},\n", json_str(&self.name)));
        out.push_str("  \"arms\": [\n");
        for (ai, arm) in self.arms.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": {},\n", json_str(&arm.label)));
            out.push_str("      \"cells\": [\n");
            for (ci, cell) in arm.cells.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"seed\": {}, \"front_size\": {}, \"generations\": {}, \
                     \"gen_t\": {}, \"candidates\": {}, \"hypervolume\": {}, \
                     \"spread\": {}, \"occupancy\": {}}}{}\n",
                    cell.seed,
                    cell.front_size,
                    cell.generations,
                    cell.gen_t,
                    cell.candidates,
                    json_num(cell.metrics.hypervolume),
                    json_num(cell.metrics.spread),
                    json_num(cell.metrics.occupancy),
                    comma(ci, arm.cells.len()),
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!("    }}{}\n", comma(ai, self.arms.len())));
        }
        out.push_str("  ],\n");
        out.push_str("  \"comparisons\": [\n");
        for (ci, c) in self.comparisons.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"metric\": {}, \"arm_a\": {}, \"arm_b\": {}, \"u_a\": {}, \
                 \"p_a_greater\": {}, \"p_b_greater\": {}, \"mean_diff\": {}, \
                 \"ci_lo\": {}, \"ci_hi\": {}}}{}\n",
                json_str(&c.metric),
                json_str(&c.arm_a),
                json_str(&c.arm_b),
                json_num(c.u_a),
                json_num(c.p_a_greater),
                json_num(c.p_b_greater),
                json_num(c.mean_diff),
                json_num(c.ci_lo),
                json_num(c.ci_hi),
                comma(ci, self.comparisons.len()),
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

fn comma(index: usize, len: usize) -> &'static str {
    if index + 1 < len {
        ","
    } else {
        ""
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(arm: &str, seed: u64, shift: f64) -> CellResult {
        // A 4-point front along objective 0 in [0, 1], shifted.
        let front = (0..4)
            .map(|i| {
                let x = (i as f64 + shift) / 4.0;
                (vec![x], vec![x, 1.0 - x])
            })
            .collect();
        CellResult {
            arm: arm.into(),
            seed,
            front,
            generations: 10,
            gen_t: 2,
            candidates: 100 + seed,
        }
    }

    fn sample_results() -> (Vec<String>, Vec<CellResult>) {
        let labels = vec!["alpha".to_string(), "beta".to_string()];
        let results = vec![
            cell("alpha", 1, 0.0),
            cell("alpha", 2, 0.1),
            cell("beta", 1, 0.5),
            cell("beta", 2, 0.6),
        ];
        (labels, results)
    }

    fn spec() -> MetricSpec {
        MetricSpec::new([2.0, 2.0], (0.0, 1.0), 8)
    }

    #[test]
    fn report_is_deterministic_json() {
        let (labels, results) = sample_results();
        let r1 = CampaignReport::build("unit", &labels, &results, &spec());
        let r2 = CampaignReport::build("unit", &labels, &results, &spec());
        assert_eq!(r1.to_json(), r2.to_json());
        assert!(r1.to_json().contains("\"campaign\": \"unit\""));
        // 1 arm pair × 3 metrics.
        assert_eq!(r1.comparisons.len(), 3);
    }

    #[test]
    fn comparison_lookup_swaps_sides() {
        let (labels, results) = sample_results();
        let report = CampaignReport::build("unit", &labels, &results, &spec());
        let fwd = report
            .comparison("alpha", "beta", Metric::Hypervolume)
            .unwrap();
        let rev = report
            .comparison("beta", "alpha", Metric::Hypervolume)
            .unwrap();
        assert_eq!(fwd.p_a_greater, rev.p_b_greater);
        assert_eq!(fwd.mean_diff, -rev.mean_diff);
        assert_eq!(fwd.ci_lo, -rev.ci_hi);
    }

    #[test]
    fn json_escapes_and_non_finite() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(0.25), "0.25");
    }

    #[test]
    #[should_panic(expected = "wrong arm block")]
    fn mismatched_arm_label_is_detected() {
        let (labels, mut results) = sample_results();
        results.swap(0, 2);
        CampaignReport::build("unit", &labels, &results, &spec());
    }
}
