#![warn(missing_docs)]
//! Campaign orchestration: many runs as the unit of work.
//!
//! The paper's headline claim — SACGA/MESACGA fronts are *more diverse
//! and no worse converged* than the purely-global baseline — is
//! distributional: it is a statement about seed ensembles, not about
//! any single run. This crate treats the seed × algorithm matrix as the
//! first-class object:
//!
//! * [`Campaign`] — the specification: algorithm arms (each an
//!   object-safe [`DynOptimizer`](sacga::telemetry::DynOptimizer)
//!   factory) × a pinned seed list;
//! * [`CampaignRunner`] — a work-stealing multi-threaded executor.
//!   Cells run via the unified `Optimizer` API, optionally pooling
//!   evaluations through a campaign-wide
//!   [`SharedCache`](engine::SharedCache), fanning per-run telemetry
//!   out as JSONL, and persisting each finished cell so a killed
//!   campaign resumes exactly where it stopped;
//! * [`CellResult`] — the scheduling-independent facts of one run
//!   (front, counters), with an exact plain-text serialization;
//! * [`stats`] — exact Mann-Whitney rank-sum and bootstrap confidence
//!   intervals, implemented with integer / sorted-`f64` arithmetic only
//!   so every number is bit-stable across platforms and repetitions;
//! * [`CampaignReport`] — per-cell metrics (hypervolume, spread,
//!   occupancy via `moea::metrics`) plus pairwise arm comparisons,
//!   rendered as deterministic JSON.
//!
//! # Determinism contract
//!
//! A cell's result depends only on `(arm, seed)`. Thread count, cell
//! interleaving, shared-cache hits, kills and resumes change *how much
//! work* the campaign does, never *what it computes*: the acceptance
//! tests pin that a 4-thread shared-cache campaign is bit-identical,
//! cell for cell, to each run executed serially in isolation, and that
//! the aggregate report of a killed-and-resumed campaign is
//! byte-identical to an uninterrupted one.
//!
//! # Example
//!
//! ```
//! use campaign::{Campaign, CampaignRunner, RunnerConfig};
//! use campaign::{CampaignReport, Metric, MetricSpec};
//! use moea::problems::Schaffer;
//! use sacga::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two arms: 4-partition SACGA vs the 1-partition degenerate (the
//! // paper's TPG baseline), 4 seeds each.
//! let sacga = |partitions: usize| {
//!     move |shared: Option<&engine::SharedCache<moea::Evaluation>>| {
//!         let mut b = SacgaConfig::builder()
//!             .population_size(16)
//!             .generations(10)
//!             .partitions(partitions);
//!         if let Some(cache) = shared {
//!             b = b.shared_cache(cache.clone());
//!         }
//!         let config = b.build().expect("static config");
//!         Box::new(Sacga::new(Schaffer::new(), config)) as Box<dyn DynOptimizer>
//!     }
//! };
//! let campaign = Campaign::new("schaffer-demo")
//!     .arm("sacga4", sacga(4))
//!     .arm("tpg", sacga(1))
//!     .seeds(vec![1, 2, 3, 4]);
//!
//! let runner = CampaignRunner::new(
//!     RunnerConfig::default()
//!         .threads(2)
//!         .shared_cache(engine::CacheConfig::with_capacity(4096)),
//! );
//! let results = runner.run(&campaign)?;
//! assert_eq!(results.len(), 8);
//!
//! let labels: Vec<String> = campaign.arms().iter().map(|a| a.label().to_string()).collect();
//! let spec = MetricSpec::new([4.5, 4.5], (0.0, 4.0), 8);
//! let report = CampaignReport::build(campaign.name(), &labels, &results, &spec);
//! assert!(report.comparison("sacga4", "tpg", Metric::Occupancy).is_some());
//! # Ok(())
//! # }
//! ```

mod cell;
mod error;
mod report;
mod runner;
mod spec;
pub mod stats;

pub use cell::CellResult;
pub use error::CampaignError;
pub use report::{
    front_metrics, ArmReport, CampaignReport, CellReport, Comparison, FrontMetrics, Metric,
    MetricSpec,
};
pub use runner::{CampaignRunner, RunnerConfig};
pub use spec::{Arm, ArmFactory, Campaign, CellId};
