//! The durable result of one campaign cell, with a crash-safe
//! plain-text serialization.
//!
//! A cell file records only **scheduling-independent** data: the final
//! feasible front (genes and objectives, as exact `f64` bit patterns),
//! generation counters and the candidate count. Evaluation and
//! cache-hit counters are deliberately excluded — under a shared cache
//! they depend on which runs happened to populate the store first, and
//! a resumed campaign must aggregate to bytes identical to an
//! uninterrupted one.

use crate::error::CampaignError;
use moea::RunOutcome;

const CELL_HEADER: &str = "campaign-cell v1";

/// The outcome of one (arm, seed) cell, reduced to the
/// deterministic facts a campaign report is built from.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Label of the arm that produced this cell.
    pub arm: String,
    /// The RNG seed of the run.
    pub seed: u64,
    /// The run's feasible non-dominated front: `(genes, objectives)`
    /// per member, in the optimizer's output order.
    pub front: Vec<(Vec<f64>, Vec<f64>)>,
    /// Generations executed.
    pub generations: usize,
    /// Length of the pure-local phase I (0 for algorithms without one).
    pub gen_t: usize,
    /// Candidates submitted to the evaluation engine. Unlike the
    /// evaluation count this is a pure function of the seed: it ignores
    /// how many candidates the (possibly shared) cache absorbed.
    pub candidates: u64,
}

impl CellResult {
    /// Captures the deterministic facts of a finished run.
    pub fn from_outcome(arm: impl Into<String>, seed: u64, outcome: &RunOutcome) -> Self {
        CellResult {
            arm: arm.into(),
            seed,
            front: outcome
                .front
                .iter()
                .map(|m| (m.genes.clone(), m.objectives().to_vec()))
                .collect(),
            generations: outcome.generations,
            gen_t: outcome.gen_t,
            candidates: outcome.stats.candidates,
        }
    }

    /// Objective vectors of the stored front.
    pub fn front_objectives(&self) -> Vec<Vec<f64>> {
        self.front.iter().map(|(_, obj)| obj.clone()).collect()
    }

    /// Serializes to the line-oriented cell format. `f64` values are
    /// written as 16-hex-digit bit patterns so every value round-trips
    /// exactly; a trailing `end` record catches truncated files.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CELL_HEADER);
        out.push('\n');
        out.push_str(&format!("arm {}\n", self.arm));
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("generations {}\n", self.generations));
        out.push_str(&format!("gen_t {}\n", self.gen_t));
        out.push_str(&format!("candidates {}\n", self.candidates));
        out.push_str(&format!("front {}\n", self.front.len()));
        for (genes, objectives) in &self.front {
            out.push_str("member");
            for g in genes {
                out.push_str(&format!(" {:016x}", g.to_bits()));
            }
            out.push_str(" |");
            for o in objectives {
                out.push_str(&format!(" {:016x}", o.to_bits()));
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the cell format written by [`to_text`](CellResult::to_text).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::CorruptCell`] on any malformed, truncated
    /// or version-mismatched input — including a file torn by a crash
    /// mid-write, which a resuming runner treats as "cell not done".
    pub fn from_text(text: &str) -> Result<Self, CampaignError> {
        let corrupt = |detail: &str| CampaignError::corrupt_cell(detail);
        let mut lines = text.lines();
        if lines.next() != Some(CELL_HEADER) {
            return Err(corrupt("missing or unsupported header"));
        }
        let arm = field(lines.next(), "arm")?.to_string();
        let seed: u64 = parse_int(field(lines.next(), "seed")?)?;
        let generations: usize = parse_int(field(lines.next(), "generations")?)?;
        let gen_t: usize = parse_int(field(lines.next(), "gen_t")?)?;
        let candidates: u64 = parse_int(field(lines.next(), "candidates")?)?;
        let count: usize = parse_int(field(lines.next(), "front")?)?;
        let mut front = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or_else(|| corrupt("truncated front"))?;
            let rest = line
                .strip_prefix("member")
                .ok_or_else(|| corrupt("expected member record"))?;
            let (genes_part, obj_part) = rest
                .split_once(" |")
                .ok_or_else(|| corrupt("member record missing separator"))?;
            front.push((parse_hex_vec(genes_part)?, parse_hex_vec(obj_part)?));
        }
        if lines.next() != Some("end") {
            return Err(corrupt("missing end marker"));
        }
        Ok(CellResult {
            arm,
            seed,
            front,
            generations,
            gen_t,
            candidates,
        })
    }
}

fn field<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str, CampaignError> {
    let line = line.ok_or_else(|| CampaignError::corrupt_cell(format!("missing `{key}` line")))?;
    line.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix(' '))
        .ok_or_else(|| CampaignError::corrupt_cell(format!("expected `{key}` line, got `{line}`")))
}

fn parse_int<T: std::str::FromStr>(tok: &str) -> Result<T, CampaignError> {
    tok.parse()
        .map_err(|_| CampaignError::corrupt_cell(format!("bad integer `{tok}`")))
}

fn parse_hex_vec(part: &str) -> Result<Vec<f64>, CampaignError> {
    part.split_whitespace()
        .map(|tok| {
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|_| CampaignError::corrupt_cell(format!("bad f64 bit pattern `{tok}`")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellResult {
        CellResult {
            arm: "sacga8".into(),
            seed: 42,
            front: vec![
                (vec![0.25, -0.0], vec![f64::INFINITY, 1.0 / 3.0]),
                (vec![1.5e-300], vec![-2.0, 0.0]),
            ],
            generations: 30,
            gen_t: 7,
            candidates: 930,
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let cell = sample();
        let back = CellResult::from_text(&cell.to_text()).unwrap();
        assert_eq!(back, cell);
        // Bit-exactness of the tricky values.
        assert_eq!(back.front[0].0[1].to_bits(), (-0.0f64).to_bits());
        assert!(back.front[0].1[0].is_infinite());
    }

    #[test]
    fn truncated_text_is_rejected() {
        let text = sample().to_text();
        for cut in [10, text.len() / 2, text.len() - 2] {
            assert!(
                CellResult::from_text(&text[..cut]).is_err(),
                "cut at {cut} should not parse"
            );
        }
    }

    #[test]
    fn wrong_header_is_rejected() {
        let text = sample().to_text().replace("v1", "v9");
        assert!(CellResult::from_text(&text).is_err());
    }

    #[test]
    fn empty_front_round_trips() {
        let mut cell = sample();
        cell.front.clear();
        assert_eq!(CellResult::from_text(&cell.to_text()).unwrap(), cell);
    }
}
