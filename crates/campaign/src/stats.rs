//! Bit-stable statistics for cross-algorithm comparisons.
//!
//! Stochastic-optimizer claims are distributional, so the campaign
//! layer compares arms with an **exact Mann-Whitney rank-sum test** and
//! **bootstrap confidence intervals**. Both are implemented so repeated
//! runs — on any platform — produce bit-identical numbers:
//!
//! * the Mann-Whitney null distribution is counted exactly with an
//!   integer dynamic program (`u128` arrangement counts); the only
//!   floating-point operation is one final division;
//! * pairwise comparisons and percentiles use `f64::total_cmp`, and
//!   sums run in fixed order, so no result depends on iteration order
//!   or a platform `libm` (`exp`/`ln` are never called);
//! * the bootstrap draws its resamples from the workspace's own seeded
//!   [`rand::rngs::StdRng`], never from ambient entropy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of an exact Mann-Whitney rank-sum test between samples `a`
/// and `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankSum {
    /// The U statistic of sample `a`: the number of pairs `(x, y)` with
    /// `x > y`, counting ties as one half (so `U` may be half-integer).
    pub u_a: f64,
    /// One-sided p-value for the alternative "`a` tends larger":
    /// `P(U ≥ u_a)` under the exact null distribution.
    pub p_a_greater: f64,
    /// One-sided p-value for the alternative "`b` tends larger":
    /// `P(U ≤ u_a)` under the exact null distribution.
    pub p_b_greater: f64,
}

/// Exact Mann-Whitney rank-sum test.
///
/// The U statistic is computed by direct pairwise comparison with
/// mid-rank tie handling. P-values come from the exact no-ties null
/// distribution of U, counted by the standard recurrence
/// `N(u | m, n) = N(u − n | m − 1, n) + N(u | m, n − 1)` in `u128`
/// arithmetic; with ties present this is the usual (slightly
/// conservative) exact treatment. Both one-sided p-values are reported;
/// each includes the observed value (`≥` / `≤`), so the test is valid
/// at level α when the reported side is below α.
///
/// # Panics
///
/// Panics when either sample is empty or any value is NaN.
pub fn rank_sum(a: &[f64], b: &[f64]) -> RankSum {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    assert!(
        a.iter().chain(b).all(|v| !v.is_nan()),
        "samples must be NaN-free"
    );
    let m = a.len();
    let n = b.len();
    // Doubled U keeps ties (half-counts) in integers.
    let mut twice_u: u64 = 0;
    for x in a {
        for y in b {
            match x.total_cmp(y) {
                std::cmp::Ordering::Greater => twice_u += 2,
                std::cmp::Ordering::Equal => twice_u += 1,
                std::cmp::Ordering::Less => {}
            }
        }
    }

    let counts = u_distribution(m, n);
    let total: u128 = counts.iter().sum();
    // P(U >= u_a): integer u qualifies iff 2u >= twice_u.
    let ge: u128 = counts
        .iter()
        .enumerate()
        .filter(|(u, _)| 2 * *u as u64 >= twice_u)
        .map(|(_, c)| *c)
        .sum();
    // P(U <= u_a): integer u qualifies iff 2u <= twice_u.
    let le: u128 = counts
        .iter()
        .enumerate()
        .filter(|(u, _)| 2 * *u as u64 <= twice_u)
        .map(|(_, c)| *c)
        .sum();
    RankSum {
        u_a: twice_u as f64 / 2.0,
        p_a_greater: ge as f64 / total as f64,
        p_b_greater: le as f64 / total as f64,
    }
}

/// Number of arrangements of `m` + `n` distinct values giving each
/// possible U ∈ `0..=m*n`, by the Mann-Whitney counting recurrence.
fn u_distribution(m: usize, n: usize) -> Vec<u128> {
    let max_u = m * n;
    // table[i][j] = distribution of U over u for sample sizes (i, j).
    let mut prev_row: Vec<Vec<u128>> = (0..=n)
        .map(|_| {
            let mut v = vec![0u128; max_u + 1];
            v[0] = 1; // f(0, j, 0) = 1
            v
        })
        .collect();
    for _i in 1..=m {
        let mut row: Vec<Vec<u128>> = Vec::with_capacity(n + 1);
        // j = 0: f(i, 0, 0) = 1.
        let mut first = vec![0u128; max_u + 1];
        first[0] = 1;
        row.push(first);
        for j in 1..=n {
            let mut dist = vec![0u128; max_u + 1];
            for (u, slot) in dist.iter_mut().enumerate() {
                // f(i, j, u) = f(i-1, j, u-j) + f(i, j-1, u)
                let a = if u >= j { prev_row[j][u - j] } else { 0 };
                let b = row[j - 1][u];
                *slot = a + b;
            }
            row.push(dist);
        }
        prev_row = row;
    }
    prev_row.pop().expect("n+1 rows were built")
}

/// A bootstrap confidence interval for the difference of means
/// `mean(a) − mean(b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Observed `mean(a) − mean(b)`.
    pub point: f64,
    /// Lower edge of the interval.
    pub lo: f64,
    /// Upper edge of the interval.
    pub hi: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
}

/// Percentile bootstrap CI for `mean(a) − mean(b)` at the given
/// confidence level, fully deterministic for a given `seed`.
///
/// Resample indices come from a seeded [`StdRng`]; means are summed in
/// index order; percentile edges are picked by integer index after a
/// `total_cmp` sort — no operation depends on platform math libraries
/// or iteration nondeterminism.
///
/// # Panics
///
/// Panics when either sample is empty, `resamples == 0`, or `level` is
/// outside `(0, 1)`.
pub fn bootstrap_mean_diff(
    a: &[f64],
    b: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> BootstrapCi {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must lie in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut diffs = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let ra = resample_mean(a, &mut rng);
        let rb = resample_mean(b, &mut rng);
        diffs.push(ra - rb);
    }
    diffs.sort_by(|x, y| x.total_cmp(y));
    // Indices of the (1−level)/2 and 1−(1−level)/2 percentiles, clamped
    // into range; computed from integers so the pick is exact.
    let tail = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64 * tail) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - tail)) as usize).min(resamples - 1);
    BootstrapCi {
        point: mean(a) - mean(b),
        lo: diffs[lo_idx],
        hi: diffs[hi_idx],
        resamples,
    }
}

fn mean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    for x in xs {
        sum += x;
    }
    sum / xs.len() as f64
}

fn resample_mean(xs: &[f64], rng: &mut StdRng) -> f64 {
    let mut sum = 0.0;
    for _ in 0..xs.len() {
        sum += xs[rng.gen_range(0..xs.len())];
    }
    sum / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_distribution_is_symmetric_and_complete() {
        let d = u_distribution(4, 5);
        let total: u128 = d.iter().sum();
        // C(9, 4) = 126 arrangements.
        assert_eq!(total, 126);
        for u in 0..d.len() {
            assert_eq!(d[u], d[d.len() - 1 - u], "symmetry at u={u}");
        }
    }

    #[test]
    fn clearly_separated_samples_reject_the_null() {
        let a: Vec<f64> = (0..10).map(|i| 100.0 + i as f64).collect();
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let r = rank_sum(&a, &b);
        assert_eq!(r.u_a, 100.0); // every pair favors a
        assert!(r.p_a_greater < 0.001, "p = {}", r.p_a_greater);
        assert!(r.p_b_greater > 0.999);
    }

    #[test]
    fn identical_samples_are_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = rank_sum(&a, &a);
        // All-ties: U = mn/2, both one-sided p-values include the bulk.
        assert_eq!(r.u_a, 8.0);
        assert!(r.p_a_greater > 0.4);
        assert!(r.p_b_greater > 0.4);
    }

    #[test]
    fn rank_sum_matches_known_table_value() {
        // m = n = 3, a entirely above b: U = 9,
        // P(U >= 9) = 1 / C(6,3) = 0.05.
        let r = rank_sum(&[4.0, 5.0, 6.0], &[1.0, 2.0, 3.0]);
        assert_eq!(r.u_a, 9.0);
        assert!((r.p_a_greater - 0.05).abs() < 1e-12);
    }

    #[test]
    fn rank_sum_is_bit_stable() {
        let a = [0.3, 0.7, 0.1, 0.9, 0.5];
        let b = [0.2, 0.6, 0.4, 0.8, 0.35];
        let r1 = rank_sum(&a, &b);
        let r2 = rank_sum(&a, &b);
        assert_eq!(r1.p_a_greater.to_bits(), r2.p_a_greater.to_bits());
        assert_eq!(r1.p_b_greater.to_bits(), r2.p_b_greater.to_bits());
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [0.5, 1.5, 2.5, 3.5, 4.5];
        let c1 = bootstrap_mean_diff(&a, &b, 500, 0.95, 7);
        let c2 = bootstrap_mean_diff(&a, &b, 500, 0.95, 7);
        assert_eq!(c1.lo.to_bits(), c2.lo.to_bits());
        assert_eq!(c1.hi.to_bits(), c2.hi.to_bits());
        let c3 = bootstrap_mean_diff(&a, &b, 500, 0.95, 8);
        assert!(c3 != c1, "different seeds should differ");
    }

    #[test]
    fn bootstrap_interval_brackets_a_large_difference() {
        let a = [10.0, 11.0, 12.0, 13.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let ci = bootstrap_mean_diff(&a, &b, 1000, 0.95, 3);
        assert!((ci.point - 9.0).abs() < 1e-12);
        assert!(ci.lo > 5.0 && ci.hi < 13.0);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
    }
}
