//! The multi-threaded campaign executor.
//!
//! Workers claim cells through the shared [`engine::pool`] helper (work
//! stealing: whichever thread goes idle first picks up the next cell),
//! execute them through the object-safe [`DynOptimizer`] API, and park
//! each finished cell as a crash-safe state file. Three properties hold
//! by construction:
//!
//! * **Bit-identical cells.** A cell's result depends only on its arm
//!   and seed — never on the thread that ran it, the cells that ran
//!   before it, or the shared cache's contents (cached evaluations are
//!   pure functions of the genes).
//! * **Deterministic aggregation.** Results are returned in canonical
//!   arm-major order whatever the completion order, so downstream
//!   reports are byte-stable.
//! * **Resumability.** With a state directory configured, finished
//!   cells persist; a rerun of the same campaign loads them instead of
//!   re-running, and a torn file (killed mid-write) is re-run. The
//!   aggregate of kill + resume is byte-identical to an uninterrupted
//!   run.

use crate::cell::CellResult;
use crate::error::CampaignError;
use crate::spec::{Campaign, CellId};
use engine::{CacheConfig, SharedCache};
use moea::Evaluation;
use sacga::checkpoint::cell_artifact_name;
use sacga::telemetry::{JsonlSink, NullSink, Sink};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration of a [`CampaignRunner`].
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Worker threads (0 and 1 both mean serial execution).
    pub threads: usize,
    /// When set, all cells share one evaluation memo-store of this
    /// configuration (per-run hit attribution stays exact; see
    /// [`SharedCache`]).
    pub shared_cache: Option<CacheConfig>,
    /// When set, each finished cell persists here as
    /// `cell_<arm>_seed<seed>.cell`, and reruns resume from these
    /// files.
    pub state_dir: Option<PathBuf>,
    /// When set, each cell's run-event stream fans out here as
    /// `cell_<arm>_seed<seed>.jsonl`.
    pub telemetry_dir: Option<PathBuf>,
}

impl RunnerConfig {
    /// Sets the worker-thread count (builder style).
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Pools evaluation memoization across all cells (builder style).
    pub fn shared_cache(mut self, cache: CacheConfig) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Enables checkpoint-based campaign resume (builder style).
    pub fn state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Enables per-cell JSONL telemetry fan-out (builder style).
    pub fn telemetry_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.telemetry_dir = Some(dir.into());
        self
    }
}

/// Executes [`Campaign`]s according to a [`RunnerConfig`].
#[derive(Debug, Default)]
pub struct CampaignRunner {
    config: RunnerConfig,
}

impl CampaignRunner {
    /// A runner with the given configuration.
    pub fn new(config: RunnerConfig) -> Self {
        CampaignRunner { config }
    }

    /// The runner's configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Runs every cell of `campaign`, returning results in canonical
    /// arm-major order. Cells already persisted in the state directory
    /// are loaded, not re-run.
    ///
    /// # Errors
    ///
    /// Returns the first [`CampaignError`] any worker hits (remaining
    /// workers stop claiming new cells).
    pub fn run<'p>(&self, campaign: &Campaign<'p>) -> Result<Vec<CellResult>, CampaignError> {
        Ok(self
            .run_at_most(campaign, usize::MAX)?
            .expect("an unbounded run finishes every cell"))
    }

    /// Runs at most `budget` not-yet-persisted cells, then stops — the
    /// campaign-level analogue of killing the process mid-campaign,
    /// used to exercise resume deterministically.
    ///
    /// Returns `Some(results)` when every cell is now complete (run or
    /// loaded), `None` when the budget ran out first. With more than
    /// one worker thread, *which* cells consume the budget depends on
    /// scheduling; resume semantics hold regardless.
    ///
    /// # Errors
    ///
    /// Same as [`run`](CampaignRunner::run).
    pub fn run_at_most<'p>(
        &self,
        campaign: &Campaign<'p>,
        budget: usize,
    ) -> Result<Option<Vec<CellResult>>, CampaignError> {
        if campaign.arms().is_empty() {
            return Err(CampaignError::invalid_spec("campaign has no arms"));
        }
        if campaign.seed_list().is_empty() {
            return Err(CampaignError::invalid_spec("campaign has no seeds"));
        }
        {
            let mut labels: Vec<&str> = campaign.arms().iter().map(|a| a.label()).collect();
            labels.sort_unstable();
            if labels.windows(2).any(|w| w[0] == w[1]) {
                return Err(CampaignError::invalid_spec("duplicate arm labels"));
            }
        }
        if let Some(dir) = &self.config.state_dir {
            std::fs::create_dir_all(dir)?;
        }
        if let Some(dir) = &self.config.telemetry_dir {
            std::fs::create_dir_all(dir)?;
        }

        let cells = campaign.cells();
        let shared = self
            .config
            .shared_cache
            .clone()
            .map(SharedCache::<Evaluation>::new);
        let spent = AtomicUsize::new(0);

        let slots = engine::pool::try_map_indexed(self.config.threads, cells.len(), |i| {
            self.run_cell(campaign, cells[i], shared.as_ref(), &spent, budget)
        })?;
        let mut results = Vec::with_capacity(cells.len());
        for slot in slots {
            match slot {
                Some(result) => results.push(result),
                None => return Ok(None),
            }
        }
        Ok(Some(results))
    }

    /// Executes (or loads) one cell. `Ok(None)` means the cell was
    /// skipped because the budget of fresh runs is exhausted.
    fn run_cell<'p>(
        &self,
        campaign: &Campaign<'p>,
        cell: CellId,
        shared: Option<&SharedCache<Evaluation>>,
        spent: &AtomicUsize,
        budget: usize,
    ) -> Result<Option<CellResult>, CampaignError> {
        let arm = &campaign.arms()[cell.arm];
        let seed = campaign.seed_list()[cell.seed_index];

        let state_path = self
            .config
            .state_dir
            .as_ref()
            .map(|dir| dir.join(cell_artifact_name(arm.label(), seed, "cell")));
        if let Some(path) = &state_path {
            match std::fs::read_to_string(path) {
                // A parse failure means the previous writer died
                // mid-write; fall through and re-run the cell.
                Ok(text) => {
                    if let Ok(loaded) = CellResult::from_text(&text) {
                        if loaded.arm == arm.label() && loaded.seed == seed {
                            return Ok(Some(loaded));
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }

        if spent.fetch_add(1, Ordering::SeqCst) >= budget {
            return Ok(None);
        }

        let optimizer = arm.build(shared);
        let run_err = |source| CampaignError::Run {
            arm: arm.label().to_string(),
            seed,
            source,
        };
        let outcome = match &self.config.telemetry_dir {
            Some(dir) => {
                let log = dir.join(cell_artifact_name(arm.label(), seed, "jsonl"));
                let mut sink = JsonlSink::create(log)?;
                let outcome = optimizer.run_dyn_with(seed, &mut sink).map_err(run_err)?;
                Sink::flush(&mut sink)?;
                outcome
            }
            None => optimizer
                .run_dyn_with(seed, &mut NullSink)
                .map_err(run_err)?,
        };
        let result = CellResult::from_outcome(arm.label(), seed, &outcome);

        if let Some(path) = &state_path {
            // Write-then-rename so a kill can only ever leave a torn
            // `.partial`, never a torn cell file.
            let tmp = path.with_extension("cell.partial");
            std::fs::write(&tmp, result.to_text())?;
            std::fs::rename(&tmp, path)?;
        }
        Ok(Some(result))
    }
}
