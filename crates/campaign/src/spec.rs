//! The campaign specification: which algorithms run on which seeds.

use engine::SharedCache;
use moea::Evaluation;
use sacga::telemetry::DynOptimizer;

/// Factory signature of an [`Arm`]: builds a fresh optimizer for one
/// cell, wiring in the campaign's shared evaluation cache when the
/// runner provides one. Called concurrently from worker threads, hence
/// `Sync`.
pub type ArmFactory<'p> =
    Box<dyn Fn(Option<&SharedCache<Evaluation>>) -> Box<dyn DynOptimizer + 'p> + Sync + 'p>;

/// One algorithm × configuration under comparison: a stable label (used
/// in file names, reports and statistics) plus a factory that
/// instantiates the configured optimizer for each cell.
///
/// The factory is invoked once per cell, inside whichever worker thread
/// claims the cell. It receives the campaign-wide [`SharedCache`] when
/// the runner is configured with one, and must thread it into the
/// optimizer's configuration (every config builder in the workspace has
/// a `.shared_cache(..)` method) — or ignore it to keep that arm's
/// caching private.
pub struct Arm<'p> {
    label: String,
    factory: ArmFactory<'p>,
}

impl<'p> Arm<'p> {
    /// An arm named `label` built by `factory`.
    pub fn new(
        label: impl Into<String>,
        factory: impl Fn(Option<&SharedCache<Evaluation>>) -> Box<dyn DynOptimizer + 'p> + Sync + 'p,
    ) -> Self {
        Arm {
            label: label.into(),
            factory: Box::new(factory),
        }
    }

    /// The arm's stable label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Instantiates the optimizer for one cell.
    pub fn build(&self, shared: Option<&SharedCache<Evaluation>>) -> Box<dyn DynOptimizer + 'p> {
        (self.factory)(shared)
    }
}

impl std::fmt::Debug for Arm<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arm").field("label", &self.label).finish()
    }
}

/// Coordinates of one cell in the campaign matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellId {
    /// Index into [`Campaign::arms`].
    pub arm: usize,
    /// Index into [`Campaign::seeds`].
    pub seed_index: usize,
}

/// A full campaign: every arm runs on every seed, one run per cell.
///
/// Cells are ordered arm-major (all of arm 0's seeds, then arm 1's, …);
/// results and reports always follow this order regardless of the order
/// in which worker threads actually complete the cells.
#[derive(Debug)]
pub struct Campaign<'p> {
    name: String,
    arms: Vec<Arm<'p>>,
    seeds: Vec<u64>,
}

impl<'p> Campaign<'p> {
    /// An empty campaign named `name`; add arms and seeds before
    /// running.
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            arms: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Adds an algorithm arm (builder style).
    pub fn arm(
        mut self,
        label: impl Into<String>,
        factory: impl Fn(Option<&SharedCache<Evaluation>>) -> Box<dyn DynOptimizer + 'p> + Sync + 'p,
    ) -> Self {
        self.arms.push(Arm::new(label, factory));
        self
    }

    /// Sets the seed list shared by every arm (builder style).
    pub fn seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = seeds.into();
        self
    }

    /// The campaign name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The algorithm arms, in declaration order.
    pub fn arms(&self) -> &[Arm<'p>] {
        &self.arms
    }

    /// The seed list shared by every arm.
    pub fn seed_list(&self) -> &[u64] {
        &self.seeds
    }

    /// Total number of cells (`arms × seeds`).
    pub fn cell_count(&self) -> usize {
        self.arms.len() * self.seeds.len()
    }

    /// All cells in canonical arm-major order.
    pub fn cells(&self) -> Vec<CellId> {
        let mut out = Vec::with_capacity(self.cell_count());
        for arm in 0..self.arms.len() {
            for seed_index in 0..self.seeds.len() {
                out.push(CellId { arm, seed_index });
            }
        }
        out
    }
}
