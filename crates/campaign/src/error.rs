//! Campaign-level errors.

use moea::OptimizeError;
use std::fmt;
use std::io;

/// Everything that can go wrong while orchestrating a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Filesystem trouble with state or telemetry artifacts.
    Io(io::Error),
    /// An optimizer run failed; carries the cell's arm label and seed.
    Run {
        /// Label of the failing arm.
        arm: String,
        /// Seed of the failing cell.
        seed: u64,
        /// The underlying optimizer error.
        source: OptimizeError,
    },
    /// A completed-cell file did not parse (and was not simply absent).
    CorruptCell {
        /// What was wrong with it.
        detail: String,
    },
    /// The campaign specification itself is unusable.
    InvalidSpec(String),
}

impl CampaignError {
    pub(crate) fn corrupt_cell(detail: impl Into<String>) -> Self {
        CampaignError::CorruptCell {
            detail: detail.into(),
        }
    }

    pub(crate) fn invalid_spec(detail: impl Into<String>) -> Self {
        CampaignError::InvalidSpec(detail.into())
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign I/O error: {e}"),
            CampaignError::Run { arm, seed, source } => {
                write!(f, "cell {arm}/seed {seed} failed: {source}")
            }
            CampaignError::CorruptCell { detail } => {
                write!(f, "corrupt cell file: {detail}")
            }
            CampaignError::InvalidSpec(detail) => write!(f, "invalid campaign: {detail}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            CampaignError::Run { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}
