//! Property-based tests of the SACGA machinery invariants.

use proptest::prelude::*;
use sacga::anneal::{AnnealingSchedule, ProbabilityShaper, PromotionPolicy};
use sacga::partition::PartitionGrid;

proptest! {
    #[test]
    fn temperature_is_monotone_and_bounded(
        t_init in 1.5f64..1e5,
        span in 1usize..500,
        g1 in 0usize..500,
        g2 in 0usize..500,
    ) {
        let s = AnnealingSchedule::new(t_init, 1.0, span).unwrap();
        let (lo, hi) = (g1.min(g2), g1.max(g2));
        let (t_lo, t_hi) = (s.temperature(hi), s.temperature(lo));
        prop_assert!(t_lo <= t_hi + 1e-9);
        prop_assert!(s.temperature(0) <= t_init * (1.0 + 1e-12));
        // fully cooled value is 1 for k3 = 1
        prop_assert!((s.temperature(span) - 1.0).abs() < 1e-6 * t_init.max(1.0));
    }

    #[test]
    fn promotion_probability_laws(
        k2 in 0.0f64..5.0,
        alpha in 0.01f64..10.0,
        n in 2usize..12,
        temp in 1.0f64..1e4,
    ) {
        let p = PromotionPolicy::new(1.0, k2, alpha, n).unwrap();
        let mut prev = f64::INFINITY;
        for i in 1..=n {
            let pr = p.probability(i, temp);
            prop_assert!((0.0..=1.0).contains(&pr));
            prop_assert!(pr <= prev + 1e-12, "prob must fall with i");
            prev = pr;
        }
        // cooling raises every probability
        for i in 1..=n {
            prop_assert!(p.probability(i, temp) <= p.probability(i, 1.0) + 1e-12);
        }
    }

    #[test]
    fn shaper_solves_exactly_for_valid_targets(
        p_mid_last in 0.02f64..0.4,
        gap in 0.05f64..0.5,
        end_gap in 0.05f64..0.5,
        n in 2usize..10,
        span in 2usize..400,
    ) {
        let p_mid_first = (p_mid_last + gap).min(0.97);
        let p_end_last = (p_mid_last + end_gap).min(0.97);
        prop_assume!(p_mid_first > p_mid_last && p_end_last > p_mid_last);
        let shaper = ProbabilityShaper::new(p_mid_first, p_mid_last, p_end_last).unwrap();
        let (policy, schedule) = shaper.solve(n, span).unwrap();
        let t_mid = schedule.t_init.sqrt();
        prop_assert!((policy.probability(1, t_mid) - p_mid_first).abs() < 1e-6);
        prop_assert!((policy.probability(n, t_mid) - p_mid_last).abs() < 1e-6);
        prop_assert!((policy.probability(n, 1.0) - p_end_last).abs() < 1e-6);
    }

    #[test]
    fn partition_of_is_total_and_ordered(
        lo in -100.0f64..0.0,
        width in 0.1f64..100.0,
        m in 1usize..40,
        v1 in -200.0f64..200.0,
        v2 in -200.0f64..200.0,
    ) {
        let grid = PartitionGrid::new(0, lo, lo + width, m).unwrap();
        let p1 = grid.partition_of(&[v1]);
        let p2 = grid.partition_of(&[v2]);
        prop_assert!(p1 < m && p2 < m);
        if v1 <= v2 {
            prop_assert!(p1 <= p2, "partition index must be monotone in value");
        }
    }

    #[test]
    fn slice_ranges_tile_without_gaps(
        lo in -10.0f64..10.0,
        width in 0.5f64..50.0,
        m in 1usize..30,
    ) {
        let grid = PartitionGrid::new(0, lo, lo + width, m).unwrap();
        let mut edge = lo;
        for p in 0..m {
            let (a, b) = grid.slice_range(p);
            prop_assert!((a - edge).abs() < 1e-9 * width.max(1.0));
            prop_assert!(b > a);
            edge = b;
        }
        prop_assert!((edge - (lo + width)).abs() < 1e-9 * width.max(1.0));
    }

    #[test]
    fn interior_values_land_in_their_slice(
        m in 1usize..25,
        t in 0.001f64..0.999,
    ) {
        let grid = PartitionGrid::new(0, 0.0, 1.0, m).unwrap();
        let p = grid.partition_of(&[t]);
        let (a, b) = grid.slice_range(p);
        prop_assert!(t >= a - 1e-12 && t < b + 1e-12, "{t} not in [{a}, {b})");
    }
}
