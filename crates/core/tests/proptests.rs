//! Property-based tests of the SACGA machinery invariants.

use engine::{EngineConfig, EvalOutcome, ExecutionEngine, ExhaustedAction, FaultPlan, FaultPolicy};
use moea::evaluation::Evaluation;
use moea::individual::Individual;
use moea::problems::Schaffer;
use moea::RunStatus;
use proptest::prelude::*;
use sacga::anneal::{AnnealingSchedule, ProbabilityShaper, PromotionPolicy};
use sacga::partition::{PartitionGrid, PartitionedPopulation};
use sacga::sacga::{Sacga, SacgaConfig};
use sacga::steady::{SteadyConfig, SteadySacga};
use sacga::telemetry::Optimizer;
use sacga::topology::Topology;
use std::cell::Cell;

/// Realizes one of the four topology families from flat proptest
/// parameters, always structurally valid: `kind` selects the family,
/// `size` and `radius` are folded into that family's legal range.
fn arb_topology(kind: usize, size: usize, radius: usize, seed: u64) -> Topology {
    match kind % 4 {
        0 => {
            let cells = 3 + size % 14; // 3..=16
            Topology::Ring {
                cells,
                radius: 1 + radius % ((cells - 1) / 2).max(1),
            }
        }
        1 => Topology::Torus {
            rows: 2 + size % 4,
            cols: 2 + (size / 4) % 4,
            radius: 1 + radius % 3,
        },
        2 => Topology::FullyConnected {
            cells: 2 + size % 15,
        },
        _ => {
            let cells = 3 + size % 14;
            Topology::SmallWorld {
                cells,
                radius: 1 + radius % ((cells - 1) / 2).max(1),
                chords: 1 + size % 5,
                seed,
            }
        }
    }
}

proptest! {
    #[test]
    fn temperature_is_monotone_and_bounded(
        t_init in 1.5f64..1e5,
        span in 1usize..500,
        g1 in 0usize..500,
        g2 in 0usize..500,
    ) {
        let s = AnnealingSchedule::new(t_init, 1.0, span).unwrap();
        let (lo, hi) = (g1.min(g2), g1.max(g2));
        let (t_lo, t_hi) = (s.temperature(hi), s.temperature(lo));
        prop_assert!(t_lo <= t_hi + 1e-9);
        prop_assert!(s.temperature(0) <= t_init * (1.0 + 1e-12));
        // fully cooled value is 1 for k3 = 1
        prop_assert!((s.temperature(span) - 1.0).abs() < 1e-6 * t_init.max(1.0));
    }

    #[test]
    fn promotion_probability_laws(
        k2 in 0.0f64..5.0,
        alpha in 0.01f64..10.0,
        n in 2usize..12,
        temp in 1.0f64..1e4,
    ) {
        let p = PromotionPolicy::new(1.0, k2, alpha, n).unwrap();
        let mut prev = f64::INFINITY;
        for i in 1..=n {
            let pr = p.probability(i, temp);
            prop_assert!((0.0..=1.0).contains(&pr));
            prop_assert!(pr <= prev + 1e-12, "prob must fall with i");
            prev = pr;
        }
        // cooling raises every probability
        for i in 1..=n {
            prop_assert!(p.probability(i, temp) <= p.probability(i, 1.0) + 1e-12);
        }
    }

    #[test]
    fn shaper_solves_exactly_for_valid_targets(
        p_mid_last in 0.02f64..0.4,
        gap in 0.05f64..0.5,
        end_gap in 0.05f64..0.5,
        n in 2usize..10,
        span in 2usize..400,
    ) {
        let p_mid_first = (p_mid_last + gap).min(0.97);
        let p_end_last = (p_mid_last + end_gap).min(0.97);
        prop_assume!(p_mid_first > p_mid_last && p_end_last > p_mid_last);
        let shaper = ProbabilityShaper::new(p_mid_first, p_mid_last, p_end_last).unwrap();
        let (policy, schedule) = shaper.solve(n, span).unwrap();
        let t_mid = schedule.t_init.sqrt();
        prop_assert!((policy.probability(1, t_mid) - p_mid_first).abs() < 1e-6);
        prop_assert!((policy.probability(n, t_mid) - p_mid_last).abs() < 1e-6);
        prop_assert!((policy.probability(n, 1.0) - p_end_last).abs() < 1e-6);
    }

    #[test]
    fn partition_of_is_total_and_ordered(
        lo in -100.0f64..0.0,
        width in 0.1f64..100.0,
        m in 1usize..40,
        v1 in -200.0f64..200.0,
        v2 in -200.0f64..200.0,
    ) {
        let grid = PartitionGrid::new(0, lo, lo + width, m).unwrap();
        let p1 = grid.partition_of(&[v1]);
        let p2 = grid.partition_of(&[v2]);
        prop_assert!(p1 < m && p2 < m);
        if v1 <= v2 {
            prop_assert!(p1 <= p2, "partition index must be monotone in value");
        }
    }

    #[test]
    fn slice_ranges_tile_without_gaps(
        lo in -10.0f64..10.0,
        width in 0.5f64..50.0,
        m in 1usize..30,
    ) {
        let grid = PartitionGrid::new(0, lo, lo + width, m).unwrap();
        let mut edge = lo;
        for p in 0..m {
            let (a, b) = grid.slice_range(p);
            prop_assert!((a - edge).abs() < 1e-9 * width.max(1.0));
            prop_assert!(b > a);
            edge = b;
        }
        prop_assert!((edge - (lo + width)).abs() < 1e-9 * width.max(1.0));
    }

    #[test]
    fn interior_values_land_in_their_slice(
        m in 1usize..25,
        t in 0.001f64..0.999,
    ) {
        let grid = PartitionGrid::new(0, 0.0, 1.0, m).unwrap();
        let p = grid.partition_of(&[t]);
        let (a, b) = grid.slice_range(p);
        prop_assert!(t >= a - 1e-12 && t < b + 1e-12, "{t} not in [{a}, {b})");
    }

    #[test]
    fn boundary_values_belong_to_exactly_one_partition(
        lo in -50.0f64..50.0,
        width in 0.5f64..60.0,
        m in 2usize..32,
        p in 0usize..31,
    ) {
        // A solution sitting exactly on a slice boundary must be assigned
        // to exactly one partition — one of the two slices meeting there,
        // never a third, and deterministically.
        prop_assume!(p + 1 < m);
        let grid = PartitionGrid::new(0, lo, lo + width, m).unwrap();
        let (_, edge) = grid.slice_range(p);
        let q = grid.partition_of(&[edge]);
        prop_assert!(q < m);
        prop_assert!(q == p || q == p + 1, "boundary {edge} routed to distant slice {q}");
        prop_assert_eq!(grid.partition_of(&[edge]), q, "assignment must be a function");
        // Distributing duplicates of the boundary value puts every copy in
        // that one partition and loses / double-counts nobody.
        let pop: Vec<Individual> = (0..3)
            .map(|_| Individual::new(vec![0.0], Evaluation::unconstrained(vec![edge])))
            .collect();
        let pp = PartitionedPopulation::distribute(grid, pop);
        let total: usize = (0..m).map(|i| pp.partition(i).len()).sum();
        prop_assert_eq!(total, 3);
        prop_assert_eq!(pp.partition(q).len(), 3);
    }

    #[test]
    fn expanding_partition_schemes_tile_for_arbitrary_m(
        lo in -20.0f64..20.0,
        width in 0.5f64..40.0,
        ms in prop::collection::vec(1usize..40, 1..6),
        values in prop::collection::vec(0.0f64..1.0, 1..20),
    ) {
        // MESACGA regrids the same objective range through an arbitrary
        // partition-count schedule; every grid in the schedule must cover
        // the range with adjacent, gap-free, overlap-free slices, and
        // regridding must conserve the population exactly.
        let hi = lo + width;
        let pop: Vec<Individual> = values
            .iter()
            .map(|t| Individual::new(vec![0.0], Evaluation::unconstrained(vec![lo + t * width])))
            .collect();
        let mut pp = PartitionedPopulation::distribute(
            PartitionGrid::new(0, lo, hi, 1).unwrap(),
            pop,
        );
        for &m in &ms {
            let grid = pp.grid().with_partitions(m).unwrap();
            let mut edge = lo;
            for p in 0..m {
                let (a, b) = grid.slice_range(p);
                prop_assert!((a - edge).abs() <= 1e-9 * width.max(1.0), "gap/overlap at slice {p}");
                prop_assert!(b > a, "slice {p} must have positive width");
                edge = b;
            }
            prop_assert!((edge - hi).abs() <= 1e-9 * width.max(1.0), "last slice must end at hi");
            prop_assert_eq!(grid.partition_of(&[lo]), 0);
            prop_assert_eq!(grid.partition_of(&[hi]), m - 1);
            pp = pp.regrid(grid);
            let total: usize = (0..m).map(|i| pp.partition(i).len()).sum();
            prop_assert_eq!(total, values.len(), "regrid to m = {} lost or duplicated members", m);
        }
    }

    // ---- annealing edge cases ----

    #[test]
    fn span_one_schedule_cools_in_a_single_step(
        t_init in 1.0001f64..1e6,
        k3 in 0.1f64..3.0,
    ) {
        let s = AnnealingSchedule::new(t_init, k3, 1).unwrap();
        prop_assert!((s.temperature(0) - t_init).abs() <= 1e-9 * t_init);
        let cooled = s.temperature(1);
        let expected = t_init.powf(1.0 - k3);
        prop_assert!(
            (cooled - expected).abs() <= 1e-6 * expected.max(1.0),
            "span-1 schedule must land on t_init^(1-k3): {cooled} vs {expected}"
        );
        // elapsed time beyond the span clamps to the fully cooled value
        prop_assert_eq!(s.temperature(100), cooled);
    }

    #[test]
    fn near_degenerate_t_init_keeps_temperatures_finite_and_bounded(
        eps_exp in 1i32..14,
        span in 1usize..100,
        g in 0usize..200,
    ) {
        // t_init barely above its lower bound of 1: ln(t_init) → 0 and the
        // schedule must stay finite and squeezed into [1, t_init].
        let t_init = 1.0 + 10f64.powi(-eps_exp);
        prop_assume!(t_init > 1.0);
        let s = AnnealingSchedule::new(t_init, 1.0, span).unwrap();
        let t = s.temperature(g);
        prop_assert!(t.is_finite());
        prop_assert!(t >= 1.0 - 1e-12 && t <= t_init + 1e-12, "T = {t} outside [1, {t_init}]");
    }

    #[test]
    fn promotion_cost_is_positive_and_monotone_in_rank(
        k1 in 0.001f64..100.0,
        k2 in 0.0f64..6.0,
        n in 2usize..16,
    ) {
        let p = PromotionPolicy::new(k1, k2, 1.0, n).unwrap();
        let mut prev = 0.0;
        for i in 1..=n {
            let c = p.cost(i);
            prop_assert!(c.is_finite() && c > 0.0);
            prop_assert!(c >= prev, "cost must be non-decreasing in i: c({i}) = {c} < {prev}");
            prev = c;
        }
        let expected_first = k1 * (k2 / (n as f64 - 1.0)).exp();
        prop_assert!((p.cost(1) - expected_first).abs() <= 1e-9 * expected_first.max(1.0));
    }

    // ---- fault-tolerance layer ----

    #[test]
    fn retry_never_exceeds_max_attempts(
        max_attempts in 1u32..6,
        faults in 0u32..8,
    ) {
        let policy = FaultPolicy::default()
            .max_attempts(max_attempts)
            .quarantine_nonfinite(true)
            .on_exhausted(ExhaustedAction::Quarantine);
        let calls = Cell::new(0u32);
        let eval = |genes: &[f64]| {
            let n = calls.get();
            calls.set(n + 1);
            if n < faults { f64::NAN } else { genes[0] * 2.0 }
        };
        let outcome = policy.execute(&eval, &[1.5]);
        prop_assert!(calls.get() <= max_attempts.max(1), "attempts exceeded budget");
        match outcome {
            EvalOutcome::Ok(v) => {
                prop_assert_eq!(faults, 0);
                prop_assert_eq!(v, 3.0);
            }
            EvalOutcome::Recovered { value, failures, .. } => {
                prop_assert!(faults >= 1 && faults < max_attempts);
                prop_assert_eq!(failures, faults);
                prop_assert_eq!(value, 3.0);
            }
            EvalOutcome::Quarantined { value, failures, .. } => {
                prop_assert!(faults >= max_attempts);
                prop_assert_eq!(failures, max_attempts);
                prop_assert!(!value.is_finite(), "placeholder must be worst-case");
            }
            EvalOutcome::Failed(_) => prop_assert!(false, "quarantine policy must not abort"),
        }
    }

    #[test]
    fn fault_injected_sacga_recovers_to_the_fault_free_front(
        seed in 0u64..1000,
        plan_seed in 0u64..1000,
        panic_pct in 0u32..12,
        nan_pct in 0u32..12,
    ) {
        let base = SacgaConfig::builder()
            .population_size(16)
            .generations(6)
            .partitions(3);
        let clean = Sacga::new(Schaffer::new(), base.clone().build().unwrap())
            .run_seeded(seed)
            .unwrap();
        let plan = FaultPlan::seeded(plan_seed)
            .panics(f64::from(panic_pct) / 100.0)
            .nonfinite(f64::from(nan_pct) / 100.0);
        let faulty_cfg = base
            .fault_policy(FaultPolicy::tolerant(4))
            .inject_faults(plan)
            .build()
            .unwrap();
        let faulty = Sacga::new(Schaffer::new(), faulty_cfg).run_seeded(seed).unwrap();
        prop_assert_eq!(clean.front_objectives(), faulty.front_objectives());
        prop_assert_eq!(
            faulty.stats.failures,
            faulty.stats.injected_panics + faulty.stats.injected_nonfinite
        );
        prop_assert_eq!(faulty.stats.recovered, faulty.stats.failures);
        prop_assert_eq!(faulty.stats.quarantined, 0);
    }

    #[test]
    fn memo_cache_never_stores_quarantined_results(
        nan_pct in 5u32..60,
        plan_seed in 0u64..500,
        batch_len in 4usize..40,
    ) {
        // Every fault-selected candidate stays non-finite on all attempts,
        // so it ends quarantined; the cache must keep refusing it while
        // serving the clean candidates.
        let config = EngineConfig::default()
            .cache_capacity(1024)
            .fault_policy(FaultPolicy::tolerant(2))
            .inject_faults(
                FaultPlan::seeded(plan_seed)
                    .nonfinite(f64::from(nan_pct) / 100.0)
                    .faults_per_candidate(u32::MAX),
            );
        let mut exec: ExecutionEngine<f64> = ExecutionEngine::new(config);
        let batch: Vec<Vec<f64>> = (0..batch_len).map(|i| vec![i as f64 * 0.37 + 0.1]).collect();
        let eval = |genes: &[f64]| genes[0] + 1.0;

        let first = exec.try_evaluate_batch(&batch, &eval).unwrap();
        let q1 = exec.stats().quarantined;
        prop_assert_eq!(exec.stats().cache_hits, 0);

        let second = exec.try_evaluate_batch(&batch, &eval).unwrap();
        // Clean results were cached; quarantined ones were re-evaluated
        // (and quarantined again), never answered from the cache.
        prop_assert_eq!(exec.stats().quarantined, 2 * q1);
        prop_assert_eq!(exec.stats().cache_hits, batch_len as u64 - q1);
        for (a, b) in first.iter().zip(&second) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let tainted = first.iter().filter(|v| !v.is_finite()).count() as u64;
        prop_assert_eq!(tainted, q1);
    }

    // ---- steady-state SACGA ----

    #[test]
    fn steady_merges_are_deterministic_across_worker_counts(
        seed in 0u64..1000,
        pop_half in 4usize..10,
        gens in 2usize..7,
        partitions in 1usize..5,
        window_extra in 0usize..24,
        quantum in 1usize..24,
    ) {
        // Completions are applied in submission-index order, so a seeded
        // steady run must be bit-identical however many workers race on
        // the evaluations.
        let pop = pop_half * 2;
        let make = |threads: usize| {
            let mut b = SteadyConfig::builder()
                .population_size(pop)
                .generations(gens)
                .partitions(partitions)
                .window(2 + window_extra)
                .quantum(quantum);
            if threads > 0 {
                b = b.evaluator(engine::EvaluatorKind::ParallelWith(threads));
            }
            SteadySacga::new(Schaffer::new(), b.build().unwrap())
        };
        let serial = make(0).run_seeded(seed).unwrap();
        for threads in [2usize, 4] {
            let parallel = make(threads).run_seeded(seed).unwrap();
            prop_assert_eq!(&serial.front_objectives(), &parallel.front_objectives());
            prop_assert_eq!(&serial.history, &parallel.history);
            let genes = |r: &moea::RunOutcome| r
                .population
                .iter()
                .map(|m| m.genes.clone())
                .collect::<Vec<_>>();
            prop_assert_eq!(genes(&serial), genes(&parallel), "{} workers diverged", threads);
        }
    }

    #[test]
    fn steady_kill_resume_at_any_boundary_is_lossless(
        seed in 0u64..1000,
        pop_half in 4usize..10,
        gens in 2usize..8,
        partitions in 1usize..5,
        window_extra in 0usize..24,
        quantum in 1usize..24,
        stop_frac in 0.0f64..1.0,
    ) {
        // Suspending at an arbitrary generation boundary — with the
        // look-ahead mid-flight — and resuming from the checkpoint text
        // must reproduce the uninterrupted run bit for bit.
        let pop = pop_half * 2;
        let config = SteadyConfig::builder()
            .population_size(pop)
            .generations(gens)
            .partitions(partitions)
            .window(2 + window_extra)
            .quantum(quantum)
            .build()
            .unwrap();
        let ga = SteadySacga::new(Schaffer::new(), config);
        let full = ga.run_seeded(seed).unwrap();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let stop = ((gens as f64) * stop_frac) as usize;
        // stop_frac < 1.0, so stop < gens and the run must suspend.
        let cp = match ga.run_until(seed, stop).unwrap() {
            RunStatus::Suspended(cp) => cp,
            RunStatus::Complete(_) => panic!("stop {stop} < gens {gens} must suspend"),
        };
        prop_assert_eq!(cp.state.gen, stop);
        let restored = sacga::SteadyCheckpoint::from_text(&cp.to_text()).unwrap();
        prop_assert_eq!(&restored, &*cp);
        let resumed = ga.resume(&restored).unwrap();
        prop_assert_eq!(resumed.front_objectives(), full.front_objectives());
        prop_assert_eq!(&resumed.history, &full.history);
        prop_assert_eq!(resumed.gen_t, full.gen_t);
        let scrub = |mut s: engine::EngineStats| {
            s.eval_time = std::time::Duration::ZERO;
            s.backoff_time = std::time::Duration::ZERO;
            s
        };
        prop_assert_eq!(scrub(resumed.stats), scrub(full.stats));
    }

    #[test]
    fn topology_neighborhoods_are_symmetric_self_free_and_connected(
        kind in 0usize..4,
        size in 0usize..64,
        radius in 0usize..8,
        seed in 0u64..1000,
    ) {
        let topo = arb_topology(kind, size, radius, seed);
        prop_assert!(topo.validate().is_ok(), "{topo:?}");
        let k = topo.cells();
        for i in 0..k {
            let n = topo.neighbors(i);
            prop_assert!(!n.contains(&i), "{topo:?}: cell {i} neighbors itself");
            // No duplicate edges out of one cell.
            let mut dedup = n.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), n.len(), "{:?}: duplicate neighbor of {}", &topo, i);
            // Symmetry: j sees i whenever i sees j.
            for &j in &n {
                prop_assert!(j < k, "{topo:?}: out-of-range neighbor {j}");
                prop_assert!(
                    topo.neighbors(j).contains(&i),
                    "{topo:?}: edge {i}->{j} has no reverse"
                );
            }
            // The forward/backward split is a partition of the
            // neighborhood.
            let (fwd, bwd) = topo.orientation(i);
            let mut both = fwd;
            both.extend(bwd);
            both.sort_unstable();
            let mut all = n.clone();
            all.sort_unstable();
            prop_assert_eq!(both, all, "{:?}: orientation is not a partition", &topo);
        }
        prop_assert!(topo.is_connected(), "{topo:?} is disconnected");
    }

    #[test]
    fn migration_conserves_every_cell_population(
        kind in 0usize..4,
        size in 0usize..64,
        radius in 0usize..8,
        seed in 0u64..1000,
        migrants in 1usize..4,
        capacity_extra in 0usize..5,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let topo = arb_topology(kind, size, radius, seed);
        let k = topo.cells();
        let capacity = 4 + capacity_extra.max(migrants); // migrants < capacity
        let mut rng = StdRng::seed_from_u64(seed);
        // Random two-objective cells, ranked the way a live run's are.
        let mut cells: Vec<Vec<Individual>> = (0..k)
            .map(|_| {
                let mut cell: Vec<Individual> = (0..capacity)
                    .map(|_| {
                        let g = rng.gen::<f64>() * 4.0 - 2.0;
                        Individual::new(
                            vec![g],
                            Evaluation::new(vec![g * g, (g - 2.0) * (g - 2.0)], vec![]),
                        )
                    })
                    .collect();
                moea::sorting::rank_and_crowd(&mut cell);
                cell
            })
            .collect();
        let adjacency: Vec<Vec<usize>> = (0..k).map(|i| topo.neighbors(i)).collect();
        let (migrated, candidates) =
            sacga::cellular::migrate(&mut cells, &adjacency, migrants, capacity, &mut rng);
        prop_assert_eq!(migrated, k * migrants);
        prop_assert!(candidates >= k, "each cell offers at least one candidate");
        // Conservation: selection absorbs every delivery back to
        // exactly `capacity` members per cell.
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(cell.len(), capacity, "cell {} size drifted", i);
        }
    }
}
