//! Steady-state SACGA: the annealed-competition algorithm without the
//! per-generation evaluation barrier.
//!
//! The generational [`Sacga`](crate::sacga::Sacga) loop evaluates each
//! offspring batch behind a barrier: no candidate of generation `g+1` is
//! produced until every candidate of generation `g` has been evaluated,
//! so one slow evaluation stalls the whole loop. [`SteadySacga`] drives
//! the same algorithm through the engine's
//! [`EvaluationSession`] submission/completion API instead:
//!
//! * **Production runs ahead of merging.** Offspring are submitted as
//!   selection produces them, up to a look-ahead
//!   [`window`](SteadyConfigBuilder::window) of unmerged submissions.
//!   Under a parallel evaluator they evaluate concurrently with the
//!   control thread's own selection and ranking work.
//! * **Merging is incremental.** Completed evaluations are folded into
//!   the partitioned population in [`quantum`](SteadyConfigBuilder::quantum)-sized
//!   merges — absorb, local truncation, local re-ranking — and each merge
//!   immediately refreshes the selection basis (including the SA-gated
//!   promotion gamble in phase II), so later offspring of the *same*
//!   generation are already bred from the updated population.
//! * **Merges are deterministic.** The session hands completions back in
//!   submission order regardless of completion interleaving, and every
//!   RNG draw happens on the control thread, so a seeded run is
//!   bit-identical whether it executes serially or over any number of
//!   workers.
//!
//! A *generation* remains the bookkeeping unit: every
//! `population_size` merges the run crosses a generation boundary, where
//! history rows, telemetry events, phase-I termination, and suspension
//! are handled exactly as in the generational loop. With
//! `window == quantum == population_size` the steady loop degenerates to
//! the generational schedule and reproduces [`Sacga`](crate::sacga::Sacga)
//! bit-for-bit — the barrier is purely a special case of the window.
//!
//! Suspension ([`Optimizer::run_until`]) happens at a generation
//! boundary, but production may already have run ahead; the look-ahead's
//! completed evaluations travel inside the
//! [`SteadyCheckpoint`] (`pending`) and are primed back into a fresh
//! session on resume, keeping killed-and-resumed runs bit-identical to
//! uninterrupted ones.

use std::collections::VecDeque;

use crate::anneal::{AnnealingSchedule, ProbabilityShaper, PromotionPolicy};
use crate::checkpoint::{EngineState, SavedIndividual, SteadyCheckpoint};
use crate::partition::{PartitionGrid, PartitionedPopulation};
use crate::sacga::{
    population_front, CompetitionMode, GenerationStats, SacgaConfig, SacgaConfigBuilder,
};
use crate::telemetry::{expect_complete, EventKind, NullSink, Optimizer, RunEvent, Sink};
use engine::{
    EngineConfig, EngineStats, EvaluationSession, EvaluatorKind, FaultPlan, FaultPolicy,
    SharedCache, Stage, StageTimer, SurrogateScreen,
};
use moea::individual::Individual;
use moea::operators::{random_vector, Variation};
use moea::problem::Problem;
use moea::selection::RankRoulette;
use moea::setup::EngineSetup;
use moea::sorting::rank_and_crowd;
use moea::{Bounds, Evaluation, OptimizeError, RunOutcome, RunStatus};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of a steady-state SACGA run. Build with
/// [`SteadyConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyConfig {
    pub(crate) base: SacgaConfig,
    pub(crate) window: usize,
    pub(crate) quantum: usize,
}

impl SteadyConfig {
    /// Starts a configuration builder.
    pub fn builder() -> SteadyConfigBuilder {
        SteadyConfigBuilder::default()
    }

    /// Population size.
    pub fn population_size(&self) -> usize {
        self.base.population_size()
    }

    /// Total generation budget (phase I + phase II).
    pub fn generations(&self) -> usize {
        self.base.generations()
    }

    /// Number of partitions `m`.
    pub fn partitions(&self) -> usize {
        self.base.partitions()
    }

    /// Maximum number of submitted-but-unmerged offspring.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of completions folded per merge.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// Evaluation-engine settings.
    pub fn engine(&self) -> &EngineConfig {
        self.base.engine()
    }
}

/// Builder for [`SteadyConfig`]: every SACGA knob plus the steady-state
/// `window` and `quantum`.
#[derive(Debug, Clone)]
pub struct SteadyConfigBuilder {
    inner: SacgaConfigBuilder,
    window: Option<usize>,
    quantum: Option<usize>,
}

impl Default for SteadyConfigBuilder {
    fn default() -> Self {
        SteadyConfigBuilder {
            inner: SacgaConfig::builder(),
            window: None,
            quantum: None,
        }
    }
}

impl SteadyConfigBuilder {
    /// Sets the population size (≥ 4, even).
    pub fn population_size(mut self, n: usize) -> Self {
        self.inner = self.inner.population_size(n);
        self
    }

    /// Sets the total generation budget.
    pub fn generations(mut self, n: usize) -> Self {
        self.inner = self.inner.generations(n);
        self
    }

    /// Sets the partition count `m` (≥ 1).
    pub fn partitions(mut self, m: usize) -> Self {
        self.inner = self.inner.partitions(m);
        self
    }

    /// Sets `n`, the desired number of globally superior solutions per
    /// partition (≥ 2).
    pub fn n_superior(mut self, n: usize) -> Self {
        self.inner = self.inner.n_superior(n);
        self
    }

    /// Caps the pure-local phase (default: a quarter of the budget).
    pub fn phase1_max(mut self, cap: usize) -> Self {
        self.inner = self.inner.phase1_max(cap);
        self
    }

    /// Overrides the probability-shaping targets.
    pub fn shaper(mut self, shaper: ProbabilityShaper) -> Self {
        self.inner = self.inner.shaper(shaper);
        self
    }

    /// Overrides the variation operators.
    pub fn variation(mut self, v: Variation) -> Self {
        self.inner = self.inner.variation(v);
        self
    }

    /// Sets the geometric rank-roulette decay in `(0, 1]`.
    pub fn roulette_decay(mut self, d: f64) -> Self {
        self.inner = self.inner.roulette_decay(d);
        self
    }

    /// Chooses which objective's range is partitioned (default 0).
    pub fn slice_objective(mut self, k: usize) -> Self {
        self.inner = self.inner.slice_objective(k);
        self
    }

    /// Fixes the partitioned range a priori.
    pub fn slice_range(mut self, lo: f64, hi: f64) -> Self {
        self.inner = self.inner.slice_range(lo, hi);
        self
    }

    /// Switches between full SACGA and the pure-local baseline.
    pub fn mode(mut self, mode: CompetitionMode) -> Self {
        self.inner = self.inner.mode(mode);
        self
    }

    /// Sets the look-ahead window: the maximum number of offspring
    /// submitted but not yet merged (≥ 2; default: the population size).
    /// Offspring are produced in crossover pairs, so an odd window
    /// admits one extra in-flight candidate.
    ///
    /// Larger windows keep more evaluations in flight but breed from a
    /// staler selection basis — a window beyond the population size
    /// means some of a generation's offspring were bred before the
    /// previous generation merged. On constrained problems that lag
    /// slows phase I, so budget [`phase1_max`](Self::phase1_max)
    /// accordingly (as in the generational loop, a run whose partitions
    /// are all infeasible at the cap discards every partition).
    pub fn window(mut self, window: usize) -> Self {
        self.window = Some(window);
        self
    }

    /// Sets the merge quantum: how many completions are folded into the
    /// population per merge (≥ 1; default: a quarter of the population).
    /// Smaller quanta refresh the selection basis more often; a quantum
    /// of `population_size` merges a whole generation at once.
    pub fn quantum(mut self, quantum: usize) -> Self {
        self.quantum = Some(quantum);
        self
    }

    /// Replaces the whole engine-knob bundle at once (see
    /// [`EngineSetup`]); the individual knob methods below delegate to
    /// the same bundle.
    pub fn engine_setup(mut self, exec: EngineSetup) -> Self {
        self.inner = self.inner.engine_setup(exec);
        self
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.inner = self.inner.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.inner = self.inner.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.inner = self.inner.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy for candidate evaluation.
    pub fn fault_policy(mut self, fault: FaultPolicy) -> Self {
        self.inner = self.inner.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection with the given plan.
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.inner = self.inner.inject_faults(plan);
        self
    }

    /// Routes memoization through a cache pooled across concurrent runs
    /// (see [`SacgaConfigBuilder::shared_cache`]).
    pub fn shared_cache(mut self, cache: SharedCache<Evaluation>) -> Self {
        self.inner = self.inner.shared_cache(cache);
        self
    }

    /// Attaches an opt-in analytic surrogate screen (see
    /// [`SacgaConfigBuilder::surrogate_screen`]): screened runs are not
    /// byte-identical to unscreened ones.
    pub fn surrogate_screen(mut self, screen: SurrogateScreen<Evaluation>) -> Self {
        self.inner = self.inner.surrogate_screen(screen);
        self
    }

    /// Attaches a live [`engine::EngineMetrics`] bundle (see
    /// [`SacgaConfigBuilder::metrics`]).
    pub fn metrics(mut self, metrics: engine::EngineMetrics) -> Self {
        self.inner = self.inner.metrics(metrics);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Same as [`SacgaConfigBuilder::build`], plus
    /// [`OptimizeError::InvalidConfig`] for a window below 2 or a zero
    /// quantum.
    pub fn build(self) -> Result<SteadyConfig, OptimizeError> {
        let base = self.inner.build()?;
        let window = self.window.unwrap_or_else(|| base.population_size());
        let quantum = self
            .quantum
            .unwrap_or_else(|| (base.population_size() / 4).max(1));
        if window < 2 {
            return Err(OptimizeError::invalid_config(
                "window",
                "must be at least 2 (offspring are produced in pairs)",
            ));
        }
        if quantum == 0 {
            return Err(OptimizeError::invalid_config(
                "quantum",
                "must be at least 1",
            ));
        }
        Ok(SteadyConfig {
            base,
            window,
            quantum,
        })
    }
}

/// How a steady drive begins: a fresh seed or a stored checkpoint.
enum SteadyLaunch<'c> {
    Seed(u64),
    Checkpoint(&'c SteadyCheckpoint),
}

/// The steady-state SACGA optimizer.
///
/// # Examples
///
/// ```
/// use sacga::steady::{SteadyConfig, SteadySacga};
/// use moea::problems::Schaffer;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// let config = SteadyConfig::builder()
///     .population_size(24)
///     .generations(12)
///     .partitions(4)
///     .window(32)
///     .quantum(6)
///     .build()?;
/// let ga = SteadySacga::new(Schaffer::new(), config);
/// assert!(!ga.run_seeded(7)?.front.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SteadySacga<P: Problem> {
    problem: P,
    config: SteadyConfig,
}

impl<P: Problem> SteadySacga<P> {
    /// Creates an optimizer for `problem` with `config`.
    pub fn new(problem: P, config: SteadyConfig) -> Self {
        SteadySacga { problem, config }
    }

    /// Runs with a seeded RNG and no instrumentation (equivalent to
    /// [`Optimizer::run`]).
    ///
    /// # Errors
    ///
    /// Propagates problem-definition errors discovered at start-up and
    /// [`OptimizeError::EvaluationFailed`] when a candidate evaluation
    /// exhausts an aborting fault policy's retry budget.
    pub fn run_seeded(&self, seed: u64) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        self.drive(SteadyLaunch::Seed(seed), None, &mut NullSink)
            .map(expect_complete)
    }
}

impl<P: Problem + Sync> SteadySacga<P> {
    /// The shared run loop behind every public entry point. The whole
    /// drive executes inside one [`EvaluationSession`], so under a
    /// parallel evaluator the worker pool lives for the entire run.
    fn drive(
        &self,
        launch: SteadyLaunch<'_>,
        stop_after: Option<usize>,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SteadyCheckpoint>, OptimizeError> {
        let base = &self.config.base;
        let problem = &self.problem;
        if problem.num_objectives() == 0 {
            return Err(OptimizeError::invalid_problem(
                "problem must declare at least one objective",
            ));
        }
        match &launch {
            SteadyLaunch::Seed(_) => {
                if base.slice_objective >= problem.num_objectives() {
                    return Err(OptimizeError::invalid_config(
                        "slice_objective",
                        format!(
                            "objective {} out of range for a {}-objective problem",
                            base.slice_objective,
                            problem.num_objectives()
                        ),
                    ));
                }
            }
            SteadyLaunch::Checkpoint(cp) => {
                if cp.state.grid_objective >= problem.num_objectives() {
                    return Err(OptimizeError::invalid_checkpoint(format!(
                        "checkpoint slices objective {} but the problem declares {}",
                        cp.state.grid_objective,
                        problem.num_objectives()
                    )));
                }
            }
        }
        let mut exec = base.exec.build_engine(problem.cache_canonicalizer());
        if let SteadyLaunch::Checkpoint(cp) = &launch {
            exec.restore_stats(cp.state.stats.clone());
        }
        let bounds = problem.bounds().clone();
        let eval = |genes: &[f64]| problem.evaluate(genes);
        let batch_eval = |chunk: &[Vec<f64>]| problem.evaluate_all(chunk);
        exec.with_session(&eval, &batch_eval, |session| {
            self.run_loop(launch, stop_after, sink, session, bounds)
        })
    }

    /// The steady loop proper, generic over the session's evaluation
    /// closures.
    fn run_loop<F, B>(
        &self,
        launch: SteadyLaunch<'_>,
        stop_after: Option<usize>,
        sink: &mut dyn Sink,
        session: &mut EvaluationSession<'_, Evaluation, F, B>,
        bounds: Bounds,
    ) -> Result<RunStatus<SteadyCheckpoint>, OptimizeError>
    where
        F: Fn(&[f64]) -> Evaluation + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<Evaluation>,
    {
        let base = &self.config.base;
        let n = base.population_size;
        let fresh = matches!(launch, SteadyLaunch::Seed(_));
        let mut flow = match launch {
            SteadyLaunch::Seed(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let init_genes: Vec<Vec<f64>> =
                    (0..n).map(|_| random_vector(&mut rng, &bounds)).collect();
                for genes in &init_genes {
                    session.submit(genes);
                }
                let init_evals = session.drain_all()?;
                let initial: Vec<Individual> = init_genes
                    .into_iter()
                    .zip(init_evals)
                    .map(|(genes, ev)| Individual::new(genes, ev))
                    .collect();
                self.problem.check_evaluation(&initial[0].evaluation)?;
                let grid = match base.slice_range {
                    Some((lo, hi)) => {
                        PartitionGrid::new(base.slice_objective, lo, hi, base.partitions)?
                    }
                    None => PartitionGrid::from_population(
                        base.slice_objective,
                        &initial,
                        base.partitions,
                    )?,
                };
                let mut pop = PartitionedPopulation::distribute(grid, initial);
                pop.rank_locally();
                let flat_cache = pop.flatten();
                let feasible = flat_cache.iter().filter(|m| m.is_feasible()).count();
                let history = vec![GenerationStats {
                    generation: 0,
                    phase: 1,
                    temperature: f64::INFINITY,
                    promoted: 0,
                    feasible,
                    population: flat_cache.len(),
                }];
                Flow::new(&self.config, bounds, rng, pop, history, flat_cache)
            }
            SteadyLaunch::Checkpoint(cp) => {
                let grid = PartitionGrid::new(
                    cp.state.grid_objective,
                    cp.state.grid_lo,
                    cp.state.grid_hi,
                    cp.state.grid_partitions,
                )
                .map_err(|e| {
                    OptimizeError::invalid_checkpoint(format!("stored grid is invalid: {e}"))
                })?;
                let members: Vec<Vec<Individual>> = cp
                    .state
                    .partitions
                    .iter()
                    .map(|part| part.iter().map(SavedIndividual::to_individual).collect())
                    .collect();
                let pop = PartitionedPopulation::from_parts(grid, members, cp.state.alive.clone())?;
                let flat_cache = pop.flatten();
                let mut flow = Flow::new(
                    &self.config,
                    bounds,
                    StdRng::from_state(cp.state.rng),
                    pop,
                    cp.state.history.clone(),
                    flat_cache,
                );
                flow.gen = cp.state.gen;
                flow.phase1_done = cp.state.phase1_done;
                flow.gen_t = cp.state.gen_t;
                flow.merged = cp.state.gen * n;
                flow.produced = flow.merged + cp.pending.len();
                // Replay the look-ahead: primed completions occupy the
                // session's first submission indices with no stats
                // impact, exactly as the killed run left them.
                for p in &cp.pending {
                    session.prime(Evaluation::new(p.objectives.clone(), p.violations.clone()));
                    flow.queue.push_back(p.genes.clone());
                }
                if flow.phase1_done {
                    flow.solve_annealing()?;
                }
                flow
            }
        };
        if sink.wants(EventKind::StageTiming) {
            flow.timer.set_enabled(true);
        }
        flow.stats_mark = session.stats().clone();
        // Faults from the initial-population evaluation surface as
        // generation-0 events; a resumed segment replays completed
        // evaluations without re-reporting their faults.
        if fresh {
            flow.emit_boundary(session, sink);
        } else {
            let _ = session.take_fault_events();
        }
        let mut feasibility = (sink.wants(EventKind::PartitionFeasible) && !flow.phase1_done)
            .then(|| flow.partition_feasibility());

        loop {
            flow.maybe_transition(sink)?;
            if flow.phase1_done {
                feasibility = None;
            }
            if flow.gen >= flow.generations {
                return Ok(RunStatus::Complete(Box::new(flow.finish(session))));
            }
            if stop_after.is_some_and(|cap| flow.gen >= cap) {
                return flow.suspend(session, sink);
            }

            // --- produce and merge the next generation's window
            flow.begin_window();
            let target = (flow.gen + 1) * n;
            while flow.merged < target {
                flow.top_up(session);
                flow.merge(session, target)?;
                if flow.merged < target {
                    flow.refresh_selection();
                }
            }

            // --- generation boundary
            flow.gen += 1;
            flow.flat_cache = flow.pop.flatten();
            flow.record();
            if let Some(before) = &mut feasibility {
                let now = flow.partition_feasibility();
                for (p, (was, is)) in before.iter().zip(&now).enumerate() {
                    if !was && *is {
                        sink.record(&RunEvent::PartitionFeasible {
                            generation: flow.gen,
                            partition: p,
                        });
                    }
                }
                *before = now;
            }
            flow.emit_boundary(session, sink);
            if flow.phase2() && sink.wants(EventKind::Promotion) {
                sink.record(&RunEvent::Promotion {
                    generation: flow.gen,
                    promoted: flow.window_promoted,
                    candidates: flow.window_candidates,
                });
            }
        }
    }
}

impl<P: Problem + Sync> Optimizer for SteadySacga<P> {
    type Checkpoint = SteadyCheckpoint;

    fn algorithm(&self) -> &'static str {
        "steady"
    }

    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        self.drive(SteadyLaunch::Seed(seed), None, sink)
            .map(expect_complete)
    }

    fn run_until_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SteadyCheckpoint>, OptimizeError> {
        self.drive(SteadyLaunch::Seed(seed), Some(stop_after), sink)
    }

    fn resume_with(
        &self,
        checkpoint: &SteadyCheckpoint,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        self.drive(SteadyLaunch::Checkpoint(checkpoint), None, sink)
            .map(expect_complete)
    }

    fn resume_until_with(
        &self,
        checkpoint: &SteadyCheckpoint,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SteadyCheckpoint>, OptimizeError> {
        self.drive(SteadyLaunch::Checkpoint(checkpoint), Some(stop_after), sink)
    }
}

/// Mutable state of one steady drive. Everything algorithmic lives here;
/// the evaluation session is passed into each method so the borrow of
/// the engine stays outside.
struct Flow {
    // knobs (copied out of the config so methods need no config borrow)
    n: usize,
    generations: usize,
    phase1_max: usize,
    window: usize,
    quantum: usize,
    annealed: bool,
    n_superior: usize,
    shaper: ProbabilityShaper,
    bounds: Bounds,
    // algorithm state
    rng: StdRng,
    pop: PartitionedPopulation,
    gen: usize,
    merged: usize,
    produced: usize,
    phase1_done: bool,
    gen_t: usize,
    history: Vec<GenerationStats>,
    /// Genes of submitted-but-unmerged offspring, in submission order
    /// (parallel to the session's undrained indices).
    queue: VecDeque<Vec<f64>>,
    /// Current selection basis: the flattened population with the latest
    /// promotion revisions applied.
    selection: Vec<Individual>,
    /// Flattened population at the last generation boundary.
    flat_cache: Vec<Individual>,
    variation: Variation,
    roulette: RankRoulette,
    timer: StageTimer,
    stats_mark: EngineStats,
    policy: Option<PromotionPolicy>,
    schedule: Option<AnnealingSchedule>,
    window_temperature: f64,
    window_promoted: usize,
    window_candidates: usize,
}

impl Flow {
    fn new(
        config: &SteadyConfig,
        bounds: Bounds,
        rng: StdRng,
        pop: PartitionedPopulation,
        history: Vec<GenerationStats>,
        flat_cache: Vec<Individual>,
    ) -> Self {
        let base = &config.base;
        let variation = base
            .variation
            .unwrap_or_else(|| Variation::standard(bounds.len()));
        Flow {
            n: base.population_size,
            generations: base.generations,
            phase1_max: base.phase1_max,
            window: config.window,
            quantum: config.quantum,
            annealed: base.mode == CompetitionMode::Annealed,
            n_superior: base.n_superior,
            shaper: base.shaper,
            bounds,
            rng,
            pop,
            gen: 0,
            merged: 0,
            produced: 0,
            phase1_done: false,
            gen_t: 0,
            history,
            queue: VecDeque::new(),
            selection: Vec::new(),
            flat_cache,
            variation,
            roulette: RankRoulette::new(base.roulette_decay),
            timer: StageTimer::disabled(),
            stats_mark: EngineStats::default(),
            policy: None,
            schedule: None,
            window_temperature: f64::INFINITY,
            window_promoted: 0,
            window_candidates: 0,
        }
    }

    /// `true` once the annealed promotion machinery is active.
    fn phase2(&self) -> bool {
        self.annealed && self.policy.is_some()
    }

    fn capacity(&self) -> usize {
        let alive = (0..self.pop.partition_count())
            .filter(|&p| self.pop.is_alive(p))
            .count()
            .max(1);
        self.n.div_ceil(alive)
    }

    /// Which partitions currently hold a constraint-satisfying member.
    fn partition_feasibility(&self) -> Vec<bool> {
        (0..self.pop.partition_count())
            .map(|p| self.pop.is_alive(p) && self.pop.partition(p).iter().any(|m| m.is_feasible()))
            .collect()
    }

    /// Solves the phase-II promotion policy and cooling schedule from
    /// the recorded `gen_t` (a pure function of the config and `gen_t`,
    /// so fresh and resumed runs derive identical constants).
    fn solve_annealing(&mut self) -> Result<(), OptimizeError> {
        let span = self.generations.saturating_sub(self.gen_t);
        if self.annealed && span > 0 {
            let (policy, schedule) = self.shaper.solve(self.n_superior, span)?;
            self.policy = Some(policy);
            self.schedule = Some(schedule);
        }
        Ok(())
    }

    /// Phase-I boundary processing, mirroring the generational loop's
    /// exit condition: once every alive partition is feasible (or the
    /// cap or the budget is hit), discard infeasible partitions, record
    /// `gen_t`, and arm the annealing machinery.
    fn maybe_transition(&mut self, sink: &mut dyn Sink) -> Result<(), OptimizeError> {
        if self.phase1_done {
            return Ok(());
        }
        let done = self.gen >= self.generations
            || self.gen >= self.phase1_max
            || (self.pop.all_partitions_feasible() && self.gen > 0);
        if !done {
            return Ok(());
        }
        if !self.pop.all_partitions_feasible() {
            self.pop.discard_infeasible_partitions();
        }
        self.gen_t = self.gen;
        self.phase1_done = true;
        if self.annealed && self.gen_t < self.generations && sink.wants(EventKind::PhaseTransition)
        {
            sink.record(&RunEvent::PhaseTransition {
                generation: self.gen_t,
                phase_index: 0,
                partitions: self.pop.partition_count(),
                span: self.generations - self.gen_t,
            });
        }
        self.solve_annealing()
    }

    /// Opens the next generation's window: fixes its annealing
    /// temperature, resets the promotion counters, and refreshes the
    /// selection basis.
    fn begin_window(&mut self) {
        self.window_temperature = match (self.phase2(), &self.schedule) {
            (true, Some(schedule)) => {
                // The generation being produced is `gen + 1`; its
                // phase-II age runs 1..=span so the final generation
                // anneals at exactly T_A = 1, as in the generational
                // loop.
                schedule.temperature((self.gen + 1).saturating_sub(self.gen_t))
            }
            _ => f64::INFINITY,
        };
        self.window_promoted = 0;
        self.window_candidates = 0;
        self.refresh_selection();
    }

    /// Rebuilds the selection basis from the current population and, in
    /// phase II, runs the SA-gated promotion gamble on it: locally
    /// superior members, per partition, in random order; the `i`-th
    /// joins the global competition with `prob(i, T_A)`, and promoted
    /// members have their rank revised by a global non-dominated sort.
    fn refresh_selection(&mut self) {
        self.timer.start(Stage::Promotion);
        let mut flat = self.pop.flatten();
        if let (true, Some(policy)) = (self.phase2(), self.policy) {
            let temperature = self.window_temperature;
            let grid = *self.pop.grid();
            let mut per_partition: Vec<Vec<usize>> = vec![Vec::new(); grid.partition_count()];
            for (idx, ind) in flat.iter().enumerate() {
                if ind.rank == 0 {
                    per_partition[grid.partition_of(ind.objectives())].push(idx);
                }
            }
            self.window_candidates += per_partition.iter().map(Vec::len).sum::<usize>();
            let mut promoted: Vec<usize> = Vec::new();
            for locally_superior in per_partition.iter_mut() {
                locally_superior.shuffle(&mut self.rng);
                for (pos, &idx) in locally_superior.iter().enumerate() {
                    let prob = policy.probability(pos + 1, temperature);
                    if self.rng.gen::<f64>() < prob {
                        promoted.push(idx);
                    }
                }
            }
            if !promoted.is_empty() {
                let mut arena: Vec<Individual> =
                    promoted.iter().map(|&i| flat[i].clone()).collect();
                rank_and_crowd(&mut arena);
                for (slot, &i) in promoted.iter().enumerate() {
                    flat[i].rank = arena[slot].rank;
                }
            }
            self.window_promoted += promoted.len();
        }
        self.timer.stop();
        self.selection = flat;
    }

    /// Submits offspring pairs from the current selection basis until
    /// the look-ahead window is full or the run's production budget
    /// (`generations × population_size`) is spent.
    fn top_up<F, B>(&mut self, session: &mut EvaluationSession<'_, Evaluation, F, B>)
    where
        F: Fn(&[f64]) -> Evaluation + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<Evaluation>,
    {
        let budget = self.generations * self.n;
        self.timer.start(Stage::Variation);
        while self.produced < budget && self.produced - self.merged + 2 <= self.window {
            let (c1, c2) = if self.selection.is_empty() {
                // Degenerate: reseed randomly.
                (
                    random_vector(&mut self.rng, &self.bounds),
                    random_vector(&mut self.rng, &self.bounds),
                )
            } else {
                let pa = self.roulette.select(&mut self.rng, &self.selection);
                let pb = self.roulette.select(&mut self.rng, &self.selection);
                self.variation.offspring(
                    &mut self.rng,
                    &self.selection[pa].genes,
                    &self.selection[pb].genes,
                    &self.bounds,
                )
            };
            session.submit(&c1);
            self.queue.push_back(c1);
            session.submit(&c2);
            self.queue.push_back(c2);
            self.produced += 2;
        }
        self.timer.stop();
    }

    /// Drains the next merge quantum — in submission order, blocking
    /// only for the oldest outstanding completions — and folds it into
    /// the partitioned population: absorb, local elitist truncation,
    /// local re-ranking.
    fn merge<F, B>(
        &mut self,
        session: &mut EvaluationSession<'_, Evaluation, F, B>,
        target: usize,
    ) -> Result<(), OptimizeError>
    where
        F: Fn(&[f64]) -> Evaluation + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<Evaluation>,
    {
        let want = self
            .quantum
            .min(target - self.merged)
            .min(self.produced - self.merged);
        self.timer.start(Stage::Evaluation);
        let values = session.drain(want)?;
        self.timer.start(Stage::Selection);
        let offspring: Vec<Individual> = self
            .queue
            .drain(..want)
            .zip(values)
            .map(|(genes, ev)| Individual::new(genes, ev))
            .collect();
        let capacity = self.capacity();
        self.pop.absorb(offspring);
        self.pop.truncate_to(capacity, &mut self.rng);
        self.timer.start(Stage::Ranking);
        self.pop.rank_locally();
        self.timer.stop();
        self.merged += want;
        Ok(())
    }

    /// Appends the history row for the generation just completed.
    fn record(&mut self) {
        let feasible = self.flat_cache.iter().filter(|m| m.is_feasible()).count();
        let phase = if self.phase2() { 2 } else { 1 };
        self.history.push(GenerationStats {
            generation: self.gen,
            phase,
            temperature: self.window_temperature,
            promoted: self.window_promoted,
            feasible,
            population: self.flat_cache.len(),
        });
    }

    /// Drains resolved fault episodes and, for executed generations,
    /// emits the [`RunEvent::GenerationEnd`] (and stage-timing) records.
    fn emit_boundary<F, B>(
        &mut self,
        session: &mut EvaluationSession<'_, Evaluation, F, B>,
        sink: &mut dyn Sink,
    ) where
        F: Fn(&[f64]) -> Evaluation + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<Evaluation>,
    {
        let faults = session.take_fault_events();
        if sink.wants(EventKind::EvaluationFault) {
            for fault in &faults {
                sink.record(&RunEvent::EvaluationFault {
                    generation: self.gen,
                    kind: fault.kind,
                    failures: fault.failures,
                    resolution: fault.resolution,
                });
            }
        }
        if self.gen > 0 && sink.wants(EventKind::GenerationEnd) {
            let row = *self
                .history
                .last()
                .expect("every generation records a history row");
            let front = population_front(&self.flat_cache)
                .iter()
                .map(|m| m.objectives().to_vec())
                .collect();
            sink.record(&RunEvent::GenerationEnd {
                generation: self.gen,
                phase: row.phase,
                temperature: row.temperature,
                promoted: row.promoted,
                feasible: row.feasible,
                population: row.population,
                evaluations: session.stats().evaluations,
                front,
            });
        }
        if self.gen > 0 && self.timer.is_enabled() {
            let stages = self.timer.take();
            let delta = session.stats().since(&self.stats_mark);
            self.stats_mark = session.stats().clone();
            sink.record(&RunEvent::StageTiming {
                generation: self.gen,
                stages,
                candidates: delta.candidates,
                evaluations: delta.evaluations,
                cache_hits: delta.cache_hits,
            });
        }
    }

    /// Suspends at the current generation boundary. The look-ahead's
    /// completed evaluations are rescued into the checkpoint's pending
    /// list; the rescue drain's batch accounting is rolled back so a
    /// resumed run counts those merges exactly as an uninterrupted one
    /// would.
    fn suspend<F, B>(
        &mut self,
        session: &mut EvaluationSession<'_, Evaluation, F, B>,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SteadyCheckpoint>, OptimizeError>
    where
        F: Fn(&[f64]) -> Evaluation + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<Evaluation>,
    {
        if sink.wants(EventKind::CheckpointWritten) {
            sink.record(&RunEvent::CheckpointWritten {
                generation: self.gen,
            });
        }
        let pre_batches = session.stats().batches;
        let pre_max_batch = session.stats().max_batch;
        let values = session.drain_all()?;
        let mut stats = session.stats().clone();
        stats.batches = pre_batches;
        stats.max_batch = pre_max_batch;
        let pending: Vec<SavedIndividual> = self
            .queue
            .iter()
            .zip(values)
            .map(|(genes, ev)| {
                SavedIndividual::from_individual(&Individual::new(genes.clone(), ev))
            })
            .collect();
        let grid = *self.pop.grid();
        let (grid_lo, grid_hi) = grid.range();
        let partitions = (0..self.pop.partition_count())
            .map(|p| {
                self.pop
                    .partition(p)
                    .iter()
                    .map(SavedIndividual::from_individual)
                    .collect()
            })
            .collect();
        let alive = (0..self.pop.partition_count())
            .map(|p| self.pop.is_alive(p))
            .collect();
        let state = EngineState {
            rng: self.rng.state(),
            gen: self.gen,
            phase1_done: self.phase1_done,
            gen_t: self.gen_t,
            grid_objective: grid.objective(),
            grid_lo,
            grid_hi,
            grid_partitions: grid.partition_count(),
            alive,
            partitions,
            history: self.history.clone(),
            stats,
        };
        Ok(RunStatus::Suspended(Box::new(SteadyCheckpoint {
            state,
            pending,
        })))
    }

    /// Final global competition and result assembly.
    fn finish<F, B>(self, session: &mut EvaluationSession<'_, Evaluation, F, B>) -> RunOutcome
    where
        F: Fn(&[f64]) -> Evaluation + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<Evaluation>,
    {
        let mut population = self.pop.flatten();
        rank_and_crowd(&mut population);
        let front: Vec<Individual> = population
            .iter()
            .filter(|m| m.rank == 0 && m.is_feasible())
            .cloned()
            .collect();
        let stats = session.stats().clone();
        RunOutcome {
            population,
            front,
            evaluations: stats.evaluations as usize,
            generations: self.gen,
            gen_t: self.gen_t,
            history: self.history,
            phase_fronts: Vec::new(),
            migrations: 0,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sacga::Sacga;
    use crate::telemetry::MemorySink;
    use moea::problems::{NarrowingCorridor, Schaffer};

    fn config(generations: usize, partitions: usize) -> SteadyConfig {
        SteadyConfig::builder()
            .population_size(40)
            .generations(generations)
            .partitions(partitions)
            .build()
            .unwrap()
    }

    fn genes_of(pop: &[Individual]) -> Vec<Vec<f64>> {
        pop.iter().map(|m| m.genes.clone()).collect()
    }

    /// Strips wall-clock timing so stats can be compared across runs.
    fn scrub(mut stats: EngineStats) -> EngineStats {
        stats.eval_time = std::time::Duration::ZERO;
        stats.backoff_time = std::time::Duration::ZERO;
        stats
    }

    #[test]
    fn builder_validates_window_and_quantum() {
        assert!(SteadyConfig::builder().window(1).build().is_err());
        assert!(SteadyConfig::builder().quantum(0).build().is_err());
        assert!(SteadyConfig::builder().population_size(3).build().is_err());
        let cfg = SteadyConfig::builder().population_size(40).build().unwrap();
        assert_eq!(cfg.window(), 40, "window defaults to the population");
        assert_eq!(cfg.quantum(), 10, "quantum defaults to a quarter");
    }

    #[test]
    fn runs_deterministically_per_seed() {
        let cfg = config(20, 5);
        let a = SteadySacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(5)
            .unwrap();
        let b = SteadySacga::new(Schaffer::new(), cfg)
            .run_seeded(5)
            .unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
        assert_eq!(genes_of(&a.population), genes_of(&b.population));
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn window_equal_population_reproduces_generational_sacga() {
        // With window == quantum == population_size the steady loop
        // degenerates to the generational schedule: same RNG draw order,
        // same merges, same accounting. The generational barrier is a
        // special case of the window.
        let steady_cfg = SteadyConfig::builder()
            .population_size(40)
            .generations(25)
            .partitions(5)
            .window(40)
            .quantum(40)
            .build()
            .unwrap();
        let gen_cfg = SacgaConfig::builder()
            .population_size(40)
            .generations(25)
            .partitions(5)
            .build()
            .unwrap();
        let steady = SteadySacga::new(Schaffer::new(), steady_cfg)
            .run_seeded(11)
            .unwrap();
        let generational = Sacga::new(Schaffer::new(), gen_cfg).run_seeded(11).unwrap();
        assert_eq!(steady.front_objectives(), generational.front_objectives());
        assert_eq!(
            genes_of(&steady.population),
            genes_of(&generational.population)
        );
        assert_eq!(steady.history, generational.history);
        assert_eq!(steady.gen_t, generational.gen_t);
        assert_eq!(scrub(steady.stats), scrub(generational.stats));
    }

    #[test]
    fn merge_order_is_bit_identical_across_worker_counts() {
        let make = |threads: usize| {
            let mut b = SteadyConfig::builder()
                .population_size(32)
                .generations(15)
                .partitions(4)
                .window(48)
                .quantum(8);
            if threads > 0 {
                b = b.evaluator(EvaluatorKind::ParallelWith(threads));
            }
            SteadySacga::new(Schaffer::new(), b.build().unwrap())
        };
        let serial = make(0).run_seeded(3).unwrap();
        for threads in [2, 4] {
            let parallel = make(threads).run_seeded(3).unwrap();
            assert_eq!(
                serial.front_objectives(),
                parallel.front_objectives(),
                "{threads} workers changed the front"
            );
            assert_eq!(
                genes_of(&serial.population),
                genes_of(&parallel.population),
                "{threads} workers changed the population"
            );
            assert_eq!(serial.history, parallel.history);
            assert_eq!(scrub(serial.stats.clone()), scrub(parallel.stats.clone()));
        }
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        // window > quantum keeps the look-ahead non-empty at most
        // boundaries, so suspension exercises the pending rescue.
        let cfg = SteadyConfig::builder()
            .population_size(24)
            .generations(20)
            .partitions(4)
            .window(36)
            .quantum(6)
            .build()
            .unwrap();
        let full = SteadySacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(5)
            .unwrap();
        for stop in [0usize, 1, 2, 9, 19] {
            let ga = SteadySacga::new(Schaffer::new(), cfg.clone());
            let cp = match ga.run_until(5, stop).unwrap() {
                RunStatus::Suspended(cp) => cp,
                RunStatus::Complete(_) => panic!("run should suspend at gen {stop}"),
            };
            assert_eq!(cp.state.gen, stop);
            if stop > 0 {
                assert!(
                    !cp.pending.is_empty(),
                    "look-ahead should be in flight at gen {stop}"
                );
            }
            let resumed = ga.resume(&cp).unwrap();
            assert_eq!(resumed.front_objectives(), full.front_objectives());
            assert_eq!(genes_of(&resumed.population), genes_of(&full.population));
            assert_eq!(resumed.history, full.history);
            assert_eq!(resumed.gen_t, full.gen_t);
            assert_eq!(scrub(resumed.stats), scrub(full.stats.clone()));
        }
    }

    #[test]
    fn kill_and_resume_is_bit_identical_under_workers() {
        let cfg = SteadyConfig::builder()
            .population_size(24)
            .generations(14)
            .partitions(4)
            .window(32)
            .quantum(5)
            .evaluator(EvaluatorKind::ParallelWith(4))
            .build()
            .unwrap();
        let full = SteadySacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(8)
            .unwrap();
        let ga = SteadySacga::new(Schaffer::new(), cfg);
        let cp = match ga.run_until(8, 6).unwrap() {
            RunStatus::Suspended(cp) => cp,
            RunStatus::Complete(_) => panic!("run should suspend"),
        };
        // Round-trip through the text form, as a kill/restart would.
        let restored = SteadyCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(*cp, restored);
        let resumed = ga.resume(&restored).unwrap();
        assert_eq!(resumed.front_objectives(), full.front_objectives());
        assert_eq!(genes_of(&resumed.population), genes_of(&full.population));
        assert_eq!(scrub(resumed.stats), scrub(full.stats));
    }

    #[test]
    fn resume_until_chains_across_checkpoints() {
        let cfg = SteadyConfig::builder()
            .population_size(24)
            .generations(18)
            .partitions(4)
            .window(30)
            .quantum(7)
            .build()
            .unwrap();
        let full = SteadySacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(3)
            .unwrap();
        let ga = SteadySacga::new(Schaffer::new(), cfg);
        let mut run = ga.run_until(3, 4).unwrap();
        let mut hops = 0;
        let result = loop {
            match run {
                RunStatus::Complete(r) => break *r,
                RunStatus::Suspended(cp) => {
                    hops += 1;
                    run = ga.resume_until(&cp, cp.state.gen + 4).unwrap();
                }
            }
        };
        assert!(hops >= 3, "expected several suspensions, got {hops}");
        assert_eq!(result.front_objectives(), full.front_objectives());
        assert_eq!(result.history, full.history);
    }

    #[test]
    fn accounting_identity_holds() {
        let cfg = config(15, 4);
        let r = SteadySacga::new(Schaffer::new(), cfg)
            .run_seeded(9)
            .unwrap();
        let s = &r.stats;
        assert_eq!(s.candidates, s.evaluations + s.cache_hits + s.screened);
        // init + one offspring batch per generation, no cache configured
        assert_eq!(r.evaluations, 40 + 15 * 40);
    }

    #[test]
    fn events_mirror_the_generational_stream() {
        let cfg = config(12, 4);
        let mut sink = MemorySink::new();
        let r = SteadySacga::new(Schaffer::new(), cfg)
            .run_with(1, &mut sink)
            .unwrap();
        let gens: Vec<usize> = sink
            .events()
            .iter()
            .filter(|e| e.kind() == EventKind::GenerationEnd)
            .map(|e| e.generation())
            .collect();
        assert_eq!(gens, (1..=12).collect::<Vec<_>>());
        let transitions = sink
            .events()
            .iter()
            .filter(|e| e.kind() == EventKind::PhaseTransition)
            .count();
        assert_eq!(transitions, 1);
        let promotions = sink
            .events()
            .iter()
            .filter(|e| e.kind() == EventKind::Promotion)
            .count();
        assert_eq!(promotions, r.generations - r.gen_t);
        // Sinks never consume RNG: the bare run is bit-identical.
        let bare = SteadySacga::new(Schaffer::new(), config(12, 4))
            .run_seeded(1)
            .unwrap();
        assert_eq!(bare.front_objectives(), r.front_objectives());
        assert_eq!(bare.history, r.history);
    }

    #[test]
    fn constrained_problem_transitions_and_converges() {
        let cfg = SteadyConfig::builder()
            .population_size(30)
            .generations(25)
            .partitions(8)
            .phase1_max(6)
            .slice_range(-1.0, 0.0)
            .window(40)
            .quantum(6)
            .build()
            .unwrap();
        let r = SteadySacga::new(NarrowingCorridor::new(0.05), cfg)
            .run_seeded(21)
            .unwrap();
        assert!(r.gen_t <= 6);
        assert_eq!(r.generations, 25);
        assert!(!r.front.is_empty());
        assert!(r.front.iter().all(|m| m.rank == 0 && m.is_feasible()));
    }

    #[test]
    fn fault_injected_run_matches_fault_free_front() {
        let base = SteadyConfig::builder()
            .population_size(24)
            .generations(12)
            .partitions(4)
            .window(30)
            .quantum(6);
        let clean_cfg = base.clone().build().unwrap();
        let faulty_cfg = base
            .fault_policy(FaultPolicy::tolerant(3))
            .inject_faults(FaultPlan::seeded(11).panics(0.05).nonfinite(0.05))
            .build()
            .unwrap();
        let clean = SteadySacga::new(Schaffer::new(), clean_cfg)
            .run_seeded(7)
            .unwrap();
        let faulty = SteadySacga::new(Schaffer::new(), faulty_cfg)
            .run_seeded(7)
            .unwrap();
        assert_eq!(clean.front_objectives(), faulty.front_objectives());
        assert!(faulty.stats.failures > 0);
        assert_eq!(faulty.stats.recovered, faulty.stats.failures);
    }

    #[test]
    fn local_only_mode_never_promotes() {
        let cfg = SteadyConfig::builder()
            .population_size(24)
            .generations(15)
            .partitions(4)
            .mode(CompetitionMode::LocalOnly)
            .window(32)
            .quantum(6)
            .build()
            .unwrap();
        let r = SteadySacga::new(Schaffer::new(), cfg)
            .run_seeded(8)
            .unwrap();
        assert!(r.history.iter().all(|h| h.promoted == 0 && h.phase == 1));
        assert!(!r.front.is_empty());
    }

    #[test]
    fn wrong_checkpoint_is_rejected() {
        let cfg = config(10, 4);
        let ga = SteadySacga::new(Schaffer::new(), cfg);
        let text = match ga.run_until(1, 3).unwrap() {
            RunStatus::Suspended(cp) => cp.to_text(),
            RunStatus::Complete(_) => panic!("run should suspend"),
        };
        // A SACGA parser must reject a steady checkpoint and vice versa.
        assert!(crate::checkpoint::SacgaCheckpoint::from_text(&text).is_err());
        assert_eq!(ga.algorithm(), "steady");
    }
}
