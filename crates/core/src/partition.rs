//! Objective-space partitioning: `m` equal, disjoint slices of one
//! objective's range, inducing local competitions (Sec. 4.3 of the paper).

use moea::individual::Individual;
use moea::sorting::{assign_crowding, fast_non_dominated_sort};
use moea::OptimizeError;

/// An `m`-way equal partition of objective `objective`'s range
/// `[lo, hi]`.
///
/// In the paper's integrator problem the partitioning is "induced by the
/// division of the range space of the Load Capacitance"; the grid is
/// generic over which objective is sliced. Values outside `[lo, hi]` clamp
/// to the first/last slice, so every individual always has a partition.
///
/// # Examples
///
/// ```
/// use sacga::PartitionGrid;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// let grid = PartitionGrid::new(0, 0.0, 5.0, 8)?;
/// assert_eq!(grid.partition_count(), 8);
/// assert_eq!(grid.partition_of(&[0.1, 9.9]), 0);
/// assert_eq!(grid.partition_of(&[4.99, 0.0]), 7);
/// assert_eq!(grid.partition_of(&[-3.0, 0.0]), 0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionGrid {
    objective: usize,
    lo: f64,
    hi: f64,
    m: usize,
}

impl PartitionGrid {
    /// Creates a grid slicing objective `objective` over `[lo, hi]` into
    /// `m` equal partitions.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when `m == 0`, the range is
    /// degenerate, or not finite.
    pub fn new(objective: usize, lo: f64, hi: f64, m: usize) -> Result<Self, OptimizeError> {
        if m == 0 {
            return Err(OptimizeError::invalid_config(
                "partitions",
                "must be at least 1",
            ));
        }
        if lo >= hi || !lo.is_finite() || !hi.is_finite() {
            return Err(OptimizeError::invalid_config(
                "partition_range",
                format!("need finite lo < hi, got [{lo}, {hi}]"),
            ));
        }
        Ok(PartitionGrid {
            objective,
            lo,
            hi,
            m,
        })
    }

    /// Which objective index is sliced.
    pub fn objective(&self) -> usize {
        self.objective
    }

    /// Number of partitions `m`.
    pub fn partition_count(&self) -> usize {
        self.m
    }

    /// The sliced range `(lo, hi)`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The sub-range `[lo_p, hi_p)` covered by partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= partition_count()`.
    pub fn slice_range(&self, p: usize) -> (f64, f64) {
        assert!(p < self.m, "partition index out of range");
        let width = (self.hi - self.lo) / self.m as f64;
        (self.lo + p as f64 * width, self.lo + (p + 1) as f64 * width)
    }

    /// Partition index of an objective vector (clamped into range).
    pub fn partition_of(&self, objectives: &[f64]) -> usize {
        let v = objectives[self.objective];
        if !v.is_finite() || v <= self.lo {
            return 0;
        }
        if v >= self.hi {
            return self.m - 1;
        }
        let width = (self.hi - self.lo) / self.m as f64;
        (((v - self.lo) / width) as usize).min(self.m - 1)
    }

    /// A grid with a different partition count over the same range
    /// (MESACGA's expanding partitions).
    pub fn with_partitions(&self, m: usize) -> Result<Self, OptimizeError> {
        PartitionGrid::new(self.objective, self.lo, self.hi, m)
    }

    /// Derives a grid from a population's objective range when no a-priori
    /// range is known: `[min, max]` of the sliced objective, widened by 5 %
    /// on both sides.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when the population is
    /// empty or the objective has no finite spread.
    pub fn from_population(
        objective: usize,
        pop: &[Individual],
        m: usize,
    ) -> Result<Self, OptimizeError> {
        let values: Vec<f64> = pop
            .iter()
            .map(|i| i.objective(objective))
            .filter(|v| v.is_finite())
            .collect();
        if values.is_empty() {
            return Err(OptimizeError::invalid_config(
                "partition_range",
                "population has no finite values for the sliced objective",
            ));
        }
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let pad = 0.05 * (hi - lo).max(1e-12) + 1e-12;
        PartitionGrid::new(objective, lo - pad, hi + pad, m)
    }
}

/// A population organized into the partitions of a [`PartitionGrid`]:
/// `members[p]` holds partition `p`'s individuals.
#[derive(Debug, Clone)]
pub struct PartitionedPopulation {
    grid: PartitionGrid,
    members: Vec<Vec<Individual>>,
    /// Partitions discarded for infeasibility at the end of phase I.
    alive: Vec<bool>,
}

impl PartitionedPopulation {
    /// Distributes `individuals` over the grid's partitions.
    pub fn distribute(grid: PartitionGrid, individuals: Vec<Individual>) -> Self {
        let mut members: Vec<Vec<Individual>> =
            (0..grid.partition_count()).map(|_| Vec::new()).collect();
        for ind in individuals {
            let p = grid.partition_of(ind.objectives());
            members[p].push(ind);
        }
        let alive = vec![true; grid.partition_count()];
        PartitionedPopulation {
            grid,
            members,
            alive,
        }
    }

    /// Reassembles a population from checkpointed parts, trusting the
    /// stored partition assignment (a bit-exact resume must not re-derive
    /// it, and promoted members may carry revised ranks).
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidCheckpoint`] when the member or
    /// alive vectors disagree with the grid's partition count.
    pub(crate) fn from_parts(
        grid: PartitionGrid,
        members: Vec<Vec<Individual>>,
        alive: Vec<bool>,
    ) -> Result<Self, OptimizeError> {
        if members.len() != grid.partition_count() || alive.len() != grid.partition_count() {
            return Err(OptimizeError::invalid_checkpoint(format!(
                "expected {} partitions, got {} member lists and {} alive flags",
                grid.partition_count(),
                members.len(),
                alive.len()
            )));
        }
        Ok(PartitionedPopulation {
            grid,
            members,
            alive,
        })
    }

    /// The grid in use.
    pub fn grid(&self) -> &PartitionGrid {
        &self.grid
    }

    /// Number of partitions (alive or not).
    pub fn partition_count(&self) -> usize {
        self.members.len()
    }

    /// Members of partition `p`.
    pub fn partition(&self, p: usize) -> &[Individual] {
        &self.members[p]
    }

    /// `true` when partition `p` has not been discarded.
    pub fn is_alive(&self, p: usize) -> bool {
        self.alive[p]
    }

    /// Total population across alive partitions.
    pub fn len(&self) -> usize {
        self.members
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(m, _)| m.len())
            .sum()
    }

    /// `true` when no alive partition holds members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when every alive partition holds at least one feasible
    /// member — the phase-I termination condition.
    pub fn all_partitions_feasible(&self) -> bool {
        self.members
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .all(|(m, _)| m.iter().any(|i| i.is_feasible()))
    }

    /// Discards (kills) every alive partition without a feasible member —
    /// the phase-I cap action. Returns how many were discarded.
    pub fn discard_infeasible_partitions(&mut self) -> usize {
        let mut discarded = 0;
        for p in 0..self.members.len() {
            if self.alive[p] && !self.members[p].iter().any(|i| i.is_feasible()) {
                self.alive[p] = false;
                self.members[p].clear();
                discarded += 1;
            }
        }
        discarded
    }

    /// Runs a **local competition** in every alive partition: constrained
    /// non-dominated sort + crowding within the partition. Each member's
    /// `rank`/`crowding` fields are rewritten with its *local* values.
    pub fn rank_locally(&mut self) {
        for (p, part) in self.members.iter_mut().enumerate() {
            if !self.alive[p] || part.is_empty() {
                continue;
            }
            let fronts = fast_non_dominated_sort(part);
            for front in fronts.iter() {
                assign_crowding(part, front);
            }
        }
    }

    /// Routes offspring into partitions. Offspring landing in a discarded
    /// partition are redirected to the nearest alive one.
    pub fn absorb(&mut self, offspring: Vec<Individual>) {
        for ind in offspring {
            let mut p = self.grid.partition_of(ind.objectives());
            if !self.alive[p] {
                if let Some(q) = self.nearest_alive(p) {
                    p = q;
                } else {
                    continue; // no alive partition at all
                }
            }
            self.members[p].push(ind);
        }
    }

    /// Truncates each alive partition to `capacity` members by local rank
    /// with *random* tie-breaking — the per-partition elitist "Local
    /// Selection" of the paper.
    ///
    /// Deliberately **no crowding distance**: the paper's framework
    /// maintains diversity through the partitioning itself, not through a
    /// density estimator (crowding is never mentioned in its algorithm).
    /// This faithfulness matters: with crowding-based truncation even a
    /// single-partition "purely global" run keeps a well-spread front and
    /// the diversity pathology the paper reports never materializes.
    pub fn truncate_to<R: rand::Rng + ?Sized>(&mut self, capacity: usize, rng: &mut R) {
        for p in 0..self.members.len() {
            if !self.alive[p] || self.members[p].len() <= capacity {
                continue;
            }
            let part = &mut self.members[p];
            let fronts = fast_non_dominated_sort(part);
            for front in fronts.iter() {
                assign_crowding(part, front);
            }
            // Random order, then stable sort by rank: equal-rank survival
            // is a fair draw.
            use rand::seq::SliceRandom;
            part.shuffle(rng);
            part.sort_by_key(|ind| ind.rank);
            part.truncate(capacity);
        }
    }

    /// Flattens alive partitions into one vector (cloned).
    pub fn flatten(&self) -> Vec<Individual> {
        self.members
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .flat_map(|(m, _)| m.iter().cloned())
            .collect()
    }

    /// Re-distributes all members over a new grid (MESACGA phase change).
    /// Dead partitions stay dead only in the old geometry; the new grid
    /// starts with every partition alive.
    pub fn regrid(self, grid: PartitionGrid) -> Self {
        let all = self.flatten();
        PartitionedPopulation::distribute(grid, all)
    }

    fn nearest_alive(&self, p: usize) -> Option<usize> {
        (0..self.members.len())
            .filter(|&q| self.alive[q])
            .min_by_key(|&q| q.abs_diff(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::evaluation::Evaluation;

    fn ind(objs: Vec<f64>, feasible: bool) -> Individual {
        let cons = if feasible { vec![0.0] } else { vec![1.0] };
        Individual::new(vec![0.0], Evaluation::new(objs, cons))
    }

    #[test]
    fn grid_rejects_bad_configs() {
        assert!(PartitionGrid::new(0, 0.0, 1.0, 0).is_err());
        assert!(PartitionGrid::new(0, 1.0, 1.0, 4).is_err());
        assert!(PartitionGrid::new(0, f64::NAN, 1.0, 4).is_err());
    }

    #[test]
    fn partition_of_covers_range_uniformly() {
        let g = PartitionGrid::new(0, 0.0, 10.0, 5).unwrap();
        assert_eq!(g.partition_of(&[0.0]), 0);
        assert_eq!(g.partition_of(&[1.9]), 0);
        assert_eq!(g.partition_of(&[2.0]), 1);
        assert_eq!(g.partition_of(&[9.99]), 4);
        assert_eq!(g.partition_of(&[10.0]), 4);
        assert_eq!(g.partition_of(&[999.0]), 4);
        assert_eq!(g.partition_of(&[-5.0]), 0);
        assert_eq!(g.partition_of(&[f64::NAN]), 0);
    }

    #[test]
    fn slice_ranges_tile_the_interval() {
        let g = PartitionGrid::new(0, -1.0, 1.0, 4).unwrap();
        let mut edge = -1.0;
        for p in 0..4 {
            let (lo, hi) = g.slice_range(p);
            assert!((lo - edge).abs() < 1e-12);
            edge = hi;
        }
        assert!((edge - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_population_covers_extremes() {
        let pop = vec![ind(vec![2.0, 0.0], true), ind(vec![8.0, 0.0], true)];
        let g = PartitionGrid::from_population(0, &pop, 3).unwrap();
        assert_eq!(g.partition_of(&[2.0, 0.0]), 0);
        assert_eq!(g.partition_of(&[8.0, 0.0]), 2);
    }

    #[test]
    fn from_population_rejects_empty() {
        assert!(PartitionGrid::from_population(0, &[], 3).is_err());
    }

    #[test]
    fn distribute_routes_by_objective() {
        let g = PartitionGrid::new(0, 0.0, 4.0, 4).unwrap();
        let pop = vec![
            ind(vec![0.5], true),
            ind(vec![1.5], true),
            ind(vec![1.7], true),
            ind(vec![3.9], true),
        ];
        let pp = PartitionedPopulation::distribute(g, pop);
        assert_eq!(pp.partition(0).len(), 1);
        assert_eq!(pp.partition(1).len(), 2);
        assert_eq!(pp.partition(2).len(), 0);
        assert_eq!(pp.partition(3).len(), 1);
        assert_eq!(pp.len(), 4);
    }

    #[test]
    fn feasibility_condition_and_discard() {
        let g = PartitionGrid::new(0, 0.0, 2.0, 2).unwrap();
        let pop = vec![ind(vec![0.5], true), ind(vec![1.5], false)];
        let mut pp = PartitionedPopulation::distribute(g, pop);
        assert!(!pp.all_partitions_feasible());
        let discarded = pp.discard_infeasible_partitions();
        assert_eq!(discarded, 1);
        assert!(!pp.is_alive(1));
        assert!(pp.all_partitions_feasible());
        assert_eq!(pp.len(), 1);
    }

    #[test]
    fn absorb_redirects_from_dead_partitions() {
        let g = PartitionGrid::new(0, 0.0, 2.0, 2).unwrap();
        let pop = vec![ind(vec![0.5], true), ind(vec![1.5], false)];
        let mut pp = PartitionedPopulation::distribute(g, pop);
        pp.discard_infeasible_partitions();
        pp.absorb(vec![ind(vec![1.9], true)]);
        // landed in dead partition 1 -> redirected to 0
        assert_eq!(pp.partition(0).len(), 2);
        assert!(pp.partition(1).is_empty());
    }

    #[test]
    fn local_ranking_is_per_partition() {
        let g = PartitionGrid::new(0, 0.0, 4.0, 2).unwrap();
        // Partition 0: (0.5, 5) dominated by nothing in its slice even
        // though (2.5, 1) would dominate it globally... (0.5,5) vs (2.5,1):
        // neither dominates (f0 smaller, f1 larger). Use a clear case:
        let pop = vec![
            ind(vec![0.5, 5.0], true),
            ind(vec![0.6, 6.0], true), // dominated within partition 0
            ind(vec![2.5, 1.0], true),
        ];
        let mut pp = PartitionedPopulation::distribute(g, pop);
        pp.rank_locally();
        let p0 = pp.partition(0);
        let ranks: Vec<usize> = p0.iter().map(|i| i.rank).collect();
        assert!(ranks.contains(&0) && ranks.contains(&1));
        assert_eq!(pp.partition(1)[0].rank, 0);
    }

    #[test]
    fn truncate_respects_capacity_and_elitism() {
        let g = PartitionGrid::new(0, 0.0, 1.0, 1).unwrap();
        let pop = vec![
            ind(vec![0.1, 1.0], true),
            ind(vec![0.2, 0.5], true),
            ind(vec![0.3, 2.0], true), // dominated by (0.1, 1.0)? f0: 0.1<0.3, f1: 1<2 -> yes
            ind(vec![0.15, 3.0], true),
        ];
        let mut pp = PartitionedPopulation::distribute(g, pop);
        use rand::SeedableRng as _;
        pp.truncate_to(2, &mut rand::rngs::StdRng::seed_from_u64(1));
        assert_eq!(pp.partition(0).len(), 2);
        // the two survivors must include the non-dominated pair
        let survivors: Vec<Vec<f64>> = pp
            .partition(0)
            .iter()
            .map(|i| i.objectives().to_vec())
            .collect();
        assert!(survivors.contains(&vec![0.1, 1.0]));
        assert!(survivors.contains(&vec![0.2, 0.5]));
    }

    #[test]
    fn regrid_preserves_members() {
        let g = PartitionGrid::new(0, 0.0, 4.0, 4).unwrap();
        let pop = vec![ind(vec![0.5], true), ind(vec![3.5], true)];
        let pp = PartitionedPopulation::distribute(g, pop);
        let regridded = pp.regrid(g.with_partitions(2).unwrap());
        assert_eq!(regridded.partition_count(), 2);
        assert_eq!(regridded.len(), 2);
        assert_eq!(regridded.partition(0).len(), 1);
        assert_eq!(regridded.partition(1).len(), 1);
    }

    #[test]
    fn flatten_skips_dead_partitions() {
        let g = PartitionGrid::new(0, 0.0, 2.0, 2).unwrap();
        let pop = vec![ind(vec![0.5], true), ind(vec![1.5], false)];
        let mut pp = PartitionedPopulation::distribute(g, pop);
        pp.discard_infeasible_partitions();
        assert_eq!(pp.flatten().len(), 1);
    }
}
