//! One-stop imports for driving any of the seven optimization loops
//! through the unified [`Optimizer`] API with instrumentation attached.
//!
//! ```
//! use sacga::prelude::*;
//! use moea::problems::Schaffer;
//!
//! # fn main() -> Result<(), moea::OptimizeError> {
//! let config = MesacgaConfig::builder()
//!     .population_size(40)
//!     .phase1_max(5)
//!     .phases(vec![PhaseSpec::new(4, 10), PhaseSpec::new(1, 10)])
//!     .build()?;
//! let mut sink = MemorySink::new();
//! let outcome = Mesacga::new(Schaffer::new(), config).run_with(11, &mut sink)?;
//! assert!(!outcome.front.is_empty());
//! assert!(sink.events().iter().any(|e| e.kind() == EventKind::PhaseTransition));
//! # Ok(())
//! # }
//! ```

pub use crate::cellular::{CellularConfig, CellularConfigBuilder, CellularGa};
pub use crate::checkpoint::{
    CellularCheckpoint, EngineState, MesacgaCheckpoint, SacgaCheckpoint, SavedIndividual,
    SteadyCheckpoint,
};
pub use crate::island::{IslandConfig, IslandGa};
pub use crate::local::{LocalCompetitionGa, LocalCompetitionGaBuilder};
pub use crate::mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
pub use crate::sacga::{CompetitionMode, Sacga, SacgaConfig};
pub use crate::steady::{SteadyConfig, SteadyConfigBuilder, SteadySacga};
pub use crate::telemetry::{
    DynOptimizer, EventKind, EventParseError, FaultRateAlarm, HealthWarning, InfeasibilityAlarm,
    JsonlSink, MemorySink, MetricsRow, MetricsSink, NoCheckpoint, NullSink, Optimizer, RunEvent,
    Sink, StallDetector, Tee, EVENT_SCHEMA_VERSION,
};
pub use crate::topology::Topology;
pub use moea::nsga2::Nsga2;
pub use moea::{GenerationStats, OptimizeError, RunOutcome, RunStatus};
