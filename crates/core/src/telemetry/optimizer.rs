//! The unified run API implemented by every optimizer in the workspace.

use moea::nsga2::Nsga2;
use moea::problem::Problem;
use moea::{OptimizeError, RunOutcome, RunStatus};

use super::event::{EventKind, RunEvent};
use super::sink::{NullSink, Sink};

/// The checkpoint type of algorithms that cannot suspend (NSGA-II, the
/// island model). Uninhabited: a `RunStatus<NoCheckpoint>` is provably
/// always `Complete`, and `resume` on such algorithms is statically
/// uncallable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoCheckpoint {}

/// One run API for all five optimization loops (NSGA-II/TPG, local
/// competition, SACGA, MESACGA, island model).
///
/// Every entry point exists in two forms: a `*_with` method taking a
/// `&mut dyn Sink` that receives the structured [`RunEvent`] stream,
/// and a sink-free convenience wrapper. Event emission never consumes
/// RNG, so for a given seed the returned [`RunOutcome`] is bit-identical
/// whichever form is used.
///
/// Bounded runs (`run_until*` / `resume*`) are supported only by the
/// checkpointable algorithms (SACGA, MESACGA, local competition); the
/// others set [`Checkpoint`](Optimizer::Checkpoint) to [`NoCheckpoint`]
/// and reject `run_until` with
/// [`OptimizeError::InvalidConfig`].
pub trait Optimizer {
    /// Suspension checkpoint produced by bounded runs ([`NoCheckpoint`]
    /// for algorithms that cannot suspend).
    type Checkpoint;

    /// Stable lower-case identifier of the algorithm (e.g. `"sacga"`),
    /// for labeling streams and tables.
    fn algorithm(&self) -> &'static str;

    /// Runs to completion, emitting events into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates problem-definition errors discovered at start-up and
    /// [`OptimizeError::EvaluationFailed`] when a candidate evaluation
    /// exhausts an aborting fault policy's retry budget.
    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError>;

    /// Runs from `seed`, suspending once `stop_after` generations have
    /// completed, emitting events into `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`run_with`](Optimizer::run_with), plus
    /// [`OptimizeError::InvalidConfig`] on algorithms that do not
    /// support suspension.
    fn run_until_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<Self::Checkpoint>, OptimizeError>;

    /// Resumes a suspended run to completion, emitting events into
    /// `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`run_with`](Optimizer::run_with), plus
    /// [`OptimizeError::InvalidCheckpoint`] when the checkpoint is
    /// inconsistent with this configuration.
    fn resume_with(
        &self,
        checkpoint: &Self::Checkpoint,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError>;

    /// Resumes a suspended run, suspending again once `stop_after`
    /// total generations have completed, emitting events into `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`resume_with`](Optimizer::resume_with).
    fn resume_until_with(
        &self,
        checkpoint: &Self::Checkpoint,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<Self::Checkpoint>, OptimizeError>;

    /// Runs to completion without instrumentation.
    ///
    /// # Errors
    ///
    /// Same as [`run_with`](Optimizer::run_with).
    fn run(&self, seed: u64) -> Result<RunOutcome, OptimizeError> {
        self.run_with(seed, &mut NullSink)
    }

    /// Runs from `seed`, suspending once `stop_after` generations have
    /// completed.
    ///
    /// # Errors
    ///
    /// Same as [`run_until_with`](Optimizer::run_until_with).
    fn run_until(
        &self,
        seed: u64,
        stop_after: usize,
    ) -> Result<RunStatus<Self::Checkpoint>, OptimizeError> {
        self.run_until_with(seed, stop_after, &mut NullSink)
    }

    /// Resumes a suspended run to completion.
    ///
    /// # Errors
    ///
    /// Same as [`resume_with`](Optimizer::resume_with).
    fn resume(&self, checkpoint: &Self::Checkpoint) -> Result<RunOutcome, OptimizeError> {
        self.resume_with(checkpoint, &mut NullSink)
    }

    /// Resumes a suspended run, suspending again at `stop_after`.
    ///
    /// # Errors
    ///
    /// Same as [`resume_until_with`](Optimizer::resume_until_with).
    fn resume_until(
        &self,
        checkpoint: &Self::Checkpoint,
        stop_after: usize,
    ) -> Result<RunStatus<Self::Checkpoint>, OptimizeError> {
        self.resume_until_with(checkpoint, stop_after, &mut NullSink)
    }
}

/// A checkpoint type with a plain-text serialization, bridging typed
/// checkpoints into the object-safe [`DynOptimizer`] API.
///
/// Implemented by every checkpoint type in the workspace:
/// [`SacgaCheckpoint`](crate::checkpoint::SacgaCheckpoint) and
/// [`MesacgaCheckpoint`](crate::checkpoint::MesacgaCheckpoint) wrap
/// their exact line-oriented serializations, and [`NoCheckpoint`]
/// declares itself non-suspendable (its encode path is statically
/// unreachable and its decode path always errors).
pub trait CheckpointText: Sized {
    /// Whether values of this type can actually exist — i.e. whether
    /// the algorithm supports suspension at all.
    const SUSPENDABLE: bool;

    /// Serializes the checkpoint to its text form.
    fn to_checkpoint_text(&self) -> String;

    /// Parses a checkpoint from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidCheckpoint`] on malformed,
    /// truncated, or wrong-algorithm text.
    fn from_checkpoint_text(text: &str) -> Result<Self, OptimizeError>;

    /// The generation boundary this checkpoint captures.
    fn generation(&self) -> usize;
}

impl CheckpointText for NoCheckpoint {
    const SUSPENDABLE: bool = false;

    fn to_checkpoint_text(&self) -> String {
        match *self {}
    }

    fn from_checkpoint_text(_text: &str) -> Result<Self, OptimizeError> {
        Err(OptimizeError::invalid_checkpoint(
            "this algorithm does not support suspension",
        ))
    }

    fn generation(&self) -> usize {
        match *self {}
    }
}

/// Outcome of a bounded drive through the object-safe API: either the
/// run finished, or it suspended and the checkpoint travels as opaque
/// text (re-feed it to
/// [`resume_until_dyn_with`](DynOptimizer::resume_until_dyn_with) or
/// [`resume_dyn_with`](DynOptimizer::resume_dyn_with) on an identically
/// configured optimizer).
#[derive(Debug)]
pub enum DynRunStatus {
    /// The run finished; no checkpoint exists.
    Complete(Box<RunOutcome>),
    /// The run suspended at a generation boundary.
    Suspended {
        /// Serialized checkpoint, exactly as the typed
        /// [`CheckpointText`] encoding produced it.
        checkpoint: String,
        /// Total generations executed so far.
        generations: usize,
    },
}

/// The object-safe subset of [`Optimizer`]: unbounded runs only.
///
/// [`Optimizer`] itself is not object-safe (its
/// [`Checkpoint`](Optimizer::Checkpoint) associated type differs per
/// algorithm), so heterogeneous collections of optimizers — a campaign's
/// algorithm arms, say — cannot be `Vec<Box<dyn Optimizer>>`. This trait
/// drops the checkpoint-typed entry points and keeps the parts every
/// algorithm shares; the blanket impl makes every `Optimizer + Sync`
/// usable as a `dyn DynOptimizer` with no further ceremony:
///
/// ```
/// use sacga::prelude::*;
/// use sacga::telemetry::DynOptimizer;
/// use moea::nsga2::{Nsga2, Nsga2Config};
/// use moea::problems::Schaffer;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// let sacga_cfg = SacgaConfig::builder()
///     .population_size(16)
///     .generations(8)
///     .partitions(4)
///     .build()?;
/// let tpg_cfg = Nsga2Config::builder()
///     .population_size(16)
///     .generations(8)
///     .build()?;
/// let arms: Vec<Box<dyn DynOptimizer>> = vec![
///     Box::new(Sacga::new(Schaffer::new(), sacga_cfg)),
///     Box::new(Nsga2::new(Schaffer::new(), tpg_cfg)),
/// ];
/// for arm in &arms {
///     assert!(!arm.run_dyn(7)?.front.is_empty());
/// }
/// # Ok(())
/// # }
/// ```
pub trait DynOptimizer: Sync {
    /// Stable lower-case identifier of the algorithm (see
    /// [`Optimizer::algorithm`]).
    fn algorithm_dyn(&self) -> &'static str;

    /// Runs to completion, emitting events into `sink` (see
    /// [`Optimizer::run_with`]).
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::run_with`].
    fn run_dyn_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError>;

    /// Runs to completion without instrumentation.
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::run`].
    fn run_dyn(&self, seed: u64) -> Result<RunOutcome, OptimizeError> {
        self.run_dyn_with(seed, &mut NullSink)
    }

    /// Whether this algorithm can actually suspend at generation
    /// boundaries. When `false`, the bounded entry points below run to
    /// completion instead of suspending (cooperative preemption is
    /// best-effort by design), and the resume entry points reject every
    /// checkpoint.
    fn supports_suspension(&self) -> bool;

    /// Runs from `seed`, suspending once `stop_after` generations have
    /// completed *if the algorithm supports suspension* — otherwise
    /// runs to completion.
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::run_with`].
    fn run_until_dyn_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<DynRunStatus, OptimizeError>;

    /// Resumes a run from serialized checkpoint text, suspending again
    /// once `stop_after` total generations have completed.
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::resume_until_with`], plus
    /// [`OptimizeError::InvalidCheckpoint`] when the text does not
    /// parse as this algorithm's checkpoint.
    fn resume_until_dyn_with(
        &self,
        checkpoint: &str,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<DynRunStatus, OptimizeError>;

    /// Resumes a run from serialized checkpoint text to completion.
    ///
    /// # Errors
    ///
    /// Same as [`resume_until_dyn_with`](DynOptimizer::resume_until_dyn_with).
    fn resume_dyn_with(
        &self,
        checkpoint: &str,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError>;
}

impl<O> DynOptimizer for O
where
    O: Optimizer + Sync,
    O::Checkpoint: CheckpointText,
{
    fn algorithm_dyn(&self) -> &'static str {
        self.algorithm()
    }

    fn run_dyn_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        self.run_with(seed, sink)
    }

    fn supports_suspension(&self) -> bool {
        O::Checkpoint::SUSPENDABLE
    }

    fn run_until_dyn_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<DynRunStatus, OptimizeError> {
        if !O::Checkpoint::SUSPENDABLE {
            return Ok(DynRunStatus::Complete(Box::new(self.run_with(seed, sink)?)));
        }
        Ok(match self.run_until_with(seed, stop_after, sink)? {
            RunStatus::Complete(outcome) => DynRunStatus::Complete(outcome),
            RunStatus::Suspended(cp) => DynRunStatus::Suspended {
                checkpoint: cp.to_checkpoint_text(),
                generations: cp.generation(),
            },
        })
    }

    fn resume_until_dyn_with(
        &self,
        checkpoint: &str,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<DynRunStatus, OptimizeError> {
        let cp = O::Checkpoint::from_checkpoint_text(checkpoint)?;
        Ok(match self.resume_until_with(&cp, stop_after, sink)? {
            RunStatus::Complete(outcome) => DynRunStatus::Complete(outcome),
            RunStatus::Suspended(cp) => DynRunStatus::Suspended {
                checkpoint: cp.to_checkpoint_text(),
                generations: cp.generation(),
            },
        })
    }

    fn resume_dyn_with(
        &self,
        checkpoint: &str,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        let cp = O::Checkpoint::from_checkpoint_text(checkpoint)?;
        self.resume_with(&cp, sink)
    }
}

/// Unwraps an unbounded drive, which by construction never suspends.
pub(crate) fn expect_complete<C>(status: RunStatus<C>) -> RunOutcome {
    match status {
        RunStatus::Complete(outcome) => *outcome,
        RunStatus::Suspended(_) => unreachable!("unbounded runs never suspend"),
    }
}

/// NSGA-II (the paper's TPG baseline) through the unified API, adapting
/// the `moea` crate's [`Nsga2::run_traced`] hook into the event stream.
impl<P: Problem + Sync> Optimizer for Nsga2<P> {
    type Checkpoint = NoCheckpoint;

    fn algorithm(&self) -> &'static str {
        "nsga2"
    }

    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        let want_generation = sink.wants(EventKind::GenerationEnd);
        let want_fault = sink.wants(EventKind::EvaluationFault);
        let want_timing = sink.wants(EventKind::StageTiming);
        let emit = |trace: moea::nsga2::GenerationTrace<'_>| {
            if want_fault {
                for fault in &trace.faults {
                    sink.record(&RunEvent::EvaluationFault {
                        generation: trace.generation,
                        kind: fault.kind,
                        failures: fault.failures,
                        resolution: fault.resolution,
                    });
                }
            }
            if want_generation && trace.generation > 0 {
                let front: Vec<Vec<f64>> = trace
                    .population
                    .iter()
                    .filter(|m| m.rank == 0 && m.is_feasible())
                    .map(|m| m.objectives().to_vec())
                    .collect();
                let feasible = trace.population.iter().filter(|m| m.is_feasible()).count();
                sink.record(&RunEvent::GenerationEnd {
                    generation: trace.generation,
                    phase: 2,
                    temperature: 1.0,
                    promoted: 0,
                    feasible,
                    population: trace.population.len(),
                    evaluations: trace.evaluations,
                    front,
                });
            }
            if let Some(timing) = &trace.timing {
                sink.record(&RunEvent::StageTiming {
                    generation: trace.generation,
                    stages: timing.stages,
                    candidates: timing.candidates,
                    evaluations: timing.evaluations,
                    cache_hits: timing.cache_hits,
                });
            }
        };
        if want_timing {
            self.run_traced_timed(seed, emit)
        } else {
            self.run_traced(seed, emit)
        }
    }

    fn run_until_with(
        &self,
        _seed: u64,
        _stop_after: usize,
        _sink: &mut dyn Sink,
    ) -> Result<RunStatus<NoCheckpoint>, OptimizeError> {
        Err(OptimizeError::invalid_config(
            "stop_after",
            "NSGA-II does not support suspension; use run",
        ))
    }

    fn resume_with(
        &self,
        checkpoint: &NoCheckpoint,
        _sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        match *checkpoint {}
    }

    fn resume_until_with(
        &self,
        checkpoint: &NoCheckpoint,
        _stop_after: usize,
        _sink: &mut dyn Sink,
    ) -> Result<RunStatus<NoCheckpoint>, OptimizeError> {
        match *checkpoint {}
    }
}
