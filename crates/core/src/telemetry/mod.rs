//! Run-event observability: a structured, versioned event stream
//! ([`RunEvent`], serialized as JSONL at schema version
//! [`EVENT_SCHEMA_VERSION`]) emitted by every optimizer through
//! composable [`Sink`]s, plus the unified [`Optimizer`] run API
//! implemented by all five loops.
//!
//! # Design invariants
//!
//! * **Sinks never steer.** Event construction and recording read
//!   optimizer state but never consume RNG or mutate the run, so a
//!   seeded run is bit-identical with or without sinks attached.
//! * **`GenerationEnd` count equals generations executed.** Every loop
//!   emits exactly one [`RunEvent::GenerationEnd`] per executed
//!   generation (the initial population is generation 0 and emits
//!   none), across fresh, bounded and resumed runs.
//! * **Cheap when unwatched.** Loops consult [`Sink::wants`] before
//!   constructing expensive payloads (the per-generation front inside
//!   `GenerationEnd` costs a clone + non-dominated sort), so
//!   un-instrumented runs skip that work entirely.
//!
//! # Example
//!
//! ```
//! use sacga::prelude::*;
//! use moea::problems::Schaffer;
//!
//! # fn main() -> Result<(), moea::OptimizeError> {
//! let config = SacgaConfig::builder()
//!     .population_size(20)
//!     .generations(10)
//!     .partitions(4)
//!     .build()?;
//! let mut sink = MemorySink::new();
//! let outcome = Sacga::new(Schaffer::new(), config).run_with(42, &mut sink)?;
//! let ends = sink
//!     .events()
//!     .iter()
//!     .filter(|e| e.kind() == EventKind::GenerationEnd)
//!     .count();
//! assert_eq!(ends, outcome.generations);
//! # Ok(())
//! # }
//! ```

mod event;
mod json;
mod metrics;
mod optimizer;
mod registry;
mod sink;
mod watchdog;

pub use event::{EventKind, RunEvent, EVENT_SCHEMA_VERSION};
pub use json::{EventParseError, LossyReplay};
pub use metrics::{MetricsRow, MetricsSink};
pub(crate) use optimizer::expect_complete;
pub use optimizer::{CheckpointText, DynOptimizer, DynRunStatus, NoCheckpoint, Optimizer};
pub use registry::RegistrySink;
pub use sink::{JsonlSink, MemorySink, NullSink, Sink, Tee};
pub use watchdog::{FaultRateAlarm, HealthWarning, InfeasibilityAlarm, StallDetector};
