//! Line-oriented JSON codec for [`RunEvent`]s.
//!
//! The workspace is dependency-free, so this module hand-rolls both
//! directions: a writer emitting one compact JSON object per event, and
//! a small recursive-descent parser for reading lines back. Non-finite
//! floats (phase-I temperature is ∞) have no JSON number representation
//! and are encoded as the strings `"inf"`, `"-inf"` and `"nan"`; finite
//! floats use Rust's shortest round-tripping decimal form, so a parsed
//! event is bit-identical to the one written.

use std::fmt::{self, Write as _};

use engine::{FaultKind, FaultResolution};

use super::event::{RunEvent, EVENT_SCHEMA_VERSION};

/// Error produced when a JSONL line cannot be parsed back into a
/// [`RunEvent`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventParseError(String);

impl fmt::Display for EventParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed run event: {}", self.0)
    }
}

impl std::error::Error for EventParseError {}

fn err(msg: impl Into<String>) -> EventParseError {
    EventParseError(msg.into())
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest decimal that round-trips and always
        // includes a fractional part ("1.0"), which keeps integers and
        // floats visually distinct in the stream.
        let _ = write!(out, "{v:?}");
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn fault_kind_token(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Panic => "panic",
        FaultKind::NonFinite => "non_finite",
    }
}

fn resolution_token(res: FaultResolution) -> &'static str {
    match res {
        FaultResolution::Recovered => "recovered",
        FaultResolution::Quarantined => "quarantined",
    }
}

impl RunEvent {
    /// Serializes the event as a single compact JSON object (no trailing
    /// newline) carrying the schema version as `"v"`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"v\":{EVENT_SCHEMA_VERSION},\"event\":");
        match self {
            RunEvent::GenerationEnd {
                generation,
                phase,
                temperature,
                promoted,
                feasible,
                population,
                evaluations,
                front,
            } => {
                let _ = write!(
                    s,
                    "\"generation_end\",\"generation\":{generation},\"phase\":{phase},\
                     \"temperature\":"
                );
                push_f64(&mut s, *temperature);
                let _ = write!(
                    s,
                    ",\"promoted\":{promoted},\"feasible\":{feasible},\
                     \"population\":{population},\"evaluations\":{evaluations},\"front\":["
                );
                for (i, point) in front.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    for (j, v) in point.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        push_f64(&mut s, *v);
                    }
                    s.push(']');
                }
                s.push(']');
            }
            RunEvent::PhaseTransition {
                generation,
                phase_index,
                partitions,
                span,
            } => {
                let _ = write!(
                    s,
                    "\"phase_transition\",\"generation\":{generation},\
                     \"phase_index\":{phase_index},\"partitions\":{partitions},\"span\":{span}"
                );
            }
            RunEvent::PartitionFeasible {
                generation,
                partition,
            } => {
                let _ = write!(
                    s,
                    "\"partition_feasible\",\"generation\":{generation},\
                     \"partition\":{partition}"
                );
            }
            RunEvent::Promotion {
                generation,
                promoted,
                candidates,
            } => {
                let _ = write!(
                    s,
                    "\"promotion\",\"generation\":{generation},\
                     \"promoted\":{promoted},\"candidates\":{candidates}"
                );
            }
            RunEvent::EvaluationFault {
                generation,
                kind,
                failures,
                resolution,
            } => {
                let _ = write!(
                    s,
                    "\"evaluation_fault\",\"generation\":{generation},\
                     \"kind\":\"{}\",\"failures\":{failures},\"resolution\":\"{}\"",
                    fault_kind_token(*kind),
                    resolution_token(*resolution),
                );
            }
            RunEvent::CheckpointWritten { generation } => {
                let _ = write!(s, "\"checkpoint_written\",\"generation\":{generation}");
            }
            RunEvent::StageTiming {
                generation,
                stages,
                candidates,
                evaluations,
                cache_hits,
            } => {
                let _ = write!(
                    s,
                    "\"stage_timing\",\"generation\":{generation},\
                     \"variation_ns\":{},\"evaluation_ns\":{},\"ranking_ns\":{},\
                     \"promotion_ns\":{},\"selection_ns\":{},\
                     \"candidates\":{candidates},\"evaluations\":{evaluations},\
                     \"cache_hits\":{cache_hits}",
                    stages.variation,
                    stages.evaluation,
                    stages.ranking,
                    stages.promotion,
                    stages.selection,
                );
            }
        }
        s.push('}');
        s
    }

    /// Parses a JSON line previously produced by
    /// [`to_json`](RunEvent::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`EventParseError`] on malformed JSON, an unknown event
    /// tag or schema version, or missing/mistyped fields.
    pub fn from_json(line: &str) -> Result<RunEvent, EventParseError> {
        let value = parse_json(line)?;
        let obj = match &value {
            Json::Obj(fields) => fields,
            _ => return Err(err("expected a JSON object")),
        };
        let version = get_u64(obj, "v")?;
        // Version 2 only added the `stage_timing` event, so every v1
        // line is also a valid v2 line; accept both.
        if version == 0 || version > u64::from(EVENT_SCHEMA_VERSION) {
            return Err(err(format!("unsupported schema version {version}")));
        }
        let tag = get_str(obj, "event")?;
        let generation = get_usize(obj, "generation")?;
        match tag {
            "generation_end" => Ok(RunEvent::GenerationEnd {
                generation,
                phase: get_u64(obj, "phase")? as u8,
                temperature: get_f64(obj, "temperature")?,
                promoted: get_usize(obj, "promoted")?,
                feasible: get_usize(obj, "feasible")?,
                population: get_usize(obj, "population")?,
                evaluations: get_u64(obj, "evaluations")?,
                front: get_front(obj)?,
            }),
            "phase_transition" => Ok(RunEvent::PhaseTransition {
                generation,
                phase_index: get_usize(obj, "phase_index")?,
                partitions: get_usize(obj, "partitions")?,
                span: get_usize(obj, "span")?,
            }),
            "partition_feasible" => Ok(RunEvent::PartitionFeasible {
                generation,
                partition: get_usize(obj, "partition")?,
            }),
            "promotion" => Ok(RunEvent::Promotion {
                generation,
                promoted: get_usize(obj, "promoted")?,
                candidates: get_usize(obj, "candidates")?,
            }),
            "evaluation_fault" => Ok(RunEvent::EvaluationFault {
                generation,
                kind: match get_str(obj, "kind")? {
                    "panic" => FaultKind::Panic,
                    "non_finite" => FaultKind::NonFinite,
                    other => return Err(err(format!("unknown fault kind {other:?}"))),
                },
                failures: get_u64(obj, "failures")? as u32,
                resolution: match get_str(obj, "resolution")? {
                    "recovered" => FaultResolution::Recovered,
                    "quarantined" => FaultResolution::Quarantined,
                    other => return Err(err(format!("unknown resolution {other:?}"))),
                },
            }),
            "checkpoint_written" => Ok(RunEvent::CheckpointWritten { generation }),
            "stage_timing" => Ok(RunEvent::StageTiming {
                generation,
                stages: engine::StageNanos {
                    variation: get_u64(obj, "variation_ns")?,
                    evaluation: get_u64(obj, "evaluation_ns")?,
                    ranking: get_u64(obj, "ranking_ns")?,
                    promotion: get_u64(obj, "promotion_ns")?,
                    selection: get_u64(obj, "selection_ns")?,
                },
                candidates: get_u64(obj, "candidates")?,
                evaluations: get_u64(obj, "evaluations")?,
                cache_hits: get_u64(obj, "cache_hits")?,
            }),
            other => Err(err(format!("unknown event tag {other:?}"))),
        }
    }

    /// Replays a JSONL stream leniently: well-formed lines parse into
    /// events, blank lines are ignored, and corrupt lines — e.g. a
    /// trailing line a crash truncated mid-write — are skipped and
    /// counted instead of aborting the replay.
    ///
    /// Use this to analyze logs that may have survived a crash;
    /// [`from_json`](RunEvent::from_json) remains the strict per-line
    /// parser.
    pub fn parse_jsonl_lossy(text: &str) -> LossyReplay {
        let mut events = Vec::new();
        let mut skipped = 0;
        let mut first_error = None;
        for (index, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match RunEvent::from_json(line) {
                Ok(event) => events.push(event),
                Err(error) => {
                    skipped += 1;
                    if first_error.is_none() {
                        first_error = Some((index + 1, error));
                    }
                }
            }
        }
        LossyReplay {
            events,
            skipped,
            first_error,
        }
    }
}

/// Result of [`RunEvent::parse_jsonl_lossy`]: the events that parsed,
/// plus how many corrupt lines were skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyReplay {
    /// Events from well-formed lines, in stream order.
    pub events: Vec<RunEvent>,
    /// Non-blank lines that failed to parse and were skipped.
    pub skipped: usize,
    /// 1-based line number and error of the first skipped line, for
    /// diagnostics.
    pub first_error: Option<(usize, EventParseError)>,
}

// ---------------------------------------------------------------------
// Minimal JSON parser (only what the event schema needs)
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, EventParseError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| err(format!("missing field {key:?}")))
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Result<u64, EventParseError> {
    match field(obj, key)? {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(err(format!("field {key:?} is not a non-negative integer"))),
    }
}

fn get_usize(obj: &[(String, Json)], key: &str) -> Result<usize, EventParseError> {
    Ok(get_u64(obj, key)? as usize)
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a str, EventParseError> {
    match field(obj, key)? {
        Json::Str(s) => Ok(s),
        _ => Err(err(format!("field {key:?} is not a string"))),
    }
}

fn json_f64(value: &Json) -> Result<f64, EventParseError> {
    match value {
        Json::Num(n) => Ok(*n),
        Json::Str(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(err(format!("not a float: {other:?}"))),
        },
        _ => Err(err("expected a number")),
    }
}

fn get_f64(obj: &[(String, Json)], key: &str) -> Result<f64, EventParseError> {
    json_f64(field(obj, key)?)
}

fn get_front(obj: &[(String, Json)]) -> Result<Vec<Vec<f64>>, EventParseError> {
    match field(obj, "front")? {
        Json::Arr(points) => points
            .iter()
            .map(|p| match p {
                Json::Arr(coords) => coords.iter().map(json_f64).collect(),
                _ => Err(err("front point is not an array")),
            })
            .collect(),
        _ => Err(err("field \"front\" is not an array")),
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Result<Json, EventParseError> {
    let mut cur = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = cur.value()?;
    cur.skip_ws();
    if cur.pos != cur.bytes.len() {
        return Err(err("trailing characters after JSON value"));
    }
    Ok(value)
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), EventParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, EventParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(err(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Json, EventParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(err(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Json, EventParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(err(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, EventParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        _ => return Err(err("unsupported escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, EventParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(event: RunEvent) {
        let line = event.to_json();
        let parsed = RunEvent::from_json(&line).expect("round trip should parse");
        assert_eq!(parsed, event, "line was: {line}");
    }

    #[test]
    fn every_variant_round_trips() {
        round_trip(RunEvent::GenerationEnd {
            generation: 7,
            phase: 1,
            temperature: f64::INFINITY,
            promoted: 0,
            feasible: 31,
            population: 40,
            evaluations: 320,
            front: vec![vec![0.25, -1.5e-3], vec![4.0, 0.0]],
        });
        round_trip(RunEvent::PhaseTransition {
            generation: 12,
            phase_index: 2,
            partitions: 8,
            span: 30,
        });
        round_trip(RunEvent::PartitionFeasible {
            generation: 3,
            partition: 5,
        });
        round_trip(RunEvent::Promotion {
            generation: 20,
            promoted: 4,
            candidates: 11,
        });
        round_trip(RunEvent::EvaluationFault {
            generation: 2,
            kind: FaultKind::Panic,
            failures: 3,
            resolution: FaultResolution::Recovered,
        });
        round_trip(RunEvent::EvaluationFault {
            generation: 2,
            kind: FaultKind::NonFinite,
            failures: 4,
            resolution: FaultResolution::Quarantined,
        });
        round_trip(RunEvent::CheckpointWritten { generation: 15 });
        round_trip(RunEvent::StageTiming {
            generation: 9,
            stages: engine::StageNanos {
                variation: 1_200,
                evaluation: 880_000,
                ranking: 43_000,
                promotion: 0,
                selection: 9_001,
            },
            candidates: 40,
            evaluations: 37,
            cache_hits: 3,
        });
    }

    #[test]
    fn v1_lines_still_parse() {
        // A line written by the schema-1 codec (before `stage_timing`
        // existed) must keep parsing under the v2 parser.
        let line = "{\"v\":1,\"event\":\"promotion\",\"generation\":20,\
                    \"promoted\":4,\"candidates\":11}";
        assert_eq!(
            RunEvent::from_json(line).unwrap(),
            RunEvent::Promotion {
                generation: 20,
                promoted: 4,
                candidates: 11,
            }
        );
        let line = "{\"v\":1,\"event\":\"generation_end\",\"generation\":7,\"phase\":1,\
                    \"temperature\":\"inf\",\"promoted\":0,\"feasible\":3,\"population\":8,\
                    \"evaluations\":64,\"front\":[[1.0,2.0]]}";
        assert!(RunEvent::from_json(line).is_ok());
        // Versions beyond the current schema (and zero) are rejected.
        assert!(
            RunEvent::from_json("{\"v\":0,\"event\":\"checkpoint_written\",\"generation\":0}")
                .is_err()
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [
            0.1,
            std::f64::consts::PI,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            -0.0,
            1e300,
        ] {
            round_trip(RunEvent::GenerationEnd {
                generation: 1,
                phase: 2,
                temperature: v,
                promoted: 0,
                feasible: 1,
                population: 1,
                evaluations: 1,
                front: vec![vec![v]],
            });
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(RunEvent::from_json("").is_err());
        assert!(RunEvent::from_json("{}").is_err());
        assert!(RunEvent::from_json("[1,2,3]").is_err());
        assert!(RunEvent::from_json("{\"v\":1,\"event\":\"nope\",\"generation\":0}").is_err());
        assert!(
            RunEvent::from_json("{\"v\":9,\"event\":\"checkpoint_written\",\"generation\":0}")
                .is_err()
        );
        assert!(RunEvent::from_json("{\"v\":1,\"event\":\"promotion\",\"generation\":0}").is_err());
    }
}
