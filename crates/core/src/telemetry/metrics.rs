//! A sink that turns the event stream into per-generation convergence
//! metrics — the quantities behind the paper's trajectory figures.

use std::io;

use moea::hypervolume::hypervolume;
use moea::metrics::{bin_occupancy, spread};

use super::event::{EventKind, RunEvent};
use super::sink::Sink;

/// Occupancy configuration: which objective axis is binned and how.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OccupancySpec {
    objective: usize,
    lo: f64,
    hi: f64,
    bins: usize,
}

/// One row of per-generation convergence metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRow {
    /// Generation index.
    pub generation: usize,
    /// Points on the feasible global front.
    pub front_size: usize,
    /// Hypervolume of the front against the configured reference point
    /// (0 when the front is empty).
    pub hypervolume: f64,
    /// Deb's spread/diversity Δ of the front (0 for fronts of fewer
    /// than three points).
    pub spread: f64,
    /// Fraction of occupied bins along the configured objective axis;
    /// `None` unless [`MetricsSink::with_occupancy`] was used.
    pub occupancy: Option<f64>,
}

/// Computes hypervolume / spread / bin-occupancy per generation from
/// [`RunEvent::GenerationEnd`] fronts, via `moea::metrics` and
/// `moea::hypervolume`.
///
/// Only `GenerationEnd` events are wanted; everything else is ignored,
/// so composing this sink (through [`Tee`](super::sink::Tee)) with a
/// byte-stream sink costs one metrics computation per generation and
/// nothing more.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    ref_point: Vec<f64>,
    occupancy: Option<OccupancySpec>,
    rows: Vec<MetricsRow>,
}

impl MetricsSink {
    /// Creates a sink computing hypervolume against `ref_point` (one
    /// coordinate per objective, in minimized space).
    pub fn new(ref_point: Vec<f64>) -> Self {
        MetricsSink {
            ref_point,
            occupancy: None,
            rows: Vec::new(),
        }
    }

    /// Additionally reports the fraction of occupied bins when
    /// objective `objective`'s range `[lo, hi]` is divided into `bins`
    /// equal slices — the paper's partition-occupancy diversity measure.
    pub fn with_occupancy(mut self, objective: usize, lo: f64, hi: f64, bins: usize) -> Self {
        self.occupancy = Some(OccupancySpec {
            objective,
            lo,
            hi,
            bins,
        });
        self
    }

    /// The metric rows computed so far, one per generation.
    pub fn rows(&self) -> &[MetricsRow] {
        &self.rows
    }

    /// Consumes the sink, returning the metric rows.
    pub fn into_rows(self) -> Vec<MetricsRow> {
        self.rows
    }
}

impl Sink for MetricsSink {
    fn record(&mut self, event: &RunEvent) {
        let RunEvent::GenerationEnd {
            generation, front, ..
        } = event
        else {
            return;
        };
        let hv = if front.is_empty() {
            0.0
        } else {
            hypervolume(front, &self.ref_point)
        };
        let occupancy = self
            .occupancy
            .filter(|o| o.bins > 0 && o.lo < o.hi)
            .map(|o| bin_occupancy(front, o.objective, o.lo, o.hi, o.bins));
        self.rows.push(MetricsRow {
            generation: *generation,
            front_size: front.len(),
            hypervolume: hv,
            spread: spread(front),
            occupancy,
        });
    }

    fn wants(&self, kind: EventKind) -> bool {
        kind == EventKind::GenerationEnd
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_end(generation: usize, front: Vec<Vec<f64>>) -> RunEvent {
        RunEvent::GenerationEnd {
            generation,
            phase: 2,
            temperature: 1.0,
            promoted: 0,
            feasible: front.len(),
            population: 40,
            evaluations: 40,
            front,
        }
    }

    #[test]
    fn computes_one_row_per_generation_end() {
        let mut sink = MetricsSink::new(vec![5.0, 5.0]).with_occupancy(0, 0.0, 4.0, 4);
        sink.record(&gen_end(
            1,
            vec![vec![1.0, 1.0], vec![2.0, 0.5], vec![3.0, 0.25]],
        ));
        sink.record(&RunEvent::CheckpointWritten { generation: 1 });
        sink.record(&gen_end(2, vec![]));
        let rows = sink.rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].hypervolume > 0.0);
        assert_eq!(rows[0].front_size, 3);
        // Front points at 1.x, 2.x, 3.x occupy 3 of 4 bins on [0, 4].
        assert_eq!(rows[0].occupancy, Some(0.75));
        assert_eq!(rows[1].hypervolume, 0.0);
        assert_eq!(rows[1].front_size, 0);
    }

    #[test]
    fn wants_only_generation_end() {
        let sink = MetricsSink::new(vec![1.0, 1.0]);
        assert!(sink.wants(EventKind::GenerationEnd));
        assert!(!sink.wants(EventKind::Promotion));
        assert!(!sink.wants(EventKind::EvaluationFault));
    }
}
