//! The structured run-event taxonomy emitted by every optimizer.

use engine::{FaultKind, FaultResolution, StageNanos};

/// Version of the telemetry event schema. Serialized into every JSONL
/// line as `"v"`; bump when an event variant gains, loses, or renames a
/// field.
///
/// Version history:
/// * **1** — initial taxonomy (`generation_end`, `phase_transition`,
///   `partition_feasible`, `promotion`, `evaluation_fault`,
///   `checkpoint_written`).
/// * **2** — adds the `stage_timing` event. Purely additive: every v1
///   line parses unchanged, and the parser accepts both versions.
pub const EVENT_SCHEMA_VERSION: u32 = 2;

/// A structured event emitted by a run loop through a [`Sink`].
///
/// Events are derived purely from optimizer state — constructing or
/// recording them never consumes RNG, so a seeded run produces
/// bit-identical results with or without sinks attached.
///
/// [`Sink`]: crate::telemetry::Sink
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// A generation finished (survivor selection done). Emitted once per
    /// *executed* generation, so for any run the number of
    /// `GenerationEnd` events equals [`RunOutcome::generations`].
    ///
    /// [`RunOutcome::generations`]: moea::RunOutcome::generations
    GenerationEnd {
        /// Generation index (1-based; the initial population is
        /// generation 0 and emits no event).
        generation: usize,
        /// 1 = pure local phase, 2 = annealed/global phase.
        phase: u8,
        /// Annealing temperature (∞ during phase I, 1 for purely global
        /// loops).
        temperature: f64,
        /// Locally superior solutions promoted this generation.
        promoted: usize,
        /// Feasible individuals in the population.
        feasible: usize,
        /// Population size after survivor selection.
        population: usize,
        /// Cumulative objective evaluations performed so far.
        evaluations: u64,
        /// Objective vectors of the feasible, globally non-dominated
        /// front of the current population.
        front: Vec<Vec<f64>>,
    },
    /// The run crossed a phase boundary: SACGA's phase I → phase II
    /// switch, or entry into each of MESACGA's expanding phases.
    PhaseTransition {
        /// Generation at which the new phase begins.
        generation: usize,
        /// Index of the phase being entered (0 = first annealed phase).
        phase_index: usize,
        /// Partition count in force during the new phase.
        partitions: usize,
        /// Annealed generation span of the new phase.
        span: usize,
    },
    /// A partition gained its first constraint-satisfying member during
    /// phase I.
    PartitionFeasible {
        /// Generation at which feasibility was reached.
        generation: usize,
        /// Partition index.
        partition: usize,
    },
    /// An annealed promotion step ran (phase II). For the island model
    /// this reports ring migration instead: `promoted` is the number of
    /// individuals migrated and `candidates` the rank-0 pool they were
    /// drawn from.
    Promotion {
        /// Generation the promotion fed into.
        generation: usize,
        /// Candidates that won the SA gamble and joined the global
        /// competition.
        promoted: usize,
        /// Locally superior candidates considered.
        candidates: usize,
    },
    /// A candidate evaluation faulted and was resolved by the fault
    /// policy (retried to success, or quarantined).
    EvaluationFault {
        /// Generation whose evaluation batch contained the fault.
        generation: usize,
        /// How the last failed attempt failed.
        kind: FaultKind,
        /// Failed attempts before resolution.
        failures: u32,
        /// How the episode ended.
        resolution: FaultResolution,
    },
    /// A suspension checkpoint was captured (the run returns
    /// `RunStatus::Suspended` immediately afterwards).
    CheckpointWritten {
        /// Generation boundary the checkpoint captures.
        generation: usize,
    },
    /// Per-stage wall-clock and evaluation-effort breakdown of one
    /// generation, emitted right after that generation's
    /// [`GenerationEnd`](RunEvent::GenerationEnd).
    ///
    /// Unlike every other variant this payload is **not** deterministic
    /// — wall-clock varies run to run — so golden-master comparisons
    /// and stream-equality tests must exclude it (filter on
    /// [`EventKind::StageTiming`]). Producing it still consumes no RNG,
    /// so attaching a timing sink leaves the run itself bit-identical.
    StageTiming {
        /// Generation the breakdown describes.
        generation: usize,
        /// Nanoseconds spent per pipeline stage.
        stages: StageNanos,
        /// Candidates submitted to the engine this generation.
        candidates: u64,
        /// Model evaluations actually performed this generation
        /// (candidates minus cache hits).
        evaluations: u64,
        /// Candidates answered from the memoization cache this
        /// generation.
        cache_hits: u64,
    },
}

/// Discriminant of a [`RunEvent`], used by [`Sink::wants`] to let run
/// loops skip constructing events nobody listens to.
///
/// [`Sink::wants`]: crate::telemetry::Sink::wants
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`RunEvent::GenerationEnd`].
    GenerationEnd,
    /// [`RunEvent::PhaseTransition`].
    PhaseTransition,
    /// [`RunEvent::PartitionFeasible`].
    PartitionFeasible,
    /// [`RunEvent::Promotion`].
    Promotion,
    /// [`RunEvent::EvaluationFault`].
    EvaluationFault,
    /// [`RunEvent::CheckpointWritten`].
    CheckpointWritten,
    /// [`RunEvent::StageTiming`].
    StageTiming,
}

impl RunEvent {
    /// The event's discriminant.
    pub fn kind(&self) -> EventKind {
        match self {
            RunEvent::GenerationEnd { .. } => EventKind::GenerationEnd,
            RunEvent::PhaseTransition { .. } => EventKind::PhaseTransition,
            RunEvent::PartitionFeasible { .. } => EventKind::PartitionFeasible,
            RunEvent::Promotion { .. } => EventKind::Promotion,
            RunEvent::EvaluationFault { .. } => EventKind::EvaluationFault,
            RunEvent::CheckpointWritten { .. } => EventKind::CheckpointWritten,
            RunEvent::StageTiming { .. } => EventKind::StageTiming,
        }
    }

    /// The generation the event belongs to.
    pub fn generation(&self) -> usize {
        match *self {
            RunEvent::GenerationEnd { generation, .. }
            | RunEvent::PhaseTransition { generation, .. }
            | RunEvent::PartitionFeasible { generation, .. }
            | RunEvent::Promotion { generation, .. }
            | RunEvent::EvaluationFault { generation, .. }
            | RunEvent::CheckpointWritten { generation }
            | RunEvent::StageTiming { generation, .. } => generation,
        }
    }
}
