//! A [`Sink`] that bridges the [`RunEvent`] stream into a live
//! [`engine::MetricsRegistry`].
//!
//! Where the engine's own [`engine::EngineMetrics`] bundle mirrors
//! evaluation counters, this sink surfaces the *optimizer-level*
//! trajectory: generations completed, phase transitions, promotions,
//! fault episodes, checkpoints, and gauges for the current front size,
//! feasible count, population, cumulative evaluations, phase, and (when
//! a reference point is supplied) the feasible-front hypervolume.
//!
//! Like every sink, recording observes and never steers: events are
//! derived purely from optimizer state and constructing them consumes no
//! RNG, so attaching a `RegistrySink` leaves a seeded run bit-identical
//! to a bare one (pinned by the golden-master variants).

use engine::{Counter, Gauge, MetricsRegistry};
use moea::hypervolume::hypervolume;

use super::event::{EventKind, RunEvent};
use super::sink::Sink;

/// Bridges run events into counter/gauge handles registered under a
/// shared label set.
#[derive(Debug, Clone)]
pub struct RegistrySink {
    generations: Counter,
    phase_transitions: Counter,
    promotions: Counter,
    promoted: Counter,
    fault_events: Counter,
    checkpoints: Counter,
    front_size: Gauge,
    feasible: Gauge,
    population: Gauge,
    evaluations: Gauge,
    phase: Gauge,
    /// `(gauge, reference point)` when hypervolume tracking is enabled.
    hv: Option<(Gauge, Vec<f64>)>,
}

impl RegistrySink {
    /// Registers the run-trajectory metrics under `labels` in
    /// `registry`. Labels follow the registry's model (`tenant`, `job`,
    /// `arm`, `stage`, `worker`).
    pub fn register(registry: &MetricsRegistry, labels: &[(&str, &str)]) -> Self {
        RegistrySink {
            generations: registry.counter("dse_run_generations_total", labels),
            phase_transitions: registry.counter("dse_run_phase_transitions_total", labels),
            promotions: registry.counter("dse_run_promotions_total", labels),
            promoted: registry.counter("dse_run_promoted_total", labels),
            fault_events: registry.counter("dse_run_fault_events_total", labels),
            checkpoints: registry.counter("dse_run_checkpoints_total", labels),
            front_size: registry.gauge("dse_run_front_size", labels),
            feasible: registry.gauge("dse_run_feasible", labels),
            population: registry.gauge("dse_run_population", labels),
            evaluations: registry.gauge("dse_run_evaluations", labels),
            phase: registry.gauge("dse_run_phase", labels),
            hv: None,
        }
    }

    /// Additionally tracks the feasible-front hypervolume against
    /// `ref_point` as a `dse_run_hypervolume` gauge, updated on every
    /// generation end. The same measure the
    /// [`StallDetector`](super::watchdog::StallDetector) watches — a flat
    /// trajectory here is the live view of a stalling run.
    pub fn with_hypervolume(
        mut self,
        registry: &MetricsRegistry,
        labels: &[(&str, &str)],
        ref_point: Vec<f64>,
    ) -> Self {
        self.hv = Some((registry.gauge("dse_run_hypervolume", labels), ref_point));
        self
    }
}

#[allow(clippy::cast_precision_loss)]
impl Sink for RegistrySink {
    fn record(&mut self, event: &RunEvent) {
        match event {
            RunEvent::GenerationEnd {
                phase,
                feasible,
                population,
                evaluations,
                front,
                ..
            } => {
                self.generations.inc();
                self.front_size.set(front.len() as f64);
                self.feasible.set(*feasible as f64);
                self.population.set(*population as f64);
                self.evaluations.set(*evaluations as f64);
                self.phase.set(f64::from(*phase));
                if let Some((gauge, ref_point)) = &self.hv {
                    gauge.set(hypervolume(front, ref_point));
                }
            }
            RunEvent::PhaseTransition { .. } => self.phase_transitions.inc(),
            RunEvent::Promotion { promoted, .. } => {
                self.promotions.inc();
                self.promoted.add(*promoted as u64);
            }
            RunEvent::EvaluationFault { .. } => self.fault_events.inc(),
            RunEvent::CheckpointWritten { .. } => self.checkpoints.inc(),
            RunEvent::PartitionFeasible { .. } | RunEvent::StageTiming { .. } => {}
        }
    }

    fn wants(&self, kind: EventKind) -> bool {
        matches!(
            kind,
            EventKind::GenerationEnd
                | EventKind::PhaseTransition
                | EventKind::Promotion
                | EventKind::EvaluationFault
                | EventKind::CheckpointWritten
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_events_drive_counters_and_gauges() {
        let registry = MetricsRegistry::new();
        let mut sink = RegistrySink::register(&registry, &[("arm", "sacga")]).with_hypervolume(
            &registry,
            &[("arm", "sacga")],
            vec![10.0, 10.0],
        );
        sink.record(&RunEvent::GenerationEnd {
            generation: 1,
            phase: 2,
            temperature: 0.5,
            promoted: 3,
            feasible: 20,
            population: 32,
            evaluations: 64,
            front: vec![vec![1.0, 2.0], vec![2.0, 1.0]],
        });
        sink.record(&RunEvent::PhaseTransition {
            generation: 1,
            phase_index: 0,
            partitions: 5,
            span: 10,
        });
        sink.record(&RunEvent::Promotion {
            generation: 1,
            promoted: 3,
            candidates: 7,
        });
        sink.record(&RunEvent::CheckpointWritten { generation: 1 });
        let text = registry.render_text();
        assert!(text.contains("dse_run_generations_total{arm=\"sacga\"} 1"));
        assert!(text.contains("dse_run_phase_transitions_total{arm=\"sacga\"} 1"));
        assert!(text.contains("dse_run_promoted_total{arm=\"sacga\"} 3"));
        assert!(text.contains("dse_run_checkpoints_total{arm=\"sacga\"} 1"));
        assert!(text.contains("dse_run_front_size{arm=\"sacga\"} 2"));
        assert!(text.contains("dse_run_population{arm=\"sacga\"} 32"));
        // hv of {(1,2),(2,1)} against (10,10): 9*8 + (10-2)*(2-1) = 80.
        assert!(text.contains("dse_run_hypervolume{arm=\"sacga\"} 80"));
    }

    #[test]
    fn wants_skips_expensive_unused_kinds() {
        let registry = MetricsRegistry::new();
        let sink = RegistrySink::register(&registry, &[]);
        assert!(sink.wants(EventKind::GenerationEnd));
        assert!(!sink.wants(EventKind::StageTiming));
        assert!(!sink.wants(EventKind::PartitionFeasible));
    }
}
