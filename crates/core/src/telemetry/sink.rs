//! Composable consumers for the [`RunEvent`] stream.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

use super::event::{EventKind, RunEvent};

/// A consumer of run events.
///
/// Run loops hand every emitted event to a single `&mut dyn Sink`;
/// composition (tee-ing into several sinks) happens on the sink side via
/// [`Tee`]. Implementations must never panic on malformed-looking data
/// and must not interact with the optimizer — sinks observe, they do
/// not steer.
pub trait Sink {
    /// Consumes one event.
    fn record(&mut self, event: &RunEvent);

    /// Whether this sink cares about events of `kind`. Run loops use
    /// this to skip *constructing* expensive events (a
    /// [`GenerationEnd`](RunEvent::GenerationEnd) carries the full
    /// per-generation front) when nobody listens; a `false` here means
    /// events of that kind may never reach [`record`](Sink::record).
    fn wants(&self, kind: EventKind) -> bool {
        let _ = kind;
        true
    }

    /// Flushes buffered output and surfaces any deferred I/O error.
    ///
    /// # Errors
    ///
    /// Implementations backed by I/O return the first write error
    /// encountered since the last flush.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Forwarding impl so `&mut S` can be passed where a sink is consumed
/// by value (e.g. both arms of a [`Tee`]).
impl<S: Sink + ?Sized> Sink for &mut S {
    fn record(&mut self, event: &RunEvent) {
        (**self).record(event);
    }

    fn wants(&self, kind: EventKind) -> bool {
        (**self).wants(kind)
    }

    fn flush(&mut self) -> io::Result<()> {
        (**self).flush()
    }
}

/// A sink that wants nothing and discards everything — the default for
/// un-instrumented runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&mut self, _event: &RunEvent) {}

    fn wants(&self, _kind: EventKind) -> bool {
        false
    }
}

/// Buffers every event in memory, in emission order. The workhorse for
/// tests and for bench binaries that replay the stream into tables.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<RunEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[RunEvent] {
        &self.events
    }

    /// Consumes the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<RunEvent> {
        self.events
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &RunEvent) {
        self.events.push(event.clone());
    }
}

/// Writes one JSON object per event to an [`io::Write`] target —
/// line-oriented, so a stream can sit append-safe alongside checkpoint
/// files and be replayed with [`RunEvent::from_json`] per line.
///
/// `record` cannot return an error, so the first write failure is
/// stored and every later write is skipped; [`flush`](Sink::flush)
/// surfaces the stored error. Dropping the sink without flushing may
/// lose both buffered lines and the error.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    error: Option<io::Error>,
    lines: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and writes events to it, buffered.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Opens `path` for appending (creating it if absent), so repeated
    /// bounded runs of one experiment can share a stream.
    ///
    /// If the existing file ends mid-line — a previous writer crashed
    /// between `write` and the trailing newline — a newline is appended
    /// first, terminating the truncated line so every event this sink
    /// writes starts on its own line. The truncated line itself is left
    /// in place for a lossy replay
    /// ([`RunEvent::parse_jsonl_lossy`](RunEvent::parse_jsonl_lossy))
    /// to skip and count.
    ///
    /// # Errors
    ///
    /// Propagates file-open, seek and repair-write errors.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        use std::io::{Read as _, Seek, SeekFrom};
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last != [b'\n'] {
                file.write_all(b"\n")?;
            }
        }
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer (e.g. a `Vec<u8>` in tests).
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            error: None,
            lines: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Surfaces a deferred write error or the final flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        Sink::flush(&mut self)?;
        Ok(self.writer)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&mut self, event: &RunEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json();
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()
    }
}

/// Fans each event out to two sinks; nest `Tee`s to compose more. An
/// event kind is constructed when *either* arm wants it, and `record`
/// re-checks each arm's `wants` so a sink never sees a kind it opted
/// out of.
#[derive(Debug, Default)]
pub struct Tee<A: Sink, B: Sink> {
    first: A,
    second: B,
}

impl<A: Sink, B: Sink> Tee<A, B> {
    /// Combines two sinks.
    pub fn new(first: A, second: B) -> Self {
        Tee { first, second }
    }

    /// Splits the tee back into its arms.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Sink, B: Sink> Sink for Tee<A, B> {
    fn record(&mut self, event: &RunEvent) {
        let kind = event.kind();
        if self.first.wants(kind) {
            self.first.record(event);
        }
        if self.second.wants(kind) {
            self.second.record(event);
        }
    }

    fn wants(&self, kind: EventKind) -> bool {
        self.first.wants(kind) || self.second.wants(kind)
    }

    fn flush(&mut self) -> io::Result<()> {
        let first = self.first.flush();
        let second = self.second.flush();
        first.and(second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(generation: usize) -> RunEvent {
        RunEvent::CheckpointWritten { generation }
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut sink = MemorySink::new();
        for g in 0..5 {
            sink.record(&sample(g));
        }
        let gens: Vec<usize> = sink.events().iter().map(|e| e.generation()).collect();
        assert_eq!(gens, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn null_sink_wants_nothing() {
        assert!(!NullSink.wants(EventKind::GenerationEnd));
        assert!(!NullSink.wants(EventKind::EvaluationFault));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&sample(1));
        sink.record(&RunEvent::Promotion {
            generation: 2,
            promoted: 1,
            candidates: 3,
        });
        assert_eq!(sink.lines_written(), 2);
        let bytes = sink.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let events: Vec<RunEvent> = text
            .lines()
            .map(|l| RunEvent::from_json(l).unwrap())
            .collect();
        assert_eq!(events[0], sample(1));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn jsonl_sink_surfaces_write_errors_on_flush() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.record(&sample(0));
        sink.record(&sample(1)); // silently skipped after the first error
        assert_eq!(sink.lines_written(), 0);
        assert!(Sink::flush(&mut sink).is_err());
        // The error is surfaced once, then the sink is clean again.
        assert!(Sink::flush(&mut sink).is_ok());
    }

    #[test]
    fn append_after_mid_line_truncation_recovers_cleanly() {
        let path = std::env::temp_dir().join(format!(
            "analog_dse_jsonl_recovery_{}.jsonl",
            std::process::id()
        ));
        // A writer records three events, then the process "crashes":
        // the file is cut mid-way through the last line.
        let mut sink = JsonlSink::create(&path).unwrap();
        for g in 0..3 {
            sink.record(&sample(g));
        }
        drop(sink.into_inner().unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 7; // mid-way through the third line
        std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();

        // Reopening for append repairs the missing newline, so new
        // events land on their own lines.
        let mut sink = JsonlSink::append(&path).unwrap();
        sink.record(&sample(3));
        sink.record(&sample(4));
        drop(sink.into_inner().unwrap());

        // Lossy replay: the truncated line is skipped (and counted),
        // everything else round-trips.
        let text = std::fs::read_to_string(&path).unwrap();
        let replay = RunEvent::parse_jsonl_lossy(&text);
        std::fs::remove_file(&path).ok();
        assert_eq!(replay.skipped, 1);
        assert_eq!(replay.first_error.as_ref().unwrap().0, 3);
        let gens: Vec<usize> = replay.events.iter().map(RunEvent::generation).collect();
        assert_eq!(gens, vec![0, 1, 3, 4]);
    }

    #[test]
    fn append_to_well_formed_log_adds_no_blank_line() {
        let path = std::env::temp_dir().join(format!(
            "analog_dse_jsonl_append_{}.jsonl",
            std::process::id()
        ));
        let mut sink = JsonlSink::create(&path).unwrap();
        sink.record(&sample(0));
        drop(sink.into_inner().unwrap());
        let mut sink = JsonlSink::append(&path).unwrap();
        sink.record(&sample(1));
        drop(sink.into_inner().unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 2);
        let replay = RunEvent::parse_jsonl_lossy(&text);
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.events.len(), 2);
    }

    #[test]
    fn tee_respects_each_arms_wants() {
        struct OnlyCheckpoints(Vec<RunEvent>);
        impl Sink for OnlyCheckpoints {
            fn record(&mut self, event: &RunEvent) {
                self.0.push(event.clone());
            }
            fn wants(&self, kind: EventKind) -> bool {
                kind == EventKind::CheckpointWritten
            }
        }
        let mut tee = Tee::new(OnlyCheckpoints(Vec::new()), MemorySink::new());
        assert!(tee.wants(EventKind::CheckpointWritten));
        assert!(tee.wants(EventKind::Promotion));
        tee.record(&sample(1));
        tee.record(&RunEvent::Promotion {
            generation: 2,
            promoted: 0,
            candidates: 0,
        });
        let (filtered, all) = tee.into_inner();
        assert_eq!(filtered.0.len(), 1);
        assert_eq!(all.events().len(), 2);
    }
}
