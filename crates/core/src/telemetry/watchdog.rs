//! Run-health watchdogs: sinks that watch the event stream for
//! pathological run shapes — convergence stalls, partitions stuck
//! infeasible as phase I runs out of road, evaluation fault storms —
//! and emit structured [`HealthWarning`]s.
//!
//! Watchdogs are ordinary [`Sink`]s, so they compose with byte-stream
//! or metrics sinks through [`Tee`](super::sink::Tee) and obey the same
//! contract: they observe, they never steer, and a healthy run leaves
//! every watchdog silent.

use std::collections::VecDeque;
use std::io;

use moea::hypervolume::hypervolume;

use super::event::{EventKind, RunEvent};
use super::sink::Sink;

/// A structured warning emitted by a run-health watchdog.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthWarning {
    /// Stable identifier of the watchdog that fired (`"stall"`,
    /// `"infeasibility"`, `"fault_rate"`).
    pub watchdog: &'static str,
    /// Generation at which the condition was detected.
    pub generation: usize,
    /// Human-readable description of the condition.
    pub message: String,
}

/// Detects convergence stalls: fires when, over a sliding window of
/// generations, the feasible-front hypervolume fails to improve *and*
/// the feasible count fails to grow.
///
/// Fires once per plateau episode; any subsequent improvement re-arms
/// the detector. Runs shorter than the window never fire.
#[derive(Debug, Clone)]
pub struct StallDetector {
    ref_point: Vec<f64>,
    window: usize,
    tolerance: f64,
    history: VecDeque<(f64, usize)>,
    armed: bool,
    warnings: Vec<HealthWarning>,
}

impl StallDetector {
    /// Creates a detector with hypervolume measured against `ref_point`
    /// (one coordinate per objective, minimized space) and a plateau
    /// window of `window` generations. `window` is clamped to at
    /// least 1.
    pub fn new(ref_point: Vec<f64>, window: usize) -> Self {
        StallDetector {
            ref_point,
            window: window.max(1),
            tolerance: 1e-9,
            history: VecDeque::new(),
            armed: true,
            warnings: Vec::new(),
        }
    }

    /// Overrides the relative hypervolume-improvement tolerance below
    /// which a window counts as flat (default `1e-9`).
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Warnings emitted so far.
    pub fn warnings(&self) -> &[HealthWarning] {
        &self.warnings
    }

    /// Consumes the detector, returning its warnings.
    pub fn into_warnings(self) -> Vec<HealthWarning> {
        self.warnings
    }
}

impl Sink for StallDetector {
    fn record(&mut self, event: &RunEvent) {
        let RunEvent::GenerationEnd {
            generation,
            feasible,
            front,
            ..
        } = event
        else {
            return;
        };
        let hv = if front.is_empty() {
            0.0
        } else {
            hypervolume(front, &self.ref_point)
        };
        self.history.push_back((hv, *feasible));
        // A window of W generations needs W+1 samples: the base plus W
        // generations that failed to move it.
        if self.history.len() > self.window + 1 {
            self.history.pop_front();
        }
        if self.history.len() < self.window + 1 {
            return;
        }
        let (base_hv, base_feasible) = self.history[0];
        let threshold = base_hv.abs().max(1.0) * self.tolerance;
        let stalled = hv - base_hv <= threshold && *feasible <= base_feasible;
        if stalled {
            if self.armed {
                self.armed = false;
                self.warnings.push(HealthWarning {
                    watchdog: "stall",
                    generation: *generation,
                    message: format!(
                        "no hypervolume or feasibility improvement over the last {} \
                         generations (hypervolume {:.6e}, {} feasible)",
                        self.window, hv, feasible
                    ),
                });
            }
        } else {
            self.armed = true;
        }
    }

    fn wants(&self, kind: EventKind) -> bool {
        kind == EventKind::GenerationEnd
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Warns when phase I (the feasibility hunt) approaches its generation
/// cap with the run still in phase 1 — i.e. some partition has yet to
/// produce a constraint-satisfying member, so the phase is about to be
/// cut off by the cap rather than by success.
///
/// The trigger is the phase marker on [`RunEvent::GenerationEnd`], not
/// [`RunEvent::PartitionFeasible`] counting: partitions that start out
/// feasible emit no event, so event counts alone cannot prove
/// infeasibility. Feasibility events observed so far are still reported
/// in the warning for context. Fires at most once per run.
#[derive(Debug, Clone)]
pub struct InfeasibilityAlarm {
    phase1_cap: usize,
    warn_at: usize,
    feasible_events: usize,
    fired: bool,
    warnings: Vec<HealthWarning>,
}

impl InfeasibilityAlarm {
    /// Creates an alarm for a run whose phase I is capped at
    /// `phase1_cap` generations, warning once 80% of the cap has been
    /// spent without leaving phase 1.
    pub fn new(phase1_cap: usize) -> Self {
        InfeasibilityAlarm::with_warn_fraction(phase1_cap, 0.8)
    }

    /// Creates an alarm warning once `fraction` (clamped to `(0, 1]`)
    /// of `phase1_cap` has been spent without leaving phase 1.
    pub fn with_warn_fraction(phase1_cap: usize, fraction: f64) -> Self {
        let fraction = fraction.clamp(f64::EPSILON, 1.0);
        // Round up so a fraction of e.g. 0.8 over a cap of 10 arms at
        // generation 8, and a cap of 1 arms at generation 1.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let warn_at = (phase1_cap as f64 * fraction).ceil().max(1.0) as usize;
        InfeasibilityAlarm {
            phase1_cap,
            warn_at,
            feasible_events: 0,
            fired: false,
            warnings: Vec::new(),
        }
    }

    /// Warnings emitted so far.
    pub fn warnings(&self) -> &[HealthWarning] {
        &self.warnings
    }

    /// Consumes the alarm, returning its warnings.
    pub fn into_warnings(self) -> Vec<HealthWarning> {
        self.warnings
    }
}

impl Sink for InfeasibilityAlarm {
    fn record(&mut self, event: &RunEvent) {
        match event {
            RunEvent::PartitionFeasible { .. } => self.feasible_events += 1,
            RunEvent::GenerationEnd {
                generation, phase, ..
            } if *phase == 1 && *generation >= self.warn_at && !self.fired => {
                self.fired = true;
                self.warnings.push(HealthWarning {
                    watchdog: "infeasibility",
                    generation: *generation,
                    message: format!(
                        "still in phase I at generation {} of a {}-generation cap \
                         ({} partition-feasibility events so far); some partitions \
                         may never satisfy their constraints",
                        generation, self.phase1_cap, self.feasible_events
                    ),
                });
            }
            _ => {}
        }
    }

    fn wants(&self, kind: EventKind) -> bool {
        matches!(
            kind,
            EventKind::GenerationEnd | EventKind::PartitionFeasible
        )
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Warns when the per-generation evaluation-fault episode rate (fault
/// episodes — retries-to-success plus quarantines — divided by the
/// objective evaluations attempted that generation) exceeds a
/// threshold.
///
/// One warning per offending generation, so a sustained fault storm is
/// visible as a burst of warnings rather than a single line.
#[derive(Debug, Clone)]
pub struct FaultRateAlarm {
    max_rate: f64,
    episodes: u64,
    quarantined: u64,
    last_evaluations: u64,
    warnings: Vec<HealthWarning>,
}

impl FaultRateAlarm {
    /// Creates an alarm firing when more than `max_rate` fault episodes
    /// occur per evaluation in a single generation (e.g. `0.1` = one
    /// episode per ten evaluations).
    pub fn new(max_rate: f64) -> Self {
        FaultRateAlarm {
            max_rate: max_rate.max(0.0),
            episodes: 0,
            quarantined: 0,
            last_evaluations: 0,
            warnings: Vec::new(),
        }
    }

    /// Warnings emitted so far.
    pub fn warnings(&self) -> &[HealthWarning] {
        &self.warnings
    }

    /// Consumes the alarm, returning its warnings.
    pub fn into_warnings(self) -> Vec<HealthWarning> {
        self.warnings
    }
}

impl Sink for FaultRateAlarm {
    fn record(&mut self, event: &RunEvent) {
        match event {
            RunEvent::EvaluationFault { resolution, .. } => {
                self.episodes += 1;
                if matches!(resolution, engine::FaultResolution::Quarantined) {
                    self.quarantined += 1;
                }
            }
            RunEvent::GenerationEnd {
                generation,
                evaluations,
                ..
            } => {
                let delta = evaluations.saturating_sub(self.last_evaluations);
                self.last_evaluations = *evaluations;
                let episodes = std::mem::take(&mut self.episodes);
                let quarantined = std::mem::take(&mut self.quarantined);
                if delta == 0 {
                    return;
                }
                #[allow(clippy::cast_precision_loss)]
                let rate = episodes as f64 / delta as f64;
                if rate > self.max_rate {
                    self.warnings.push(HealthWarning {
                        watchdog: "fault_rate",
                        generation: *generation,
                        message: format!(
                            "{episodes} fault episodes ({quarantined} quarantined) across \
                             {delta} evaluations this generation — rate {rate:.3} exceeds \
                             threshold {:.3}",
                            self.max_rate
                        ),
                    });
                }
            }
            _ => {}
        }
    }

    fn wants(&self, kind: EventKind) -> bool {
        matches!(kind, EventKind::GenerationEnd | EventKind::EvaluationFault)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{FaultKind, FaultResolution};

    fn gen_end(generation: usize, phase: u8, evaluations: u64, front: Vec<Vec<f64>>) -> RunEvent {
        RunEvent::GenerationEnd {
            generation,
            phase,
            temperature: 1.0,
            promoted: 0,
            feasible: front.len(),
            population: 40,
            evaluations,
            front,
        }
    }

    fn fault(generation: usize, resolution: FaultResolution) -> RunEvent {
        RunEvent::EvaluationFault {
            generation,
            kind: FaultKind::Panic,
            failures: 1,
            resolution,
        }
    }

    #[test]
    fn stall_detector_fires_once_on_plateau_and_rearms() {
        let mut dog = StallDetector::new(vec![10.0, 10.0], 3);
        // Improving prefix: no warning.
        for g in 1..=3 {
            let x = f64::from(g);
            dog.record(&gen_end(g as usize, 2, 40, vec![vec![5.0 - x, 5.0 - x]]));
        }
        assert!(dog.warnings().is_empty());
        // Flat for longer than the window: exactly one warning.
        for g in 4..=9 {
            dog.record(&gen_end(g, 2, 40, vec![vec![2.0, 2.0]]));
        }
        assert_eq!(dog.warnings().len(), 1);
        assert_eq!(dog.warnings()[0].watchdog, "stall");
        // Base is generation 3; generations 4-6 are the flat window.
        assert_eq!(dog.warnings()[0].generation, 6);
        // Improvement re-arms; a second plateau fires again.
        dog.record(&gen_end(10, 2, 40, vec![vec![1.0, 1.0]]));
        for g in 11..=14 {
            dog.record(&gen_end(g, 2, 40, vec![vec![1.0, 1.0]]));
        }
        assert_eq!(dog.warnings().len(), 2);
    }

    #[test]
    fn stall_detector_counts_feasibility_growth_as_progress() {
        let mut dog = StallDetector::new(vec![10.0, 10.0], 2);
        // Hypervolume is flat but the feasible count keeps growing, as
        // in phase I before any front exists: healthy, not a stall.
        for g in 1..=8 {
            let mut event = gen_end(g, 1, 40, vec![]);
            if let RunEvent::GenerationEnd { feasible, .. } = &mut event {
                *feasible = g;
            }
            dog.record(&event);
        }
        assert!(dog.warnings().is_empty());
    }

    #[test]
    fn stall_detector_silent_on_short_runs() {
        let mut dog = StallDetector::new(vec![10.0, 10.0], 5);
        for g in 1..=5 {
            dog.record(&gen_end(g, 2, 40, vec![vec![2.0, 2.0]]));
        }
        assert!(dog.warnings().is_empty());
    }

    #[test]
    fn infeasibility_alarm_fires_near_cap_only_in_phase_one() {
        let mut alarm = InfeasibilityAlarm::new(10);
        alarm.record(&RunEvent::PartitionFeasible {
            generation: 2,
            partition: 0,
        });
        for g in 1..=7 {
            alarm.record(&gen_end(g, 1, 40, vec![]));
        }
        assert!(alarm.warnings().is_empty());
        alarm.record(&gen_end(8, 1, 40, vec![]));
        alarm.record(&gen_end(9, 1, 40, vec![]));
        let warnings = alarm.warnings();
        assert_eq!(warnings.len(), 1, "fires once, not per generation");
        assert_eq!(warnings[0].watchdog, "infeasibility");
        assert_eq!(warnings[0].generation, 8);
        assert!(warnings[0].message.contains("1 partition-feasibility"));
    }

    #[test]
    fn infeasibility_alarm_silent_when_phase_two_reached_in_time() {
        let mut alarm = InfeasibilityAlarm::new(10);
        for g in 1..=4 {
            alarm.record(&gen_end(g, 1, 40, vec![]));
        }
        for g in 5..=20 {
            alarm.record(&gen_end(g, 2, 40, vec![vec![1.0, 1.0]]));
        }
        assert!(alarm.warnings().is_empty());
    }

    #[test]
    fn fault_rate_alarm_fires_per_offending_generation() {
        let mut alarm = FaultRateAlarm::new(0.1);
        // Generation 1: 3 episodes over 10 evaluations = 0.3 > 0.1.
        alarm.record(&fault(1, FaultResolution::Recovered));
        alarm.record(&fault(1, FaultResolution::Quarantined));
        alarm.record(&fault(1, FaultResolution::Recovered));
        alarm.record(&gen_end(1, 2, 10, vec![]));
        // Generation 2: quiet.
        alarm.record(&gen_end(2, 2, 20, vec![]));
        // Generation 3: 1 episode over 10 evaluations = 0.1, not > 0.1.
        alarm.record(&fault(3, FaultResolution::Recovered));
        alarm.record(&gen_end(3, 2, 30, vec![]));
        let warnings = alarm.warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].watchdog, "fault_rate");
        assert_eq!(warnings[0].generation, 1);
        assert!(warnings[0].message.contains("1 quarantined"));
    }

    #[test]
    fn fault_rate_alarm_silent_on_fault_free_stream() {
        let mut alarm = FaultRateAlarm::new(0.01);
        for g in 1..=10 {
            alarm.record(&gen_end(g, 2, g as u64 * 40, vec![]));
        }
        assert!(alarm.warnings().is_empty());
    }

    #[test]
    fn watchdogs_want_only_their_inputs() {
        let stall = StallDetector::new(vec![1.0, 1.0], 5);
        assert!(stall.wants(EventKind::GenerationEnd));
        assert!(!stall.wants(EventKind::StageTiming));
        assert!(!stall.wants(EventKind::EvaluationFault));

        let infeasible = InfeasibilityAlarm::new(10);
        assert!(infeasible.wants(EventKind::GenerationEnd));
        assert!(infeasible.wants(EventKind::PartitionFeasible));
        assert!(!infeasible.wants(EventKind::Promotion));

        let faults = FaultRateAlarm::new(0.5);
        assert!(faults.wants(EventKind::EvaluationFault));
        assert!(faults.wants(EventKind::GenerationEnd));
        assert!(!faults.wants(EventKind::CheckpointWritten));
    }
}
