//! The simulated-annealing machinery of SACGA (Sec. 4.4 of the paper).
//!
//! Three pieces:
//!
//! * [`AnnealingSchedule`] — the temperature
//!   `T_A(gen) = T_init · exp(−k₃ · ln(T_init)/span · (gen − gen_t))`,
//!   cooling from `T_init` at the start of phase II down to exactly `1` at
//!   its end (eqn (4));
//! * [`PromotionPolicy`] — the promotion cost
//!   `c(i) = k₁ · exp(k₂ · i/(n−1))` (eqn (2)) and participation
//!   probability `prob(i, gen) = 1 − exp(−α / (c·T_A))` (eqn (3));
//! * [`ProbabilityShaper`] — closed-form selection of `k₂`, `α`, `T_init`
//!   from three interpretable targets, per the paper's remark that the
//!   constants are "chosen for desired values of probability at
//!   `gen = gen_t + span/2` for `i = 1, n` and at `gen = gen_t + span`".

use moea::OptimizeError;

/// Cooling schedule of eqn (4): `T_A` decays exponentially from `T_init`
/// to `T_init^(1−k₃)` over `span` generations (with the paper's `k₃ = 1`,
/// down to exactly 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealingSchedule {
    /// Initial temperature `T_init` (> 1).
    pub t_init: f64,
    /// Schedule shape constant `k₃` (> 0); the paper cools to 1, i.e.
    /// `k₃ = 1`.
    pub k3: f64,
    /// Number of phase-II generations over which to cool.
    pub span: usize,
}

impl AnnealingSchedule {
    /// Creates a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when `t_init <= 1` or
    /// `k3 <= 0`.
    pub fn new(t_init: f64, k3: f64, span: usize) -> Result<Self, OptimizeError> {
        if t_init.is_nan() || t_init <= 1.0 {
            return Err(OptimizeError::invalid_config(
                "t_init",
                format!("must exceed 1, got {t_init}"),
            ));
        }
        if k3.is_nan() || k3 <= 0.0 {
            return Err(OptimizeError::invalid_config(
                "k3",
                format!("must be positive, got {k3}"),
            ));
        }
        Ok(AnnealingSchedule { t_init, k3, span })
    }

    /// Temperature at `elapsed = gen − gen_t` phase-II generations.
    ///
    /// `elapsed` is clamped to `[0, span]`; a zero-span schedule is always
    /// fully cooled.
    pub fn temperature(&self, elapsed: usize) -> f64 {
        if self.span == 0 {
            return self.t_init.powf(1.0 - self.k3);
        }
        let e = elapsed.min(self.span) as f64;
        self.t_init * (-self.k3 * self.t_init.ln() / self.span as f64 * e).exp()
    }
}

/// Promotion policy of eqns (2) and (3): which locally superior solutions
/// join the global competition, as a function of their (randomized) index
/// `i` within their partition and the annealing temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromotionPolicy {
    /// Cost scale `k₁` (> 0).
    pub k1: f64,
    /// Cost growth `k₂` (≥ 0): later-considered solutions cost more.
    pub k2: f64,
    /// Probability scale `α` (> 0).
    pub alpha: f64,
    /// Desired number of globally superior solutions per partition (`n` of
    /// the paper, ≥ 2) — normalizes the index in the cost exponent.
    pub n_superior: usize,
}

impl PromotionPolicy {
    /// Creates a policy.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] for non-positive `k1`/
    /// `alpha`, negative `k2`, or `n_superior < 2`.
    pub fn new(k1: f64, k2: f64, alpha: f64, n_superior: usize) -> Result<Self, OptimizeError> {
        if k1.is_nan() || k1 <= 0.0 {
            return Err(OptimizeError::invalid_config("k1", "must be positive"));
        }
        if k2.is_nan() || k2 < 0.0 {
            return Err(OptimizeError::invalid_config("k2", "must be non-negative"));
        }
        if alpha.is_nan() || alpha <= 0.0 {
            return Err(OptimizeError::invalid_config("alpha", "must be positive"));
        }
        if n_superior < 2 {
            return Err(OptimizeError::invalid_config(
                "n_superior",
                "must be at least 2",
            ));
        }
        Ok(PromotionPolicy {
            k1,
            k2,
            alpha,
            n_superior,
        })
    }

    /// Promotion cost `c(i) = k₁·exp(k₂·i/(n−1))` for the 1-based index
    /// `i` (eqn (2)).
    pub fn cost(&self, i: usize) -> f64 {
        self.k1 * (self.k2 * i as f64 / (self.n_superior - 1) as f64).exp()
    }

    /// Participation probability `1 − exp(−α/(c·T_A))` (eqn (3)).
    pub fn probability(&self, i: usize, temperature: f64) -> f64 {
        let c = self.cost(i);
        1.0 - (-self.alpha / (c * temperature.max(1e-12))).exp()
    }
}

/// Closed-form solver for the annealing constants from three interpretable
/// probability targets (the paper's Fig. 4 methodology), with `k₁ = 1` and
/// `k₃ = 1`:
///
/// * `p_mid_first` — probability of the **first**-considered locally
///   superior solution (`i = 1`) at mid-span;
/// * `p_mid_last` — probability of the `i = n` solution at mid-span;
/// * `p_end_last` — probability of the `i = n` solution at the end of the
///   span (every earlier solution is then even more likely).
///
/// Derivation (with `T_A(mid) = √T_init`, `T_A(end) = 1`): writing
/// `aₓ = −ln(1−pₓ)`,
///
/// ```text
/// k₂      = ln(a_mid_first / a_mid_last)
/// √T_init = a_end_last / a_mid_last
/// α       = a_end_last · exp(k₂ · n/(n−1))
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityShaper {
    /// Target probability for `i = 1` at mid-span.
    pub p_mid_first: f64,
    /// Target probability for `i = n` at mid-span.
    pub p_mid_last: f64,
    /// Target probability for `i = n` at the end of the span.
    pub p_end_last: f64,
}

impl ProbabilityShaper {
    /// The default targets used throughout this workspace: 0.5 / 0.1 / 0.9.
    /// They reproduce the qualitative shape of the paper's Fig. 4.
    pub fn standard() -> Self {
        ProbabilityShaper {
            p_mid_first: 0.5,
            p_mid_last: 0.1,
            p_end_last: 0.9,
        }
    }

    /// Creates a shaper from explicit targets.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] unless
    /// `0 < p_mid_last < p_mid_first < 1`, `p_mid_last < p_end_last < 1`.
    pub fn new(p_mid_first: f64, p_mid_last: f64, p_end_last: f64) -> Result<Self, OptimizeError> {
        let in_unit = |p: f64| p > 0.0 && p < 1.0;
        if !in_unit(p_mid_first) || !in_unit(p_mid_last) || !in_unit(p_end_last) {
            return Err(OptimizeError::invalid_config(
                "probability_targets",
                "all targets must lie strictly inside (0, 1)",
            ));
        }
        if p_mid_last >= p_mid_first {
            return Err(OptimizeError::invalid_config(
                "probability_targets",
                "the first-considered solution must be more likely than the last at mid-span",
            ));
        }
        if p_mid_last >= p_end_last {
            return Err(OptimizeError::invalid_config(
                "probability_targets",
                "the end-of-span probability must exceed the mid-span one",
            ));
        }
        Ok(ProbabilityShaper {
            p_mid_first,
            p_mid_last,
            p_end_last,
        })
    }

    /// Solves the constants for a given `n` and `span`, returning the
    /// ready-to-use `(policy, schedule)` pair.
    ///
    /// # Errors
    ///
    /// Propagates construction errors (only possible for degenerate
    /// targets, e.g. equal probabilities collapsing `T_init` to 1).
    pub fn solve(
        &self,
        n_superior: usize,
        span: usize,
    ) -> Result<(PromotionPolicy, AnnealingSchedule), OptimizeError> {
        let n = n_superior.max(2);
        let a_mid_first = -(1.0 - self.p_mid_first).ln();
        let a_mid_last = -(1.0 - self.p_mid_last).ln();
        let a_end_last = -(1.0 - self.p_end_last).ln();
        let k2 = (a_mid_first / a_mid_last).ln();
        let sqrt_t = a_end_last / a_mid_last;
        let t_init = sqrt_t * sqrt_t;
        let alpha = a_end_last * (k2 * n as f64 / (n - 1) as f64).exp();
        let policy = PromotionPolicy::new(1.0, k2, alpha, n)?;
        let schedule = AnnealingSchedule::new(t_init, 1.0, span)?;
        Ok((policy, schedule))
    }
}

impl Default for ProbabilityShaper {
    fn default() -> Self {
        ProbabilityShaper::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_cools_from_tinit_to_one() {
        let s = AnnealingSchedule::new(479.0, 1.0, 100).unwrap();
        assert!((s.temperature(0) - 479.0).abs() < 1e-9);
        assert!((s.temperature(100) - 1.0).abs() < 1e-9);
        // mid-span: sqrt(T_init)
        assert!((s.temperature(50) - 479.0_f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn schedule_is_monotone_decreasing() {
        let s = AnnealingSchedule::new(100.0, 1.0, 60).unwrap();
        let mut prev = f64::INFINITY;
        for g in 0..=60 {
            let t = s.temperature(g);
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    fn schedule_clamps_beyond_span() {
        let s = AnnealingSchedule::new(100.0, 1.0, 10).unwrap();
        assert_eq!(s.temperature(10), s.temperature(99));
    }

    #[test]
    fn zero_span_schedule_is_cooled() {
        let s = AnnealingSchedule::new(100.0, 1.0, 0).unwrap();
        assert!((s.temperature(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_rejects_bad_inputs() {
        assert!(AnnealingSchedule::new(1.0, 1.0, 10).is_err());
        assert!(AnnealingSchedule::new(10.0, 0.0, 10).is_err());
    }

    #[test]
    fn cost_grows_with_index() {
        let p = PromotionPolicy::new(1.0, 1.884, 2.3, 5).unwrap();
        let costs: Vec<f64> = (1..=5).map(|i| p.cost(i)).collect();
        for w in costs.windows(2) {
            assert!(w[1] > w[0]);
        }
        // c(i) = exp(k2 * i / 4)
        assert!((p.cost(4) - (1.884_f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn probability_in_unit_interval_and_monotone() {
        let p = PromotionPolicy::new(1.0, 1.884, 2.3, 5).unwrap();
        for &t in &[1.0, 10.0, 479.0] {
            for i in 1..=5 {
                let pr = p.probability(i, t);
                assert!((0.0..=1.0).contains(&pr), "prob {pr}");
                if i > 1 {
                    assert!(pr <= p.probability(i - 1, t) + 1e-12);
                }
            }
        }
        // hotter temperature => lower probability
        assert!(p.probability(1, 479.0) < p.probability(1, 1.0));
    }

    #[test]
    fn shaper_hits_its_targets_exactly() {
        let shaper = ProbabilityShaper::standard();
        let (policy, schedule) = shaper.solve(5, 100).unwrap();
        let t_mid = schedule.temperature(50);
        let t_end = schedule.temperature(100);
        assert!((policy.probability(1, t_mid) - 0.5).abs() < 1e-9);
        assert!((policy.probability(5, t_mid) - 0.1).abs() < 1e-9);
        assert!((policy.probability(5, t_end) - 0.9).abs() < 1e-9);
        // earlier indices at the end are even more likely
        assert!(policy.probability(1, t_end) > 0.99);
    }

    #[test]
    fn shaper_closed_form_constants() {
        // Independent recomputation of the derivation for n = 5.
        let shaper = ProbabilityShaper::standard();
        let (policy, schedule) = shaper.solve(5, 100).unwrap();
        let a1 = -(0.5_f64.ln()); // -ln(1-0.5)
        let a2 = -(0.9_f64.ln()); // -ln(1-0.1)
        let a3 = -(0.1_f64.ln()); // -ln(1-0.9)
        assert!((policy.k2 - (a1 / a2).ln()).abs() < 1e-12);
        assert!((schedule.t_init - (a3 / a2).powi(2)).abs() < 1e-9);
        assert!((policy.alpha - a3 * (policy.k2 * 5.0 / 4.0).exp()).abs() < 1e-9);
    }

    #[test]
    fn shaper_reproduces_fig4_shape() {
        // Fig. 4: n = 5, span = 100; probabilities start near 0, fan out,
        // and all approach ~1 by the end of the span, ordered by i.
        let (policy, schedule) = ProbabilityShaper::standard().solve(5, 100).unwrap();
        let p_start: Vec<f64> = (1..=5)
            .map(|i| policy.probability(i, schedule.temperature(0)))
            .collect();
        let p_end: Vec<f64> = (1..=5)
            .map(|i| policy.probability(i, schedule.temperature(100)))
            .collect();
        assert!(p_start.iter().all(|&p| p < 0.05), "{p_start:?}");
        assert!(p_end[0] > 0.99);
        assert!(p_end[4] > 0.85);
        for w in p_end.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn shaper_rejects_inconsistent_targets() {
        assert!(ProbabilityShaper::new(0.1, 0.5, 0.9).is_err()); // first < last
        assert!(ProbabilityShaper::new(0.5, 0.4, 0.2).is_err()); // end < mid
        assert!(ProbabilityShaper::new(1.0, 0.1, 0.9).is_err()); // out of (0,1)
    }

    #[test]
    fn shaper_works_for_other_n() {
        for n in [2usize, 3, 8, 12] {
            let (policy, schedule) = ProbabilityShaper::standard().solve(n, 50).unwrap();
            let t_mid = schedule.temperature(25);
            assert!((policy.probability(1, t_mid) - 0.5).abs() < 1e-9, "n={n}");
            assert!((policy.probability(n, t_mid) - 0.1).abs() < 1e-9, "n={n}");
        }
    }
}
