//! The pure local-competition GA of Sec. 4.3 — a thin preset over the
//! SACGA engine with promotion disabled.
//!
//! Within each iteration, only local competition happens inside each
//! partition; a Global Mating Pool is still drawn by rank-based selection
//! over the whole population, and a single global competition at output
//! time extracts the Global Pareto Front. The paper observes that this
//! preserves diversity well but advances the front "extremely slowly"
//! because many locally superior solutions are globally inferior — the
//! motivation for SACGA's annealed promotion.

use crate::checkpoint::SacgaCheckpoint;
use crate::sacga::{CompetitionMode, Sacga, SacgaConfig, SacgaConfigBuilder};
use crate::telemetry::{Optimizer, Sink};
use moea::problem::Problem;
use moea::{OptimizeError, RunOutcome, RunStatus};

/// The pure local-competition GA.
///
/// # Examples
///
/// ```
/// use sacga::local::LocalCompetitionGa;
/// use moea::problems::Schaffer;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// use sacga::local::LocalCompetitionGaBuilder;
///
/// let ga = LocalCompetitionGaBuilder::new()
///     .population_size(40)
///     .generations(30)
///     .partitions(6)
///     .build(Schaffer::new())?;
/// let result = ga.run_seeded(7)?;
/// assert!(!result.front.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LocalCompetitionGa<P: Problem> {
    inner: Sacga<P>,
}

impl<P: Problem> LocalCompetitionGa<P> {
    /// Runs with a seeded RNG.
    ///
    /// # Errors
    ///
    /// Propagates problem-definition errors discovered at start-up.
    pub fn run_seeded(&self, seed: u64) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        self.inner.run_seeded(seed)
    }
}

/// The unified run API, delegating to the inner [`Sacga`] engine (which
/// never promotes in `LocalOnly` mode).
impl<P: Problem + Sync> Optimizer for LocalCompetitionGa<P> {
    type Checkpoint = SacgaCheckpoint;

    fn algorithm(&self) -> &'static str {
        "local"
    }

    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        self.inner.run_with(seed, sink)
    }

    fn run_until_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SacgaCheckpoint>, OptimizeError> {
        self.inner.run_until_with(seed, stop_after, sink)
    }

    fn resume_with(
        &self,
        checkpoint: &SacgaCheckpoint,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        self.inner.resume_with(checkpoint, sink)
    }

    fn resume_until_with(
        &self,
        checkpoint: &SacgaCheckpoint,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SacgaCheckpoint>, OptimizeError> {
        self.inner.resume_until_with(checkpoint, stop_after, sink)
    }
}

/// Builder for [`LocalCompetitionGa`].
#[derive(Debug, Clone)]
pub struct LocalCompetitionGaBuilder {
    inner: SacgaConfigBuilder,
}

impl Default for LocalCompetitionGaBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalCompetitionGaBuilder {
    /// Starts a builder with the default SACGA parameters.
    pub fn new() -> Self {
        LocalCompetitionGaBuilder {
            inner: SacgaConfig::builder(),
        }
    }

    /// Sets the population size.
    pub fn population_size(mut self, n: usize) -> Self {
        self.inner = self.inner.population_size(n);
        self
    }

    /// Sets the generation budget.
    pub fn generations(mut self, n: usize) -> Self {
        self.inner = self.inner.generations(n);
        self
    }

    /// Sets the partition count.
    pub fn partitions(mut self, m: usize) -> Self {
        self.inner = self.inner.partitions(m);
        self
    }

    /// Fixes the partitioned objective range.
    pub fn slice_range(mut self, lo: f64, hi: f64) -> Self {
        self.inner = self.inner.slice_range(lo, hi);
        self
    }

    /// Chooses the partitioned objective.
    pub fn slice_objective(mut self, k: usize) -> Self {
        self.inner = self.inner.slice_objective(k);
        self
    }

    /// Replaces the whole engine-knob bundle at once (see
    /// [`moea::EngineSetup`]).
    pub fn engine_setup(mut self, exec: moea::setup::EngineSetup) -> Self {
        self.inner = self.inner.engine_setup(exec);
        self
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<engine::EvaluatorKind>) -> Self {
        self.inner = self.inner.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.inner = self.inner.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.inner = self.inner.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy for candidate evaluation.
    pub fn fault_policy(mut self, fault: engine::FaultPolicy) -> Self {
        self.inner = self.inner.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection with the given plan.
    pub fn inject_faults(mut self, plan: engine::FaultPlan) -> Self {
        self.inner = self.inner.inject_faults(plan);
        self
    }

    /// Routes memoization through a cache pooled across concurrent runs
    /// (see [`SacgaConfigBuilder::shared_cache`]).
    pub fn shared_cache(mut self, cache: engine::SharedCache<moea::Evaluation>) -> Self {
        self.inner = self.inner.shared_cache(cache);
        self
    }

    /// Attaches an opt-in analytic surrogate screen (see
    /// [`SacgaConfigBuilder::surrogate_screen`]): screened runs are not
    /// byte-identical to unscreened ones.
    pub fn surrogate_screen(mut self, screen: engine::SurrogateScreen<moea::Evaluation>) -> Self {
        self.inner = self.inner.surrogate_screen(screen);
        self
    }

    /// Attaches a live [`engine::EngineMetrics`] bundle (see
    /// [`SacgaConfigBuilder::metrics`]).
    pub fn metrics(mut self, metrics: engine::EngineMetrics) -> Self {
        self.inner = self.inner.metrics(metrics);
        self
    }

    /// Finalizes against a problem.
    ///
    /// # Errors
    ///
    /// Same as [`SacgaConfigBuilder::build`].
    pub fn build<P: Problem>(self, problem: P) -> Result<LocalCompetitionGa<P>, OptimizeError> {
        let config = self.inner.mode(CompetitionMode::LocalOnly).build()?;
        Ok(LocalCompetitionGa {
            inner: Sacga::new(problem, config),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::problems::Schaffer;

    #[test]
    fn local_only_run_produces_front() {
        let ga = LocalCompetitionGaBuilder::new()
            .population_size(30)
            .generations(20)
            .partitions(5)
            .build(Schaffer::new())
            .unwrap();
        let r = ga.run_seeded(3).unwrap();
        assert!(!r.front.is_empty());
        assert!(r.history.iter().all(|h| h.promoted == 0));
    }

    #[test]
    fn local_only_is_deterministic() {
        let make = || {
            LocalCompetitionGaBuilder::new()
                .population_size(30)
                .generations(15)
                .partitions(5)
                .build(Schaffer::new())
                .unwrap()
        };
        let a = make().run_seeded(9).unwrap();
        let b = make().run_seeded(9).unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
    }

    #[test]
    fn events_are_forwarded_from_the_inner_engine() {
        use crate::telemetry::{MemorySink, RunEvent};
        let ga = LocalCompetitionGaBuilder::new()
            .population_size(20)
            .generations(10)
            .partitions(4)
            .build(Schaffer::new())
            .unwrap();
        assert_eq!(ga.algorithm(), "local");
        let mut sink = MemorySink::new();
        let r = ga.run_with(1, &mut sink).unwrap();
        let ends = sink
            .events()
            .iter()
            .filter(|e| matches!(e, RunEvent::GenerationEnd { .. }))
            .count();
        assert_eq!(ends, 10);
        assert_eq!(r.generations, 10);
        // LocalOnly mode never crosses a phase boundary or promotes.
        assert!(!sink.events().iter().any(|e| matches!(
            e,
            RunEvent::PhaseTransition { .. } | RunEvent::Promotion { .. }
        )));
    }
}
