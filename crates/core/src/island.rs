//! Island-model multi-objective GA — the diversity-preservation
//! alternative the paper positions itself against.
//!
//! Sec. 4.1: *"A known method of diversity preservation is parallel
//! population GA with inter-population migration controlled in a tribe or
//! island based framework \[7\], which can be extended for Multi-objective
//! GA. However, in this work, we try to establish that this objective can
//! be accomplished by a simple modification in the traditional
//! single-population GA."*
//!
//! This module provides that baseline so the claim can be tested: `k`
//! islands evolve independently (each an elitist constrained-dominance GA
//! on its own subpopulation, *genotypically* separated rather than
//! objective-space partitioned), with periodic ring migration of each
//! island's best individuals. Compare against SACGA with the
//! `ablation_competition_modes` harness or your own experiments.

use crate::telemetry::{EventKind, NoCheckpoint, NullSink, Optimizer, RunEvent, Sink};
use engine::{EvaluatorKind, Stage, StageTimer};
use moea::individual::Individual;
use moea::operators::{random_vector, Variation};
use moea::problem::Problem;
use moea::selection::binary_tournament;
use moea::sorting::{environmental_selection, rank_and_crowd};
use moea::{GenerationStats, OptimizeError, RunOutcome, RunStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an island-model run. Build with
/// [`IslandConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct IslandConfig {
    population_size: usize,
    generations: usize,
    islands: usize,
    migration_interval: usize,
    migrants: usize,
    variation: Option<Variation>,
    exec: moea::setup::EngineSetup,
}

impl IslandConfig {
    /// Starts a configuration builder.
    pub fn builder() -> IslandConfigBuilder {
        IslandConfigBuilder::default()
    }

    /// Total population across all islands.
    pub fn population_size(&self) -> usize {
        self.population_size
    }

    /// Number of islands.
    pub fn islands(&self) -> usize {
        self.islands
    }

    /// Generation budget.
    pub fn generations(&self) -> usize {
        self.generations
    }
}

/// Builder for [`IslandConfig`].
#[derive(Debug, Clone)]
pub struct IslandConfigBuilder {
    population_size: usize,
    generations: usize,
    islands: usize,
    migration_interval: usize,
    migrants: usize,
    variation: Option<Variation>,
    exec: moea::setup::EngineSetup,
}

impl Default for IslandConfigBuilder {
    fn default() -> Self {
        IslandConfigBuilder {
            population_size: 100,
            generations: 250,
            islands: 5,
            migration_interval: 20,
            migrants: 2,
            variation: None,
            exec: moea::setup::EngineSetup::new(),
        }
    }
}

impl IslandConfigBuilder {
    /// Sets the total population (split evenly across islands).
    pub fn population_size(mut self, n: usize) -> Self {
        self.population_size = n;
        self
    }

    /// Sets the generation budget.
    pub fn generations(mut self, n: usize) -> Self {
        self.generations = n;
        self
    }

    /// Sets the island count (≥ 1).
    pub fn islands(mut self, k: usize) -> Self {
        self.islands = k;
        self
    }

    /// Sets how many generations pass between migrations (≥ 1).
    pub fn migration_interval(mut self, g: usize) -> Self {
        self.migration_interval = g;
        self
    }

    /// Sets how many individuals migrate per island per event.
    pub fn migrants(mut self, m: usize) -> Self {
        self.migrants = m;
        self
    }

    /// Overrides the variation operators.
    pub fn variation(mut self, v: Variation) -> Self {
        self.variation = Some(v);
        self
    }

    /// Replaces the whole engine-knob bundle at once (see
    /// [`moea::EngineSetup`]); the individual knob methods below
    /// delegate to the same bundle.
    pub fn engine_setup(mut self, exec: moea::setup::EngineSetup) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.exec = self.exec.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries
    /// (default: disabled).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.exec = self.exec.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.exec = self.exec.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy for candidate evaluation: retry
    /// budget, non-finite quarantine, and exhaustion behavior.
    pub fn fault_policy(mut self, fault: engine::FaultPolicy) -> Self {
        self.exec = self.exec.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection with the given plan (a
    /// testing/chaos harness — injected faults are reproducible per
    /// candidate).
    pub fn inject_faults(mut self, plan: engine::FaultPlan) -> Self {
        self.exec = self.exec.inject_faults(plan);
        self
    }

    /// Attaches a live [`engine::EngineMetrics`] bundle: the engine
    /// mirrors its counters and latency/batch-size histograms into the
    /// bundle's registry as evaluation happens. Observation only — an
    /// instrumented run is bit-identical to a bare one.
    pub fn metrics(mut self, metrics: engine::EngineMetrics) -> Self {
        self.exec = self.exec.metrics(metrics);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when islands is zero, the
    /// per-island population would drop below 4, the interval is zero, or
    /// migrants exceed the island size.
    pub fn build(self) -> Result<IslandConfig, OptimizeError> {
        if self.islands == 0 {
            return Err(OptimizeError::invalid_config(
                "islands",
                "must be at least 1",
            ));
        }
        if self.generations == 0 {
            return Err(OptimizeError::invalid_config(
                "generations",
                "must be at least 1",
            ));
        }
        let per_island = self.population_size / self.islands;
        if per_island < 4 {
            return Err(OptimizeError::invalid_config(
                "population_size",
                format!(
                    "per-island population must be at least 4, got {per_island} \
                     ({} over {} islands)",
                    self.population_size, self.islands
                ),
            ));
        }
        if self.migration_interval == 0 {
            return Err(OptimizeError::invalid_config(
                "migration_interval",
                "must be at least 1",
            ));
        }
        if self.migrants >= per_island {
            return Err(OptimizeError::invalid_config(
                "migrants",
                format!("must be fewer than the island size {per_island}"),
            ));
        }
        Ok(IslandConfig {
            population_size: self.population_size,
            generations: self.generations,
            islands: self.islands,
            migration_interval: self.migration_interval,
            migrants: self.migrants,
            variation: self.variation,
            exec: self.exec,
        })
    }
}

/// The island-model multi-objective GA.
///
/// # Examples
///
/// ```
/// use sacga::island::{IslandGa, IslandConfig};
/// use moea::problems::Schaffer;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// let config = IslandConfig::builder()
///     .population_size(40)
///     .generations(30)
///     .islands(4)
///     .build()?;
/// let result = IslandGa::new(Schaffer::new(), config).run_seeded(1)?;
/// assert!(!result.front.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IslandGa<P: Problem> {
    problem: P,
    config: IslandConfig,
}

impl<P: Problem> IslandGa<P> {
    /// Creates an optimizer for `problem` with `config`.
    pub fn new(problem: P, config: IslandConfig) -> Self {
        IslandGa { problem, config }
    }

    /// Runs with a seeded RNG.
    ///
    /// # Errors
    ///
    /// Propagates problem-definition errors discovered at start-up and
    /// [`OptimizeError::EvaluationFailed`] when a candidate evaluation
    /// exhausts the fault policy's retry budget with an aborting policy.
    pub fn run_seeded(&self, seed: u64) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        self.drive(seed, &mut NullSink)
    }

    /// The single run loop behind both entry points. Event emission reads
    /// state but never consumes RNG, so seeded runs are bit-identical with
    /// or without a sink.
    fn drive(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        if self.problem.num_objectives() == 0 {
            return Err(OptimizeError::invalid_problem(
                "problem must declare at least one objective",
            ));
        }
        let bounds = self.problem.bounds().clone();
        let variation = self
            .config
            .variation
            .unwrap_or_else(|| Variation::standard(bounds.len()));
        let per_island = self.config.population_size / self.config.islands;
        // One shared engine: the memoization cache spans the archipelago.
        let mut exec = self
            .config
            .exec
            .build_engine(self.problem.cache_canonicalizer());
        let eval_fn = |genes: &[f64]| self.problem.evaluate(genes);
        let batch_fn = |chunk: &[Vec<f64>]| self.problem.evaluate_all(chunk);

        // Draw every island's genes first (sole RNG consumer), then
        // batch-evaluate the whole archipelago in one engine call.
        let init_genes: Vec<Vec<f64>> = (0..self.config.islands * per_island)
            .map(|_| random_vector(&mut rng, &bounds))
            .collect();
        let init_evals = exec.try_evaluate_batch_with(&init_genes, &eval_fn, &batch_fn)?;
        let mut members = init_genes
            .into_iter()
            .zip(init_evals)
            .map(|(genes, ev)| Individual::new(genes, ev));
        let mut islands: Vec<Vec<Individual>> = (0..self.config.islands)
            .map(|_| members.by_ref().take(per_island).collect())
            .collect();
        self.problem.check_evaluation(&islands[0][0].evaluation)?;
        for isl in &mut islands {
            rank_and_crowd(isl);
        }

        let want_fault = sink.wants(EventKind::EvaluationFault);
        let want_generation = sink.wants(EventKind::GenerationEnd);
        let want_promotion = sink.wants(EventKind::Promotion);
        let mut timer = StageTimer::new(sink.wants(EventKind::StageTiming));
        let mut stats_mark = exec.stats().clone();
        if want_fault {
            for fault in exec.take_fault_events() {
                sink.record(&RunEvent::EvaluationFault {
                    generation: 0,
                    kind: fault.kind,
                    failures: fault.failures,
                    resolution: fault.resolution,
                });
            }
        }

        let mut history = Vec::with_capacity(self.config.generations);
        let mut migrations = 0usize;
        for gen in 1..=self.config.generations {
            // Independent evolution on each island (µ+λ with crowded
            // tournament parents).
            for isl in islands.iter_mut() {
                timer.start(Stage::Variation);
                let mut child_genes: Vec<Vec<f64>> = Vec::with_capacity(per_island);
                while child_genes.len() < per_island {
                    let pa = binary_tournament(&mut rng, isl);
                    let pb = binary_tournament(&mut rng, isl);
                    let (c1, c2) =
                        variation.offspring(&mut rng, &isl[pa].genes, &isl[pb].genes, &bounds);
                    child_genes.push(c1);
                    if child_genes.len() < per_island {
                        child_genes.push(c2);
                    }
                }
                timer.start(Stage::Evaluation);
                let evals = exec.try_evaluate_batch_with(&child_genes, &eval_fn, &batch_fn)?;
                timer.start(Stage::Selection);
                let offspring: Vec<Individual> = child_genes
                    .into_iter()
                    .zip(evals)
                    .map(|(genes, ev)| Individual::new(genes, ev))
                    .collect();
                let mut combined = std::mem::take(isl);
                combined.extend(offspring);
                *isl = environmental_selection(combined, per_island);
                timer.stop();
            }

            // Ring migration.
            timer.start(Stage::Promotion);
            let mut migrated = 0usize;
            if gen % self.config.migration_interval == 0 && self.config.islands > 1 {
                migrations += 1;
                let k = islands.len();
                let mut candidates = 0usize;
                let mut outgoing: Vec<Vec<Individual>> = Vec::with_capacity(k);
                for isl in &islands {
                    let rank0: Vec<&Individual> = isl.iter().filter(|m| m.rank == 0).collect();
                    candidates += if rank0.is_empty() {
                        isl.len()
                    } else {
                        rank0.len()
                    };
                    let mut picks = Vec::with_capacity(self.config.migrants);
                    for _ in 0..self.config.migrants {
                        let src = if rank0.is_empty() {
                            &isl[rng.gen_range(0..isl.len())]
                        } else {
                            rank0[rng.gen_range(0..rank0.len())]
                        };
                        picks.push(src.clone());
                    }
                    outgoing.push(picks);
                }
                for (i, picks) in outgoing.into_iter().enumerate() {
                    let dst = (i + 1) % k;
                    let isl = &mut islands[dst];
                    let mut combined = std::mem::take(isl);
                    combined.extend(picks);
                    *isl = environmental_selection(combined, per_island);
                }
                migrated = k * self.config.migrants;
                if want_promotion {
                    sink.record(&RunEvent::Promotion {
                        generation: gen,
                        promoted: migrated,
                        candidates,
                    });
                }
            }
            timer.stop();

            let feasible = islands.iter().flatten().filter(|m| m.is_feasible()).count();
            history.push(GenerationStats {
                generation: gen,
                phase: 2,
                temperature: 1.0,
                promoted: migrated,
                feasible,
                population: per_island * self.config.islands,
            });
            if want_fault {
                for fault in exec.take_fault_events() {
                    sink.record(&RunEvent::EvaluationFault {
                        generation: gen,
                        kind: fault.kind,
                        failures: fault.failures,
                        resolution: fault.resolution,
                    });
                }
            }
            if want_generation {
                sink.record(&RunEvent::GenerationEnd {
                    generation: gen,
                    phase: 2,
                    temperature: 1.0,
                    promoted: migrated,
                    feasible,
                    population: per_island * self.config.islands,
                    evaluations: exec.stats().evaluations,
                    front: merged_front_objectives(&islands),
                });
            }
            if timer.is_enabled() {
                let stages = timer.take();
                let delta = exec.stats().since(&stats_mark);
                stats_mark = exec.stats().clone();
                sink.record(&RunEvent::StageTiming {
                    generation: gen,
                    stages,
                    candidates: delta.candidates,
                    evaluations: delta.evaluations,
                    cache_hits: delta.cache_hits,
                });
            }
        }

        // Final global competition over the merged archipelago.
        let mut population: Vec<Individual> = islands.into_iter().flatten().collect();
        rank_and_crowd(&mut population);
        let front = population
            .iter()
            .filter(|m| m.rank == 0 && m.is_feasible())
            .cloned()
            .collect();
        let stats = exec.into_stats();
        Ok(RunOutcome {
            population,
            front,
            evaluations: stats.evaluations as usize,
            generations: self.config.generations,
            gen_t: 0,
            history,
            phase_fronts: Vec::new(),
            migrations,
            stats,
        })
    }
}

/// Feasible globally non-dominated front of the merged archipelago,
/// computed on a clone so ranking never disturbs the islands. Shared
/// with the cellular loop, whose cells are islands by another name.
pub(crate) fn merged_front_objectives(islands: &[Vec<Individual>]) -> Vec<Vec<f64>> {
    let mut pop: Vec<Individual> = islands.iter().flatten().cloned().collect();
    rank_and_crowd(&mut pop);
    pop.iter()
        .filter(|m| m.rank == 0 && m.is_feasible())
        .map(|m| m.objectives().to_vec())
        .collect()
}

/// The unified run API. The island model cannot suspend, so
/// [`Optimizer::Checkpoint`] is the uninhabited [`NoCheckpoint`] and
/// bounded runs are rejected.
impl<P: Problem + Sync> Optimizer for IslandGa<P> {
    type Checkpoint = NoCheckpoint;

    fn algorithm(&self) -> &'static str {
        "island"
    }

    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        self.drive(seed, sink)
    }

    fn run_until_with(
        &self,
        _seed: u64,
        _stop_after: usize,
        _sink: &mut dyn Sink,
    ) -> Result<RunStatus<NoCheckpoint>, OptimizeError> {
        Err(OptimizeError::invalid_config(
            "stop_after",
            "the island model does not support suspension; use run",
        ))
    }

    fn resume_with(
        &self,
        checkpoint: &NoCheckpoint,
        _sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        match *checkpoint {}
    }

    fn resume_until_with(
        &self,
        checkpoint: &NoCheckpoint,
        _stop_after: usize,
        _sink: &mut dyn Sink,
    ) -> Result<RunStatus<NoCheckpoint>, OptimizeError> {
        match *checkpoint {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::problems::{Schaffer, Zdt1};

    fn quick(islands: usize, interval: usize) -> IslandConfig {
        IslandConfig::builder()
            .population_size(40)
            .generations(30)
            .islands(islands)
            .migration_interval(interval)
            .migrants(2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(IslandConfig::builder().islands(0).build().is_err());
        assert!(IslandConfig::builder()
            .population_size(10)
            .islands(5)
            .build()
            .is_err());
        assert!(IslandConfig::builder()
            .migration_interval(0)
            .build()
            .is_err());
        assert!(IslandConfig::builder()
            .population_size(20)
            .islands(2)
            .migrants(10)
            .build()
            .is_err());
        assert!(IslandConfig::builder().build().is_ok());
    }

    #[test]
    fn run_is_deterministic() {
        let a = IslandGa::new(Schaffer::new(), quick(4, 10))
            .run_seeded(3)
            .unwrap();
        let b = IslandGa::new(Schaffer::new(), quick(4, 10))
            .run_seeded(3)
            .unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn migrations_happen_on_schedule() {
        let r = IslandGa::new(Schaffer::new(), quick(4, 10))
            .run_seeded(1)
            .unwrap();
        assert_eq!(r.migrations, 3); // generations 10, 20, 30
    }

    #[test]
    fn events_match_run_structure() {
        use crate::telemetry::MemorySink;
        let mut sink = MemorySink::new();
        let ga = IslandGa::new(Schaffer::new(), quick(4, 10));
        assert_eq!(ga.algorithm(), "island");
        let watched = ga.run_with(1, &mut sink).unwrap();
        let bare = ga.run_seeded(1).unwrap();
        assert_eq!(bare.front_objectives(), watched.front_objectives());
        assert_eq!(bare.history, watched.history);
        let ends = sink
            .events()
            .iter()
            .filter(|e| matches!(e, RunEvent::GenerationEnd { .. }))
            .count();
        assert_eq!(ends, watched.generations);
        // One Promotion event per migration event (ring migration reuses
        // the promotion vocabulary).
        let promotions = sink
            .events()
            .iter()
            .filter(|e| matches!(e, RunEvent::Promotion { .. }))
            .count();
        assert_eq!(promotions, watched.migrations);
        assert!(ga.run_until(1, 5).is_err());
    }

    #[test]
    fn single_island_never_migrates() {
        let r = IslandGa::new(Schaffer::new(), quick(1, 10))
            .run_seeded(1)
            .unwrap();
        assert_eq!(r.migrations, 0);
        assert!(!r.front.is_empty());
    }

    #[test]
    fn archipelago_converges_on_schaffer() {
        let cfg = IslandConfig::builder()
            .population_size(60)
            .generations(80)
            .islands(4)
            .migration_interval(10)
            .build()
            .unwrap();
        let r = IslandGa::new(Schaffer::new(), cfg).run_seeded(7).unwrap();
        assert!(r.front.len() > 10);
        for m in &r.front {
            let f1 = m.objective(0);
            let f2 = m.objective(1);
            let expected = (f1.sqrt() - 2.0).powi(2);
            assert!(
                (f2 - expected).abs() < 0.1 + 0.15 * (1.0 + expected),
                "({f1}, {f2}) vs {expected}"
            );
        }
    }

    #[test]
    fn works_on_zdt() {
        let cfg = IslandConfig::builder()
            .population_size(48)
            .generations(40)
            .islands(3)
            .build()
            .unwrap();
        let r = IslandGa::new(Zdt1::new(8), cfg).run_seeded(5).unwrap();
        assert!(!r.front.is_empty());
        assert!(r.population.len() == 48);
    }

    #[test]
    fn evaluation_budget_matches_other_algorithms() {
        // pop + gens*pop evaluations, comparable to NSGA-II/SACGA budgets.
        let r = IslandGa::new(Schaffer::new(), quick(4, 10))
            .run_seeded(2)
            .unwrap();
        assert_eq!(r.evaluations, 40 + 30 * 40);
    }
}
