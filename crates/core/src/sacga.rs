//! SACGA — the Simulated-Annealing-driven Competition Genetic Algorithm
//! (Sec. 4.4 of the paper, Fig. 3 flow).
//!
//! * **Phase I** — pure local competition inside objective-space
//!   partitions until every partition holds at least one
//!   constraint-satisfying solution (or an iteration cap is hit, after
//!   which infeasible partitions are discarded). Takes `gen_t` iterations.
//! * **Phase II** (`span = generations − gen_t` iterations) — each
//!   partition's locally superior solutions are considered in random order
//!   `i = 1..m_p`; the `i`-th joins the **global competition** with
//!   probability `1 − exp(−α/(c(i)·T_A))`, where `T_A` anneals from
//!   `T_init` to 1 across the span. Promoted solutions have their rank
//!   revised by a global non-dominated sort (a promoted solution that is
//!   globally dominated loses its local rank-0 status); protected
//!   solutions keep their local rank. A **Global Mating Pool** is drawn by
//!   rank-based selection over the entire population, crossover/mutation
//!   produce offspring, and survivors are selected per partition (local
//!   elitism).
//! * Termination: one final global competition over everything yields the
//!   Global Pareto Front.

use crate::anneal::{AnnealingSchedule, ProbabilityShaper, PromotionPolicy};
use crate::checkpoint::{EngineState, SacgaCheckpoint, SavedIndividual};
use crate::partition::{PartitionGrid, PartitionedPopulation};
use crate::telemetry::{expect_complete, EventKind, NullSink, Optimizer, RunEvent, Sink};
use engine::{
    EngineConfig, EngineStats, EvaluatorKind, ExecutionEngine, FaultPlan, FaultPolicy, SharedCache,
    Stage, StageTimer, SurrogateScreen,
};
use moea::individual::Individual;
use moea::operators::{random_vector, Variation};
use moea::problem::Problem;
use moea::selection::RankRoulette;
use moea::setup::EngineSetup;
use moea::sorting::rank_and_crowd;
use moea::{Evaluation, OptimizeError, RunOutcome, RunStatus};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

pub use moea::GenerationStats;

/// How candidates enter the global competition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompetitionMode {
    /// Full SACGA: annealed promotion from local to global competition.
    Annealed,
    /// Pure local competition forever (the Sec. 4.3 baseline); a single
    /// global competition happens only at output time.
    LocalOnly,
}

/// Configuration of a SACGA run. Build with [`SacgaConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SacgaConfig {
    pub(crate) population_size: usize,
    pub(crate) generations: usize,
    pub(crate) partitions: usize,
    pub(crate) n_superior: usize,
    pub(crate) phase1_max: usize,
    pub(crate) shaper: ProbabilityShaper,
    pub(crate) variation: Option<Variation>,
    pub(crate) roulette_decay: f64,
    pub(crate) slice_objective: usize,
    pub(crate) slice_range: Option<(f64, f64)>,
    pub(crate) mode: CompetitionMode,
    pub(crate) exec: EngineSetup,
}

impl SacgaConfig {
    /// Starts a configuration builder.
    pub fn builder() -> SacgaConfigBuilder {
        SacgaConfigBuilder::default()
    }

    /// Population size.
    pub fn population_size(&self) -> usize {
        self.population_size
    }

    /// Total generation budget (phase I + phase II).
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Number of partitions `m`.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Evaluation-engine settings.
    pub fn engine(&self) -> &EngineConfig {
        self.exec.engine()
    }
}

/// Builder for [`SacgaConfig`].
#[derive(Debug, Clone)]
pub struct SacgaConfigBuilder {
    population_size: usize,
    generations: usize,
    partitions: usize,
    n_superior: usize,
    phase1_max: Option<usize>,
    shaper: ProbabilityShaper,
    variation: Option<Variation>,
    roulette_decay: f64,
    slice_objective: usize,
    slice_range: Option<(f64, f64)>,
    mode: CompetitionMode,
    exec: EngineSetup,
}

impl Default for SacgaConfigBuilder {
    fn default() -> Self {
        SacgaConfigBuilder {
            population_size: 100,
            generations: 250,
            partitions: 8,
            n_superior: 5,
            phase1_max: None,
            shaper: ProbabilityShaper::standard(),
            variation: None,
            roulette_decay: 0.8,
            slice_objective: 0,
            slice_range: None,
            mode: CompetitionMode::Annealed,
            exec: EngineSetup::new(),
        }
    }
}

impl SacgaConfigBuilder {
    /// Sets the population size (≥ 4, even).
    pub fn population_size(mut self, n: usize) -> Self {
        self.population_size = n;
        self
    }

    /// Sets the total generation budget.
    pub fn generations(mut self, n: usize) -> Self {
        self.generations = n;
        self
    }

    /// Sets the partition count `m` (≥ 1).
    pub fn partitions(mut self, m: usize) -> Self {
        self.partitions = m;
        self
    }

    /// Sets `n`, the desired number of globally superior solutions per
    /// partition (≥ 2), which shapes the promotion-cost exponent.
    pub fn n_superior(mut self, n: usize) -> Self {
        self.n_superior = n;
        self
    }

    /// Caps the pure-local phase (default: a quarter of the budget).
    pub fn phase1_max(mut self, cap: usize) -> Self {
        self.phase1_max = Some(cap);
        self
    }

    /// Overrides the probability-shaping targets.
    pub fn shaper(mut self, shaper: ProbabilityShaper) -> Self {
        self.shaper = shaper;
        self
    }

    /// Overrides the variation operators.
    pub fn variation(mut self, v: Variation) -> Self {
        self.variation = Some(v);
        self
    }

    /// Sets the geometric rank-roulette decay in `(0, 1]`.
    pub fn roulette_decay(mut self, d: f64) -> Self {
        self.roulette_decay = d;
        self
    }

    /// Chooses which objective's range is partitioned (default 0).
    pub fn slice_objective(mut self, k: usize) -> Self {
        self.slice_objective = k;
        self
    }

    /// Fixes the partitioned range a priori (e.g. the paper's 0–5 pF load
    /// axis, in internal minimized coordinates). When unset, the range is
    /// derived from the initial population.
    pub fn slice_range(mut self, lo: f64, hi: f64) -> Self {
        self.slice_range = Some((lo, hi));
        self
    }

    /// Switches between full SACGA and the pure-local baseline.
    pub fn mode(mut self, mode: CompetitionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the whole engine-knob bundle at once (see
    /// [`EngineSetup`]); the individual knob methods below delegate to
    /// the same bundle.
    pub fn engine_setup(mut self, exec: EngineSetup) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.exec = self.exec.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries
    /// (default: disabled).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.exec = self.exec.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.exec = self.exec.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy for candidate evaluation: retry
    /// budget, non-finite quarantine, and exhaustion behavior.
    pub fn fault_policy(mut self, fault: FaultPolicy) -> Self {
        self.exec = self.exec.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection with the given plan (a
    /// testing/chaos harness — injected faults are reproducible per
    /// candidate).
    pub fn inject_faults(mut self, plan: FaultPlan) -> Self {
        self.exec = self.exec.inject_faults(plan);
        self
    }

    /// Routes memoization through a [`SharedCache`] pooled across
    /// concurrent runs (a campaign) instead of a private per-run cache.
    /// Cached evaluations are pure functions of the genes, so sharing
    /// never changes a run's results — only how many model evaluations
    /// it performs.
    pub fn shared_cache(mut self, cache: SharedCache<Evaluation>) -> Self {
        self.exec = self.exec.shared_cache(cache);
        self
    }

    /// Attaches an opt-in [`SurrogateScreen`]: candidates the screen
    /// answers skip the full model (counted in
    /// [`EngineStats::screened`], never cached). Screening changes which
    /// candidates reach the model, so runs with an active screen are
    /// *not* byte-identical to unscreened runs — leave this unset (or use
    /// a never-firing screen) to keep pinned artifacts reproducible.
    pub fn surrogate_screen(mut self, screen: SurrogateScreen<Evaluation>) -> Self {
        self.exec = self.exec.surrogate_screen(screen);
        self
    }

    /// Attaches a live [`engine::EngineMetrics`] bundle: the engine
    /// mirrors its counters and latency/batch-size histograms into the
    /// bundle's registry as evaluation happens. Observation only — an
    /// instrumented run is bit-identical to a bare one.
    pub fn metrics(mut self, metrics: engine::EngineMetrics) -> Self {
        self.exec = self.exec.metrics(metrics);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] for population sizes below
    /// 4 or odd, zero budgets, zero partitions, `n_superior < 2`, a bad
    /// roulette decay, or an inverted slice range.
    pub fn build(self) -> Result<SacgaConfig, OptimizeError> {
        if self.population_size < 4 || !self.population_size.is_multiple_of(2) {
            return Err(OptimizeError::invalid_config(
                "population_size",
                format!("must be even and at least 4, got {}", self.population_size),
            ));
        }
        if self.generations == 0 {
            return Err(OptimizeError::invalid_config(
                "generations",
                "must be at least 1",
            ));
        }
        if self.partitions == 0 {
            return Err(OptimizeError::invalid_config(
                "partitions",
                "must be at least 1",
            ));
        }
        if self.n_superior < 2 {
            return Err(OptimizeError::invalid_config(
                "n_superior",
                "must be at least 2",
            ));
        }
        if self.roulette_decay.is_nan() || self.roulette_decay <= 0.0 || self.roulette_decay > 1.0 {
            return Err(OptimizeError::invalid_config(
                "roulette_decay",
                "must lie in (0, 1]",
            ));
        }
        if let Some((lo, hi)) = self.slice_range {
            if lo >= hi || !lo.is_finite() || !hi.is_finite() {
                return Err(OptimizeError::invalid_config(
                    "slice_range",
                    format!("need finite lo < hi, got [{lo}, {hi}]"),
                ));
            }
        }
        let phase1_max = self
            .phase1_max
            .unwrap_or_else(|| (self.generations / 4).max(1));
        Ok(SacgaConfig {
            population_size: self.population_size,
            generations: self.generations,
            partitions: self.partitions,
            n_superior: self.n_superior,
            phase1_max,
            shaper: self.shaper,
            variation: self.variation,
            roulette_decay: self.roulette_decay,
            slice_objective: self.slice_objective,
            slice_range: self.slice_range,
            mode: self.mode,
            exec: self.exec,
        })
    }
}

/// Builds the execution engine for a run via
/// [`EngineSetup::build_engine`]: engine config, pooled cache, the
/// problem's cache canonicalizer and the optional surrogate screen.
/// Shared by [`Engine::start`] and [`Engine::restore`] so fresh and
/// resumed runs wire the evaluation path identically.
pub(crate) fn configure_exec<P: Problem + ?Sized>(
    problem: &P,
    config: &SacgaConfig,
) -> ExecutionEngine<Evaluation> {
    config.exec.build_engine(problem.cache_canonicalizer())
}

/// How a drive begins: a fresh seed or a stored checkpoint.
pub(crate) enum Launch<'c> {
    /// A fresh run from a seed.
    Seed(u64),
    /// A resumed run from a checkpoint.
    Checkpoint(&'c SacgaCheckpoint),
}

/// The SACGA optimizer.
#[derive(Debug)]
pub struct Sacga<P: Problem> {
    problem: P,
    config: SacgaConfig,
}

impl<P: Problem> Sacga<P> {
    /// Creates an optimizer for `problem` with `config`.
    pub fn new(problem: P, config: SacgaConfig) -> Self {
        Sacga { problem, config }
    }

    /// Runs with a seeded RNG and no instrumentation (equivalent to
    /// [`Optimizer::run`]).
    ///
    /// # Errors
    ///
    /// Propagates problem-definition errors discovered at start-up and
    /// [`OptimizeError::EvaluationFailed`] when a candidate evaluation
    /// exhausts the fault policy's retry budget with an aborting policy.
    pub fn run_seeded(&self, seed: u64) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        self.drive(Launch::Seed(seed), None, &mut NullSink)
            .map(expect_complete)
    }

    /// The shared run loop behind every public entry point: phase I until
    /// feasibility (or the cap), boundary processing, then phase II with
    /// the annealed promotion schedule. `stop_after` bounds the total
    /// generation count; reaching it suspends the run into a checkpoint.
    /// Structured events flow into `sink`; emission never consumes RNG,
    /// so instrumented and bare runs are bit-identical.
    pub(crate) fn drive(
        &self,
        launch: Launch<'_>,
        stop_after: Option<usize>,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SacgaCheckpoint>, OptimizeError>
    where
        P: Sync,
    {
        let should_stop = |gen: usize| stop_after.is_some_and(|cap| gen >= cap);
        let fresh = matches!(launch, Launch::Seed(_));
        let (mut rng, mut engine, phase1_done, mut gen_t) = match launch {
            Launch::Seed(seed) => {
                let mut rng = StdRng::seed_from_u64(seed);
                let engine = Engine::start(&self.problem, &self.config, &mut rng)?;
                (rng, engine, false, 0)
            }
            Launch::Checkpoint(cp) => {
                let (engine, rng) = Engine::restore(&self.problem, &self.config, &cp.state)?;
                (rng, engine, cp.state.phase1_done, cp.state.gen_t)
            }
        };
        if sink.wants(EventKind::StageTiming) {
            engine.enable_timing();
        }
        // Faults from the initial-population evaluation surface as
        // generation-0 events. A resumed segment emits nothing for the
        // checkpoint generation — its events belong to the segment that
        // executed it.
        if fresh {
            engine.emit_generation(sink);
        } else {
            engine.discard_restored_faults();
        }

        // Phase I. A checkpoint taken mid-phase-I re-enters this loop; the
        // termination condition and the boundary processing below are pure
        // functions of the restored population, so they replay identically.
        if !phase1_done {
            // Feasibility transitions are tracked only when someone
            // listens; partitions feasible from the start emit nothing.
            let mut feasibility = sink
                .wants(EventKind::PartitionFeasible)
                .then(|| engine.partition_feasibility());
            while engine.gen < self.config.generations
                && engine.gen < self.config.phase1_max
                && !(engine.pop.all_partitions_feasible() && engine.gen > 0)
            {
                if should_stop(engine.gen) {
                    return Ok(engine.suspend(sink, &rng, false, 0));
                }
                engine.local_generation(&mut rng)?;
                if let Some(before) = &mut feasibility {
                    let now = engine.partition_feasibility();
                    for (p, (was, is)) in before.iter().zip(&now).enumerate() {
                        if !was && *is {
                            sink.record(&RunEvent::PartitionFeasible {
                                generation: engine.gen,
                                partition: p,
                            });
                        }
                    }
                    *before = now;
                }
                engine.emit_generation(sink);
            }
            if !engine.pop.all_partitions_feasible() {
                engine.pop.discard_infeasible_partitions();
            }
            gen_t = engine.gen;
            if self.config.mode == CompetitionMode::Annealed
                && gen_t < self.config.generations
                && sink.wants(EventKind::PhaseTransition)
            {
                sink.record(&RunEvent::PhaseTransition {
                    generation: gen_t,
                    phase_index: 0,
                    partitions: self.config.partitions,
                    span: self.config.generations - gen_t,
                });
            }
        }

        // Phase II. The schedule depends only on `gen_t` (stored in phase-II
        // checkpoints), so a resumed run re-derives the same constants.
        let span = self.config.generations.saturating_sub(gen_t);
        let (policy, schedule) = self.config.shaper.solve(self.config.n_superior, span)?;
        while engine.gen < self.config.generations {
            if should_stop(engine.gen) {
                return Ok(engine.suspend(sink, &rng, true, gen_t));
            }
            match self.config.mode {
                CompetitionMode::Annealed => {
                    let (promoted, candidates) =
                        engine.annealed_generation(&mut rng, &policy, &schedule, gen_t)?;
                    if sink.wants(EventKind::Promotion) {
                        sink.record(&RunEvent::Promotion {
                            generation: engine.gen,
                            promoted,
                            candidates,
                        });
                    }
                }
                CompetitionMode::LocalOnly => {
                    engine.local_generation(&mut rng)?;
                }
            }
            engine.emit_generation(sink);
        }
        Ok(RunStatus::Complete(Box::new(engine.finish(gen_t))))
    }
}

impl<P: Problem + Sync> Optimizer for Sacga<P> {
    type Checkpoint = SacgaCheckpoint;

    fn algorithm(&self) -> &'static str {
        match self.config.mode {
            CompetitionMode::Annealed => "sacga",
            CompetitionMode::LocalOnly => "local",
        }
    }

    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        self.drive(Launch::Seed(seed), None, sink)
            .map(expect_complete)
    }

    fn run_until_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SacgaCheckpoint>, OptimizeError> {
        self.drive(Launch::Seed(seed), Some(stop_after), sink)
    }

    fn resume_with(
        &self,
        checkpoint: &SacgaCheckpoint,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        self.drive(Launch::Checkpoint(checkpoint), None, sink)
            .map(expect_complete)
    }

    fn resume_until_with(
        &self,
        checkpoint: &SacgaCheckpoint,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<SacgaCheckpoint>, OptimizeError> {
        self.drive(Launch::Checkpoint(checkpoint), Some(stop_after), sink)
    }
}

/// Feasible, globally non-dominated front of a population snapshot
/// (clone + one global competition; used for event payloads and
/// MESACGA phase fronts).
pub(crate) fn population_front(snapshot: &[Individual]) -> Vec<Individual> {
    let mut arena = snapshot.to_vec();
    rank_and_crowd(&mut arena);
    arena.retain(|m| m.rank == 0 && m.is_feasible());
    arena
}

/// Shared partition-GA engine, also driven by MESACGA.
pub(crate) struct Engine<'p, P: Problem> {
    problem: &'p P,
    config: &'p SacgaConfig,
    pub(crate) pop: PartitionedPopulation,
    pub(crate) gen: usize,
    pub(crate) history: Vec<GenerationStats>,
    variation: Variation,
    roulette: RankRoulette,
    exec: ExecutionEngine<Evaluation>,
    /// Flattened population after the last generation (for observers).
    pub(crate) flat_cache: Vec<Individual>,
    /// Per-stage wall-clock for the current generation; disabled (and
    /// free) unless the sink wants [`EventKind::StageTiming`].
    timer: StageTimer,
    /// Engine-stats snapshot at the previous generation boundary, used
    /// to derive per-generation deltas for timing events.
    stats_mark: EngineStats,
}

impl<'p, P: Problem + Sync> Engine<'p, P> {
    /// Initializes the population and the partition grid.
    pub(crate) fn start(
        problem: &'p P,
        config: &'p SacgaConfig,
        rng: &mut StdRng,
    ) -> Result<Self, OptimizeError> {
        if problem.num_objectives() == 0 {
            return Err(OptimizeError::invalid_problem(
                "problem must declare at least one objective",
            ));
        }
        if config.slice_objective >= problem.num_objectives() {
            return Err(OptimizeError::invalid_config(
                "slice_objective",
                format!(
                    "objective {} out of range for a {}-objective problem",
                    config.slice_objective,
                    problem.num_objectives()
                ),
            ));
        }
        let bounds = problem.bounds().clone();
        let mut exec = configure_exec(problem, config);
        let init_genes: Vec<Vec<f64>> = (0..config.population_size)
            .map(|_| random_vector(rng, &bounds))
            .collect();
        let init_evals = exec.try_evaluate_batch_with(
            &init_genes,
            &|genes| problem.evaluate(genes),
            &|chunk: &[Vec<f64>]| problem.evaluate_all(chunk),
        )?;
        let initial: Vec<Individual> = init_genes
            .into_iter()
            .zip(init_evals)
            .map(|(genes, ev)| Individual::new(genes, ev))
            .collect();
        problem.check_evaluation(&initial[0].evaluation)?;
        let grid = match config.slice_range {
            Some((lo, hi)) => {
                PartitionGrid::new(config.slice_objective, lo, hi, config.partitions)?
            }
            None => {
                PartitionGrid::from_population(config.slice_objective, &initial, config.partitions)?
            }
        };
        let mut pop = PartitionedPopulation::distribute(grid, initial);
        pop.rank_locally();
        let variation = config
            .variation
            .unwrap_or_else(|| Variation::standard(bounds.len()));
        let flat_cache = pop.flatten();
        let feasible = flat_cache.iter().filter(|m| m.is_feasible()).count();
        let history = vec![GenerationStats {
            generation: 0,
            phase: 1,
            temperature: f64::INFINITY,
            promoted: 0,
            feasible,
            population: flat_cache.len(),
        }];
        Ok(Engine {
            problem,
            config,
            pop,
            gen: 0,
            history,
            variation,
            roulette: RankRoulette::new(config.roulette_decay),
            exec,
            flat_cache,
            timer: StageTimer::disabled(),
            stats_mark: EngineStats::default(),
        })
    }

    /// Switches on per-stage timing (called when the sink wants
    /// [`EventKind::StageTiming`]). Baselines the stats snapshot so the
    /// first timed generation's delta excludes earlier work (the
    /// initial-population batch, or everything before a resume).
    pub(crate) fn enable_timing(&mut self) {
        self.timer.set_enabled(true);
        self.stats_mark = self.exec.stats().clone();
    }

    fn capacity(&self) -> usize {
        let alive = (0..self.pop.partition_count())
            .filter(|&p| self.pop.is_alive(p))
            .count()
            .max(1);
        self.config.population_size.div_ceil(alive)
    }

    /// One pure-local generation (phase I / LocalOnly mode).
    pub(crate) fn local_generation(&mut self, rng: &mut StdRng) -> Result<(), OptimizeError> {
        self.timer.start(Stage::Ranking);
        self.pop.rank_locally();
        let flat = self.pop.flatten();
        self.timer.stop();
        let offspring = self.make_offspring(rng, &flat)?;
        self.timer.start(Stage::Selection);
        self.pop.absorb(offspring);
        self.pop.truncate_to(self.capacity(), rng);
        self.timer.start(Stage::Ranking);
        self.pop.rank_locally();
        self.timer.stop();
        self.gen += 1;
        self.flat_cache = self.pop.flatten();
        self.record(1, f64::INFINITY, 0);
        Ok(())
    }

    /// One annealed generation (phase II): local ranking, SA-gated
    /// promotion, global rank revision, global mating pool, variation,
    /// local survivor selection. Returns `(promoted, candidates)` — how
    /// many locally superior solutions won the SA gamble, out of how
    /// many were considered — for the telemetry layer.
    pub(crate) fn annealed_generation(
        &mut self,
        rng: &mut StdRng,
        policy: &PromotionPolicy,
        schedule: &AnnealingSchedule,
        gen_t: usize,
    ) -> Result<(usize, usize), OptimizeError> {
        self.timer.start(Stage::Ranking);
        self.pop.rank_locally();
        let mut flat = self.pop.flatten();
        self.timer.stop();
        // The generation being produced is `gen + 1`; its elapsed phase-II
        // age runs 1..=span so the final generation anneals at exactly
        // T_A = 1 (pure global competition), per eqn (4).
        let temperature = schedule.temperature((self.gen + 1).saturating_sub(gen_t));

        // --- Promotion: locally superior members, per partition, in random
        // order; the i-th (1-based) joins with prob(i, T_A).
        self.timer.start(Stage::Promotion);
        let grid = *self.pop.grid();
        let mut per_partition: Vec<Vec<usize>> = vec![Vec::new(); grid.partition_count()];
        for (idx, ind) in flat.iter().enumerate() {
            if ind.rank == 0 {
                per_partition[grid.partition_of(ind.objectives())].push(idx);
            }
        }
        let candidates: usize = per_partition.iter().map(Vec::len).sum();
        let mut promoted: Vec<usize> = Vec::new();
        for locally_superior in per_partition.iter_mut() {
            locally_superior.shuffle(rng);
            for (pos, &idx) in locally_superior.iter().enumerate() {
                let prob = policy.probability(pos + 1, temperature);
                if rng.gen::<f64>() < prob {
                    promoted.push(idx);
                }
            }
        }

        // --- Global rank revision of the promoted candidates.
        if !promoted.is_empty() {
            let mut arena: Vec<Individual> = promoted.iter().map(|&i| flat[i].clone()).collect();
            rank_and_crowd(&mut arena);
            for (slot, &i) in promoted.iter().enumerate() {
                flat[i].rank = arena[slot].rank;
            }
        }
        self.timer.stop();

        // --- Global mating pool over the entire population with revised
        // ranks, then variation and local survivor selection.
        let offspring = self.make_offspring(rng, &flat)?;
        self.timer.start(Stage::Selection);
        self.pop.absorb(offspring);
        self.pop.truncate_to(self.capacity(), rng);
        self.timer.start(Stage::Ranking);
        self.pop.rank_locally();
        self.timer.stop();
        self.gen += 1;
        self.flat_cache = self.pop.flatten();
        self.record(2, temperature, promoted.len());
        Ok((promoted.len(), candidates))
    }

    /// Which partitions currently hold a constraint-satisfying member
    /// (dead partitions report `false`).
    pub(crate) fn partition_feasibility(&self) -> Vec<bool> {
        (0..self.pop.partition_count())
            .map(|p| self.pop.is_alive(p) && self.pop.partition(p).iter().any(|m| m.is_feasible()))
            .collect()
    }

    /// Drains resolved fault episodes and, for executed generations,
    /// emits the [`RunEvent::GenerationEnd`] record. Called once per
    /// generation boundary (including generation 0, which emits only
    /// fault events from the initial evaluation).
    pub(crate) fn emit_generation(&mut self, sink: &mut dyn Sink) {
        let faults = self.exec.take_fault_events();
        if sink.wants(EventKind::EvaluationFault) {
            for fault in &faults {
                sink.record(&RunEvent::EvaluationFault {
                    generation: self.gen,
                    kind: fault.kind,
                    failures: fault.failures,
                    resolution: fault.resolution,
                });
            }
        }
        if self.gen > 0 && sink.wants(EventKind::GenerationEnd) {
            let row = *self
                .history
                .last()
                .expect("every generation records a history row");
            let front = population_front(&self.flat_cache)
                .iter()
                .map(|m| m.objectives().to_vec())
                .collect();
            sink.record(&RunEvent::GenerationEnd {
                generation: self.gen,
                phase: row.phase,
                temperature: row.temperature,
                promoted: row.promoted,
                feasible: row.feasible,
                population: row.population,
                evaluations: self.exec.stats().evaluations,
                front,
            });
        }
        if self.gen > 0 && self.timer.is_enabled() {
            let stages = self.timer.take();
            let delta = self.exec.stats().since(&self.stats_mark);
            self.stats_mark = self.exec.stats().clone();
            sink.record(&RunEvent::StageTiming {
                generation: self.gen,
                stages,
                candidates: delta.candidates,
                evaluations: delta.evaluations,
                cache_hits: delta.cache_hits,
            });
        }
    }

    /// Drops fault episodes buffered while a checkpoint restore rebuilt
    /// the evaluation cache; the segment that originally executed those
    /// evaluations already reported them.
    pub(crate) fn discard_restored_faults(&mut self) {
        let _ = self.exec.take_fault_events();
    }

    /// Captures a checkpoint, announces it, and wraps it for return.
    pub(crate) fn suspend(
        &self,
        sink: &mut dyn Sink,
        rng: &StdRng,
        phase1_done: bool,
        gen_t: usize,
    ) -> RunStatus<SacgaCheckpoint> {
        if sink.wants(EventKind::CheckpointWritten) {
            sink.record(&RunEvent::CheckpointWritten {
                generation: self.gen,
            });
        }
        RunStatus::Suspended(Box::new(SacgaCheckpoint {
            state: self.snapshot(rng, phase1_done, gen_t),
        }))
    }

    fn make_offspring(
        &mut self,
        rng: &mut StdRng,
        flat: &[Individual],
    ) -> Result<Vec<Individual>, OptimizeError> {
        let n = self.config.population_size;
        let problem = self.problem;
        let bounds = problem.bounds();
        // Draw the full gene batch first (the only RNG consumer), then
        // evaluate it in one engine call.
        self.timer.start(Stage::Variation);
        let mut child_genes: Vec<Vec<f64>> = Vec::with_capacity(n);
        if flat.is_empty() {
            // Degenerate: reseed randomly.
            while child_genes.len() < n {
                child_genes.push(random_vector(rng, bounds));
            }
        } else {
            while child_genes.len() < n {
                let pa = self.roulette.select(rng, flat);
                let pb = self.roulette.select(rng, flat);
                let (c1, c2) =
                    self.variation
                        .offspring(rng, &flat[pa].genes, &flat[pb].genes, bounds);
                child_genes.push(c1);
                if child_genes.len() < n {
                    child_genes.push(c2);
                }
            }
        }
        self.timer.start(Stage::Evaluation);
        let evals = self.exec.try_evaluate_batch_with(
            &child_genes,
            &|genes| problem.evaluate(genes),
            &|chunk: &[Vec<f64>]| problem.evaluate_all(chunk),
        )?;
        self.timer.stop();
        Ok(child_genes
            .into_iter()
            .zip(evals)
            .map(|(genes, ev)| Individual::new(genes, ev))
            .collect())
    }

    /// Captures the complete engine state at a generation boundary.
    /// `phase1_done` records whether the phase-I boundary processing has
    /// run; `gen_t` is meaningful only when it has.
    pub(crate) fn snapshot(&self, rng: &StdRng, phase1_done: bool, gen_t: usize) -> EngineState {
        let grid = *self.pop.grid();
        let (grid_lo, grid_hi) = grid.range();
        let partitions = (0..self.pop.partition_count())
            .map(|p| {
                self.pop
                    .partition(p)
                    .iter()
                    .map(SavedIndividual::from_individual)
                    .collect()
            })
            .collect();
        let alive = (0..self.pop.partition_count())
            .map(|p| self.pop.is_alive(p))
            .collect();
        EngineState {
            rng: rng.state(),
            gen: self.gen,
            phase1_done,
            gen_t,
            grid_objective: grid.objective(),
            grid_lo,
            grid_hi,
            grid_partitions: grid.partition_count(),
            alive,
            partitions,
            history: self.history.clone(),
            stats: self.exec.stats().clone(),
        }
    }

    /// Rebuilds an engine (and its RNG) from a checkpointed state. The
    /// stored partition assignment is trusted verbatim; the memoization
    /// cache restarts cold (its contents are a pure performance artifact
    /// and never affect results).
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidCheckpoint`] when the stored grid
    /// or partition layout is inconsistent, and the same start-up errors
    /// as [`Engine::start`].
    pub(crate) fn restore(
        problem: &'p P,
        config: &'p SacgaConfig,
        state: &EngineState,
    ) -> Result<(Self, StdRng), OptimizeError> {
        if problem.num_objectives() == 0 {
            return Err(OptimizeError::invalid_problem(
                "problem must declare at least one objective",
            ));
        }
        if state.grid_objective >= problem.num_objectives() {
            return Err(OptimizeError::invalid_checkpoint(format!(
                "checkpoint slices objective {} but the problem declares {}",
                state.grid_objective,
                problem.num_objectives()
            )));
        }
        let grid = PartitionGrid::new(
            state.grid_objective,
            state.grid_lo,
            state.grid_hi,
            state.grid_partitions,
        )
        .map_err(|e| OptimizeError::invalid_checkpoint(format!("stored grid is invalid: {e}")))?;
        let members: Vec<Vec<Individual>> = state
            .partitions
            .iter()
            .map(|part| part.iter().map(SavedIndividual::to_individual).collect())
            .collect();
        let pop = PartitionedPopulation::from_parts(grid, members, state.alive.clone())?;
        let bounds = problem.bounds().clone();
        let mut exec = configure_exec(problem, config);
        exec.restore_stats(state.stats.clone());
        let variation = config
            .variation
            .unwrap_or_else(|| Variation::standard(bounds.len()));
        let flat_cache = pop.flatten();
        let engine = Engine {
            problem,
            config,
            pop,
            gen: state.gen,
            history: state.history.clone(),
            variation,
            roulette: RankRoulette::new(config.roulette_decay),
            exec,
            flat_cache,
            timer: StageTimer::disabled(),
            stats_mark: EngineStats::default(),
        };
        Ok((engine, StdRng::from_state(state.rng)))
    }

    fn record(&mut self, phase: u8, temperature: f64, promoted: usize) {
        let feasible = self.flat_cache.iter().filter(|m| m.is_feasible()).count();
        self.history.push(GenerationStats {
            generation: self.gen,
            phase,
            temperature,
            promoted,
            feasible,
            population: self.flat_cache.len(),
        });
    }

    /// Final global competition and result assembly: per the paper, the
    /// Global Pareto Front is found by one global competition over the
    /// entire final population.
    pub(crate) fn finish(self, gen_t: usize) -> RunOutcome {
        let mut population = self.pop.flatten();
        rank_and_crowd(&mut population);
        let front: Vec<Individual> = population
            .iter()
            .filter(|m| m.rank == 0 && m.is_feasible())
            .cloned()
            .collect();
        let stats = self.exec.into_stats();
        RunOutcome {
            population,
            front,
            evaluations: stats.evaluations as usize,
            generations: self.gen,
            gen_t,
            history: self.history,
            phase_fronts: Vec::new(),
            migrations: 0,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MemorySink;
    use engine::EngineStats;
    use moea::problems::{NarrowingCorridor, Schaffer, Zdt1};

    fn small_config(generations: usize, partitions: usize) -> SacgaConfig {
        SacgaConfig::builder()
            .population_size(40)
            .generations(generations)
            .partitions(partitions)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert!(SacgaConfig::builder().population_size(3).build().is_err());
        assert!(SacgaConfig::builder().population_size(7).build().is_err());
        assert!(SacgaConfig::builder().generations(0).build().is_err());
        assert!(SacgaConfig::builder().partitions(0).build().is_err());
        assert!(SacgaConfig::builder().n_superior(1).build().is_err());
        assert!(SacgaConfig::builder().roulette_decay(0.0).build().is_err());
        assert!(SacgaConfig::builder()
            .slice_range(2.0, 1.0)
            .build()
            .is_err());
        assert!(SacgaConfig::builder().build().is_ok());
    }

    #[test]
    fn runs_deterministically_per_seed() {
        let cfg = small_config(30, 6);
        let a = Sacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(5)
            .unwrap();
        let b = Sacga::new(Schaffer::new(), cfg).run_seeded(5).unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn front_is_globally_nondominated_and_feasible() {
        let cfg = small_config(40, 8);
        let r = Sacga::new(Schaffer::new(), cfg).run_seeded(1).unwrap();
        assert!(!r.front.is_empty());
        assert!(r.front.iter().all(|m| m.rank == 0 && m.is_feasible()));
        // pairwise non-domination
        use moea::dominance::{dominates, Dominance};
        for a in &r.front {
            for b in &r.front {
                assert_ne!(dominates(a.objectives(), b.objectives()), Dominance::First);
            }
        }
    }

    #[test]
    fn phase1_ends_when_feasible_everywhere() {
        // Unconstrained problem: every individual is feasible, so phase I
        // should end after a single generation.
        let cfg = small_config(20, 4);
        let r = Sacga::new(Schaffer::new(), cfg).run_seeded(2).unwrap();
        assert!(r.gen_t <= 2, "gen_t = {}", r.gen_t);
        assert_eq!(r.generations, 20);
    }

    #[test]
    fn phase1_capped_on_constrained_problem() {
        let cfg = SacgaConfig::builder()
            .population_size(24)
            .generations(30)
            .partitions(10)
            .phase1_max(5)
            .build()
            .unwrap();
        let r = Sacga::new(NarrowingCorridor::new(0.02), cfg)
            .run_seeded(3)
            .unwrap();
        assert!(r.gen_t <= 5);
    }

    #[test]
    fn history_tracks_phases_and_temperature() {
        let cfg = small_config(20, 4);
        let r = Sacga::new(Schaffer::new(), cfg).run_seeded(4).unwrap();
        assert_eq!(r.history.len(), r.generations + 1);
        // phase-2 temperatures must be finite and decreasing
        let temps: Vec<f64> = r
            .history
            .iter()
            .filter(|h| h.phase == 2)
            .map(|h| h.temperature)
            .collect();
        assert!(!temps.is_empty());
        for w in temps.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        let last = temps.last().copied().unwrap();
        assert!(
            (last - 1.0).abs() < 1e-6,
            "temperature should cool to 1, got {last}"
        );
    }

    #[test]
    fn promotions_increase_as_annealing_cools() {
        let cfg = SacgaConfig::builder()
            .population_size(60)
            .generations(60)
            .partitions(6)
            .build()
            .unwrap();
        let r = Sacga::new(Zdt1::new(6), cfg).run_seeded(7).unwrap();
        let phase2: Vec<&GenerationStats> = r.history.iter().filter(|h| h.phase == 2).collect();
        assert!(phase2.len() > 10);
        let early: usize = phase2[..5].iter().map(|h| h.promoted).sum();
        let late: usize = phase2[phase2.len() - 5..].iter().map(|h| h.promoted).sum();
        assert!(
            late > early,
            "promotions should grow as T_A cools: early {early}, late {late}"
        );
    }

    #[test]
    fn local_only_mode_never_promotes() {
        let cfg = SacgaConfig::builder()
            .population_size(40)
            .generations(25)
            .partitions(5)
            .mode(CompetitionMode::LocalOnly)
            .build()
            .unwrap();
        let r = Sacga::new(Schaffer::new(), cfg).run_seeded(8).unwrap();
        assert!(r.history.iter().all(|h| h.promoted == 0));
        assert!(!r.front.is_empty());
    }

    #[test]
    fn evaluations_match_budget() {
        let cfg = small_config(15, 4);
        let r = Sacga::new(Schaffer::new(), cfg).run_seeded(9).unwrap();
        // init + one offspring batch per generation
        assert_eq!(r.evaluations, 40 + 15 * 40);
    }

    #[test]
    fn generation_end_emitted_every_generation() {
        let cfg = small_config(12, 4);
        let mut sink = MemorySink::new();
        let r = Sacga::new(Schaffer::new(), cfg)
            .run_with(1, &mut sink)
            .unwrap();
        let gens: Vec<usize> = sink
            .events()
            .iter()
            .filter(|e| e.kind() == EventKind::GenerationEnd)
            .map(|e| e.generation())
            .collect();
        assert_eq!(gens.len(), r.generations);
        assert_eq!(gens, (1..=12).collect::<Vec<_>>());
    }

    #[test]
    fn sink_attached_run_is_bit_identical_to_bare_run() {
        let cfg = small_config(18, 5);
        let bare = Sacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(6)
            .unwrap();
        let mut sink = MemorySink::new();
        let observed = Sacga::new(Schaffer::new(), cfg)
            .run_with(6, &mut sink)
            .unwrap();
        assert_eq!(bare.front_objectives(), observed.front_objectives());
        assert_eq!(genes_of(&bare.population), genes_of(&observed.population));
        assert_eq!(bare.history, observed.history);
        assert!(!sink.events().is_empty());
    }

    #[test]
    fn annealed_run_emits_phase_transition_and_promotions() {
        let cfg = small_config(20, 4);
        let mut sink = MemorySink::new();
        let r = Sacga::new(Schaffer::new(), cfg)
            .run_with(4, &mut sink)
            .unwrap();
        let transitions: Vec<&RunEvent> = sink
            .events()
            .iter()
            .filter(|e| e.kind() == EventKind::PhaseTransition)
            .collect();
        assert_eq!(transitions.len(), 1);
        match transitions[0] {
            RunEvent::PhaseTransition {
                generation, span, ..
            } => {
                assert_eq!(*generation, r.gen_t);
                assert_eq!(*span, r.generations - r.gen_t);
            }
            other => panic!("unexpected event {other:?}"),
        }
        // One Promotion event per annealed generation.
        let promotions = sink
            .events()
            .iter()
            .filter(|e| e.kind() == EventKind::Promotion)
            .count();
        assert_eq!(promotions, r.generations - r.gen_t);
    }

    #[test]
    fn phase1_reports_partition_feasibility_transitions() {
        // Constrained problem: partitions become feasible over time.
        let cfg = SacgaConfig::builder()
            .population_size(30)
            .generations(25)
            .partitions(8)
            .phase1_max(6)
            .slice_range(-1.0, 0.0)
            .build()
            .unwrap();
        let mut sink = MemorySink::new();
        let r = Sacga::new(NarrowingCorridor::new(0.05), cfg)
            .run_with(21, &mut sink)
            .unwrap();
        let feasible_events: Vec<&RunEvent> = sink
            .events()
            .iter()
            .filter(|e| e.kind() == EventKind::PartitionFeasible)
            .collect();
        for e in &feasible_events {
            assert!(e.generation() <= r.gen_t, "feasibility is a phase-I event");
        }
        // No partition is reported twice.
        let mut seen = std::collections::HashSet::new();
        for e in &feasible_events {
            if let RunEvent::PartitionFeasible { partition, .. } = e {
                assert!(seen.insert(*partition), "partition {partition} repeated");
            }
        }
    }

    #[test]
    fn slice_range_respected() {
        let cfg = SacgaConfig::builder()
            .population_size(20)
            .generations(10)
            .partitions(4)
            .slice_range(0.0, 4.0)
            .build()
            .unwrap();
        let r = Sacga::new(Schaffer::new(), cfg).run_seeded(11).unwrap();
        assert!(!r.front.is_empty());
    }

    #[test]
    fn single_partition_behaves_like_global_ga() {
        // m = 1: local competition IS global competition; the run should
        // still converge on Schaffer. Rank-roulette selection is gentler
        // than crowded tournament, so the tolerance is loose.
        let cfg = small_config(150, 1);
        let r = Sacga::new(Schaffer::new(), cfg).run_seeded(13).unwrap();
        assert!(r.front.len() > 5);
        for m in &r.front {
            let f1 = m.objective(0);
            let f2 = m.objective(1);
            let expected = (f1.sqrt() - 2.0).powi(2);
            assert!(
                (f2 - expected).abs() < 0.2 + 0.2 * (1.0 + expected),
                "({f1}, {f2}) vs expected {expected}"
            );
        }
    }

    #[test]
    fn three_objective_extension_works() {
        // Sec. 1 of the paper: "the extension to an arbitrary number of
        // objective functions is straight-forward" — partition one
        // objective's range and run as usual. DTLZ2 has a spherical
        // 3-objective front; partition along f0.
        use moea::problems::Dtlz2;
        let cfg = SacgaConfig::builder()
            .population_size(60)
            .generations(60)
            .partitions(6)
            .slice_objective(0)
            .slice_range(0.0, 1.2)
            .build()
            .unwrap();
        let r = Sacga::new(Dtlz2::new(3, 6), cfg).run_seeded(19).unwrap();
        assert!(r.front.len() > 10);
        // front points lie near the unit sphere
        for m in &r.front {
            let norm2: f64 = m.objectives().iter().map(|&v| v * v).sum();
            assert!(
                (0.9..1.6).contains(&norm2),
                "front point off the sphere: |f|^2 = {norm2}"
            );
        }
        // coverage along the partitioned objective
        let pts: Vec<Vec<f64>> = r.front_objectives();
        assert!(moea::metrics::extent(&pts, 0) > 0.5);
    }

    #[test]
    fn infeasible_partitions_are_discarded_after_phase1_cap() {
        // Slice range [-2, 0] while the corridor's coverage objective only
        // spans [-1, 0]: the lower half of the partitions can never hold a
        // feasible member and must be discarded at the phase-I cap instead
        // of stalling the run.
        let cfg = SacgaConfig::builder()
            .population_size(30)
            .generations(25)
            .partitions(8)
            .phase1_max(6)
            .slice_range(-2.0, 0.0)
            .build()
            .unwrap();
        let r = Sacga::new(NarrowingCorridor::new(0.05), cfg)
            .run_seeded(21)
            .unwrap();
        assert_eq!(r.gen_t, 6, "phase I must end at the cap");
        assert_eq!(r.generations, 25);
        assert!(!r.front.is_empty());
        // every front member lies in the achievable half of the range
        assert!(r.front.iter().all(|m| m.objective(0) >= -1.0));
    }

    #[test]
    fn sacga_covers_corridor_better_than_expected_minimum() {
        // Diversity sanity: on the corridor problem the front should span
        // a good part of the coverage axis.
        let cfg = SacgaConfig::builder()
            .population_size(60)
            .generations(80)
            .partitions(8)
            .slice_range(-1.0, 0.0) // f0 = -coverage
            .build()
            .unwrap();
        let r = Sacga::new(NarrowingCorridor::new(0.05), cfg)
            .run_seeded(17)
            .unwrap();
        let pts: Vec<Vec<f64>> = r.front_objectives();
        assert!(!pts.is_empty());
        let ext = moea::metrics::extent(&pts, 0);
        assert!(ext > 0.5, "front should span the coverage axis, got {ext}");
    }

    /// Strips wall-clock timing so stats can be compared across runs.
    fn scrub(mut stats: EngineStats) -> EngineStats {
        stats.eval_time = std::time::Duration::ZERO;
        stats.backoff_time = std::time::Duration::ZERO;
        stats
    }

    fn genes_of(pop: &[Individual]) -> Vec<Vec<f64>> {
        pop.iter().map(|m| m.genes.clone()).collect()
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        let cfg = small_config(30, 6);
        let full = Sacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(5)
            .unwrap();
        // Stop points cover: before any generation, the phase-I/II
        // boundary, deep inside phase II, and the final generation.
        for stop in [0usize, 1, 2, 13, 29] {
            let ga = Sacga::new(Schaffer::new(), cfg.clone());
            let cp = match ga.run_until(5, stop).unwrap() {
                RunStatus::Suspended(cp) => cp,
                RunStatus::Complete(_) => panic!("run should suspend at gen {stop}"),
            };
            assert_eq!(cp.state.gen, stop);
            let resumed = ga.resume(&cp).unwrap();
            assert_eq!(resumed.front_objectives(), full.front_objectives());
            assert_eq!(genes_of(&resumed.population), genes_of(&full.population));
            assert_eq!(resumed.history, full.history);
            assert_eq!(resumed.gen_t, full.gen_t);
            assert_eq!(scrub(resumed.stats), scrub(full.stats.clone()));
        }
    }

    #[test]
    fn resume_until_chains_across_checkpoints() {
        let cfg = small_config(24, 5);
        let full = Sacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(3)
            .unwrap();
        let ga = Sacga::new(Schaffer::new(), cfg);
        let mut run = ga.run_until(3, 4).unwrap();
        let mut hops = 0;
        let result = loop {
            match run {
                RunStatus::Complete(r) => break *r,
                RunStatus::Suspended(cp) => {
                    hops += 1;
                    run = ga.resume_until(&cp, cp.state.gen + 4).unwrap();
                }
            }
        };
        assert!(hops >= 4, "expected several suspensions, got {hops}");
        assert_eq!(result.front_objectives(), full.front_objectives());
        assert_eq!(result.history, full.history);
    }

    #[test]
    fn checkpoint_text_round_trip_resumes_identically() {
        let cfg = small_config(25, 5);
        let ga = Sacga::new(Schaffer::new(), cfg);
        let cp = match ga.run_until(7, 10).unwrap() {
            RunStatus::Suspended(cp) => cp,
            RunStatus::Complete(_) => panic!("run should suspend"),
        };
        let restored = SacgaCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(*cp, restored);
        let a = ga.resume(&cp).unwrap();
        let b = ga.resume(&restored).unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn fault_injected_run_matches_fault_free_front() {
        let base = SacgaConfig::builder()
            .population_size(24)
            .generations(15)
            .partitions(4);
        let clean_cfg = base.clone().build().unwrap();
        let faulty_cfg = base
            .fault_policy(FaultPolicy::tolerant(3))
            .inject_faults(FaultPlan::seeded(11).panics(0.05).nonfinite(0.05))
            .build()
            .unwrap();
        let clean = Sacga::new(Schaffer::new(), clean_cfg)
            .run_seeded(7)
            .unwrap();
        let faulty = Sacga::new(Schaffer::new(), faulty_cfg)
            .run_seeded(7)
            .unwrap();
        assert_eq!(clean.front_objectives(), faulty.front_objectives());
        assert!(faulty.stats.failures > 0);
        assert_eq!(
            faulty.stats.failures,
            faulty.stats.injected_panics + faulty.stats.injected_nonfinite
        );
        assert_eq!(faulty.stats.recovered, faulty.stats.failures);
        assert_eq!(clean.stats.failures, 0);
    }

    #[test]
    fn fault_injected_checkpoint_resume_preserves_fault_accounting() {
        let cfg = SacgaConfig::builder()
            .population_size(24)
            .generations(16)
            .partitions(4)
            .fault_policy(FaultPolicy::tolerant(3))
            .inject_faults(FaultPlan::seeded(13).panics(0.08))
            .build()
            .unwrap();
        let full = Sacga::new(Schaffer::new(), cfg.clone())
            .run_seeded(23)
            .unwrap();
        let ga = Sacga::new(Schaffer::new(), cfg);
        let cp = match ga.run_until(23, 8).unwrap() {
            RunStatus::Suspended(cp) => cp,
            RunStatus::Complete(_) => panic!("run should suspend"),
        };
        let resumed = ga.resume(&cp).unwrap();
        assert_eq!(resumed.front_objectives(), full.front_objectives());
        assert_eq!(scrub(resumed.stats), scrub(full.stats.clone()));
        assert!(full.stats.injected_panics > 0);
    }

    #[test]
    fn aborting_fault_policy_propagates_typed_error() {
        let cfg = SacgaConfig::builder()
            .population_size(8)
            .generations(2)
            .inject_faults(FaultPlan::seeded(1).panics(1.0))
            .build()
            .unwrap();
        let err = Sacga::new(Schaffer::new(), cfg).run_seeded(1).unwrap_err();
        match err {
            OptimizeError::EvaluationFailed(f) => assert_eq!(f.kind, engine::FaultKind::Panic),
            other => panic!("expected EvaluationFailed, got {other:?}"),
        }
    }
}
