//! Neighborhood topologies for the cellular structured-population GA.
//!
//! "From Cells to Islands" frames island models and cellular GAs as two
//! ends of one continuum: both are populations structured by a
//! neighborhood graph, differing only in how many neighbors each deme
//! sees. This module is that graph. A [`Topology`] places `k` cells on a
//! fixed undirected graph — ring, 2-D torus, fully-connected, or
//! k-regular small-world — and answers two questions for the
//! [`cellular`](crate::cellular) loop:
//!
//! * **Who are my neighbors?** [`Topology::neighbors`] returns each
//!   cell's adjacency in a deterministic order. The list is self-free and
//!   symmetric (`j ∈ N(i) ⇔ i ∈ N(j)`), and its *first entry* is the
//!   cell's migration target, chosen so the fully-connected graph
//!   degenerates to the island model's `(i + 1) % k` ring migration.
//! * **Which neighbors are "ahead" of me?** [`Topology::orientation`]
//!   splits the adjacency into forward and backward halves by cyclic
//!   index distance, giving the mate-selection loop an anisotropy axis
//!   without any per-topology special cases.
//!
//! Everything here is pure and RNG-free except small-world chord
//! generation, which draws from its own seeded generator at construction
//! time — the optimizer's RNG stream never touches topology state.

use moea::OptimizeError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A neighborhood graph over `k` cells.
///
/// Construct one of the variants directly and call [`validate`]
/// (the cellular config builder does this for you), then query
/// [`cells`](Topology::cells) and [`neighbors`](Topology::neighbors).
///
/// [`validate`]: Topology::validate
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Cells on a cycle; each cell sees the `radius` nearest cells on
    /// either side (`2·radius` neighbors). Requires `2·radius < cells`.
    Ring {
        /// Number of cells (≥ 3).
        cells: usize,
        /// Neighborhood radius (≥ 1).
        radius: usize,
    },
    /// Cells on a `rows × cols` wrap-around grid; each cell sees the von
    /// Neumann ball of Manhattan radius `radius`.
    Torus {
        /// Grid rows (≥ 2).
        rows: usize,
        /// Grid columns (≥ 2).
        cols: usize,
        /// Manhattan neighborhood radius (≥ 1).
        radius: usize,
    },
    /// Every cell sees every other cell — the island model's topology.
    FullyConnected {
        /// Number of cells (≥ 2).
        cells: usize,
    },
    /// A ring of the given radius plus `chords` extra random symmetric
    /// edges (Watts–Strogatz-style shortcuts) drawn from a generator
    /// seeded with `seed`. Connectivity is guaranteed by the ring base.
    SmallWorld {
        /// Number of cells (≥ 3).
        cells: usize,
        /// Ring-lattice radius (≥ 1, `2·radius < cells`).
        radius: usize,
        /// Number of shortcut edges to add.
        chords: usize,
        /// Seed for the chord generator (part of the topology's
        /// identity: same seed, same graph).
        seed: u64,
    },
}

impl Topology {
    /// Number of cells in the graph.
    pub fn cells(&self) -> usize {
        match *self {
            Topology::Ring { cells, .. } => cells,
            Topology::Torus { rows, cols, .. } => rows * cols,
            Topology::FullyConnected { cells } => cells,
            Topology::SmallWorld { cells, .. } => cells,
        }
    }

    /// Short stable name of the variant, used in telemetry and specs.
    pub fn kind(&self) -> &'static str {
        match self {
            Topology::Ring { .. } => "ring",
            Topology::Torus { .. } => "torus",
            Topology::FullyConnected { .. } => "full",
            Topology::SmallWorld { .. } => "smallworld",
        }
    }

    /// Checks the structural parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when the cell count is
    /// too small for the variant, a radius is zero, or a ring radius
    /// reaches around the cycle (`2·radius ≥ cells`, which would make
    /// neighbor lists overlap themselves).
    pub fn validate(&self) -> Result<(), OptimizeError> {
        let ring_ok = |cells: usize, radius: usize| -> Result<(), OptimizeError> {
            if cells < 3 {
                return Err(OptimizeError::invalid_config(
                    "topology",
                    format!("a ring needs at least 3 cells, got {cells}"),
                ));
            }
            if radius == 0 {
                return Err(OptimizeError::invalid_config(
                    "topology",
                    "neighborhood radius must be at least 1",
                ));
            }
            if 2 * radius >= cells {
                return Err(OptimizeError::invalid_config(
                    "topology",
                    format!(
                        "ring radius {radius} wraps around {cells} cells; need 2·radius < cells"
                    ),
                ));
            }
            Ok(())
        };
        match *self {
            Topology::Ring { cells, radius } => ring_ok(cells, radius),
            Topology::Torus { rows, cols, radius } => {
                if rows < 2 || cols < 2 {
                    return Err(OptimizeError::invalid_config(
                        "topology",
                        format!("a torus needs at least a 2×2 grid, got {rows}×{cols}"),
                    ));
                }
                if radius == 0 {
                    return Err(OptimizeError::invalid_config(
                        "topology",
                        "neighborhood radius must be at least 1",
                    ));
                }
                Ok(())
            }
            Topology::FullyConnected { cells } => {
                if cells < 2 {
                    return Err(OptimizeError::invalid_config(
                        "topology",
                        format!("a fully-connected graph needs at least 2 cells, got {cells}"),
                    ));
                }
                Ok(())
            }
            Topology::SmallWorld { cells, radius, .. } => ring_ok(cells, radius),
        }
    }

    /// The adjacency of cell `i`, in a deterministic order with the
    /// migration target first. The list never contains `i` itself and
    /// never contains duplicates, and membership is symmetric.
    ///
    /// Orders per variant (all start with the successor `(i+1) % k`):
    ///
    /// * ring / small-world lattice part: `i+1, i−1, i+2, i−2, …` out to
    ///   the radius; small-world chords are appended afterwards in
    ///   construction order;
    /// * torus: east, south, west, north at distance 1, then each larger
    ///   Manhattan shell in the same rotational order;
    /// * fully-connected: `i+1, i+2, …, i+k−1` — so the first entry
    ///   reproduces the island model's ring-migration destination.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range. Call [`validate`](Self::validate)
    /// first; an invalid topology may also panic here.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        let k = self.cells();
        assert!(i < k, "cell index {i} out of range for {k} cells");
        match *self {
            Topology::Ring { cells, radius } => ring_neighbors(cells, radius, i),
            Topology::FullyConnected { cells } => (1..cells).map(|d| (i + d) % cells).collect(),
            Topology::Torus { rows, cols, radius } => {
                let (r, c) = (i / cols, i % cols);
                let mut out = Vec::new();
                for d in 1..=radius as isize {
                    // One Manhattan shell, rotating east → south → west →
                    // north; each wrapped coordinate is deduplicated so
                    // small grids stay self-free and repeat-free.
                    for step in 0..4 * d {
                        let (dr, dc) = shell_offset(d, step);
                        let nr = wrap(r as isize + dr, rows);
                        let nc = wrap(c as isize + dc, cols);
                        let j = nr * cols + nc;
                        if j != i && !out.contains(&j) {
                            out.push(j);
                        }
                    }
                }
                out
            }
            Topology::SmallWorld {
                cells,
                radius,
                chords,
                seed,
            } => {
                let mut out = ring_neighbors(cells, radius, i);
                for (a, b) in chord_edges(cells, radius, chords, seed) {
                    if a == i && !out.contains(&b) {
                        out.push(b);
                    } else if b == i && !out.contains(&a) {
                        out.push(a);
                    }
                }
                out
            }
        }
    }

    /// Splits cell `i`'s adjacency into (forward, backward) halves by
    /// cyclic index distance: `j` is *forward* of `i` when
    /// `0 < (j − i) mod k ≤ k/2`. The split is the anisotropy axis for
    /// mate selection; for odd `k` the halves are balanced, for even `k`
    /// the antipode counts as forward.
    pub fn orientation(&self, i: usize) -> (Vec<usize>, Vec<usize>) {
        let k = self.cells();
        self.neighbors(i)
            .into_iter()
            .partition(|&j| (j + k - i) % k <= k / 2)
    }

    /// Whether the neighborhood graph is connected (every cell reachable
    /// from cell 0). All validated variants are connected by
    /// construction; this is the independent check the property tests
    /// pin that claim with.
    pub fn is_connected(&self) -> bool {
        let k = self.cells();
        if k == 0 {
            return false;
        }
        let mut seen = vec![false; k];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reached = 1usize;
        while let Some(i) = stack.pop() {
            for j in self.neighbors(i) {
                if !seen[j] {
                    seen[j] = true;
                    reached += 1;
                    stack.push(j);
                }
            }
        }
        reached == k
    }
}

fn ring_neighbors(cells: usize, radius: usize, i: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(2 * radius);
    for d in 1..=radius {
        out.push((i + d) % cells);
        out.push((i + cells - d) % cells);
    }
    out
}

/// The `step`-th offset of the Manhattan shell at distance `d`, walking
/// the diamond clockwise from due east.
fn shell_offset(d: isize, step: isize) -> (isize, isize) {
    match step / d {
        0 => (step % d, d - step % d),       // east → south edge
        1 => (d - step % d, -(step % d)),    // south → west edge
        2 => (-(step % d), -(d - step % d)), // west → north edge
        _ => (-(d - step % d), step % d),    // north → east edge
    }
}

fn wrap(v: isize, m: usize) -> usize {
    v.rem_euclid(m as isize) as usize
}

/// The deterministic chord set of a small-world topology: `chords`
/// undirected edges drawn from a generator seeded with `seed`, skipping
/// self-loops, lattice edges, and duplicates. Attempts are bounded, so a
/// dense graph simply ends up with fewer chords than requested.
fn chord_edges(cells: usize, radius: usize, chords: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(chords);
    let lattice = |a: usize, b: usize| {
        let dist = (b + cells - a) % cells;
        dist.min(cells - dist) <= radius
    };
    let mut attempts = 0usize;
    let budget = chords.saturating_mul(20).saturating_add(cells);
    while edges.len() < chords && attempts < budget {
        attempts += 1;
        let a = rng.gen_range(0..cells);
        let b = rng.gen_range(0..cells);
        let (lo, hi) = (a.min(b), a.max(b));
        if lo == hi || lattice(lo, hi) || edges.contains(&(lo, hi)) {
            continue;
        }
        edges.push((lo, hi));
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_degenerate_shapes() {
        assert!(Topology::Ring {
            cells: 2,
            radius: 1
        }
        .validate()
        .is_err());
        assert!(Topology::Ring {
            cells: 8,
            radius: 4
        }
        .validate()
        .is_err());
        assert!(Topology::Ring {
            cells: 8,
            radius: 0
        }
        .validate()
        .is_err());
        assert!(Topology::Ring {
            cells: 8,
            radius: 3
        }
        .validate()
        .is_ok());
        assert!(Topology::Torus {
            rows: 1,
            cols: 4,
            radius: 1
        }
        .validate()
        .is_err());
        assert!(Topology::Torus {
            rows: 2,
            cols: 2,
            radius: 1
        }
        .validate()
        .is_ok());
        assert!(Topology::FullyConnected { cells: 1 }.validate().is_err());
        assert!(Topology::FullyConnected { cells: 2 }.validate().is_ok());
        assert!(Topology::SmallWorld {
            cells: 8,
            radius: 1,
            chords: 2,
            seed: 7
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn fully_connected_leads_with_the_island_migration_target() {
        let topo = Topology::FullyConnected { cells: 5 };
        for i in 0..5 {
            let n = topo.neighbors(i);
            assert_eq!(n[0], (i + 1) % 5);
            assert_eq!(n.len(), 4);
        }
    }

    #[test]
    fn ring_neighbors_alternate_sides() {
        let topo = Topology::Ring {
            cells: 8,
            radius: 2,
        };
        assert_eq!(topo.neighbors(0), vec![1, 7, 2, 6]);
        assert_eq!(topo.neighbors(7), vec![0, 6, 1, 5]);
    }

    #[test]
    fn torus_distance_one_is_von_neumann() {
        let topo = Topology::Torus {
            rows: 3,
            cols: 4,
            radius: 1,
        };
        // cell 0 is (0,0): east (0,1)=1, south (1,0)=4, west (0,3)=3,
        // north (2,0)=8.
        assert_eq!(topo.neighbors(0), vec![1, 4, 3, 8]);
    }

    #[test]
    fn torus_wraps_without_duplicates() {
        let topo = Topology::Torus {
            rows: 2,
            cols: 2,
            radius: 2,
        };
        for i in 0..4 {
            let n = topo.neighbors(i);
            assert!(!n.contains(&i));
            let mut sorted = n.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n.len(), "duplicates in {n:?}");
        }
    }

    #[test]
    fn small_world_chords_are_symmetric_and_reproducible() {
        let topo = Topology::SmallWorld {
            cells: 16,
            radius: 1,
            chords: 4,
            seed: 9,
        };
        for i in 0..16 {
            for j in topo.neighbors(i) {
                assert!(topo.neighbors(j).contains(&i), "{i} -> {j} not mirrored");
            }
            assert_eq!(topo.neighbors(i), topo.neighbors(i));
        }
        assert!(topo.is_connected());
    }

    #[test]
    fn orientation_splits_cover_the_adjacency() {
        let topo = Topology::Ring {
            cells: 9,
            radius: 2,
        };
        for i in 0..9 {
            let (fwd, bwd) = topo.orientation(i);
            let mut all = fwd.clone();
            all.extend(&bwd);
            all.sort_unstable();
            let mut n = topo.neighbors(i);
            n.sort_unstable();
            assert_eq!(all, n);
            assert_eq!(fwd.len(), 2);
            assert_eq!(bwd.len(), 2);
        }
    }

    #[test]
    fn all_variants_are_connected() {
        let topos = [
            Topology::Ring {
                cells: 12,
                radius: 1,
            },
            Topology::Torus {
                rows: 3,
                cols: 5,
                radius: 1,
            },
            Topology::FullyConnected { cells: 6 },
            Topology::SmallWorld {
                cells: 12,
                radius: 2,
                chords: 3,
                seed: 1,
            },
        ];
        for t in topos {
            t.validate().unwrap();
            assert!(t.is_connected(), "{t:?} not connected");
        }
    }
}
