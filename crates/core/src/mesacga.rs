//! MESACGA — Multi-phase Expanding-partitions SACGA (Sec. 4.5, Fig. 7).
//!
//! Rather than guessing the optimal static partition count, MESACGA starts
//! with many small partitions and repeatedly *expands* them: at the end of
//! each phase the partition count shrinks (capacity grows), local Pareto
//! fronts merge, and some locally-superior-but-globally-inferior solutions
//! are discarded — accelerating front movement while the earlier
//! fine-grained phases have already seeded diversity. The final phase has
//! a single partition covering the whole objective space, i.e. pure global
//! competition.
//!
//! The paper's example schedule: 7 phases of 20, 13, 8, 5, 3, 2, 1
//! partitions, each running `span` iterations, after a pure-local phase.

use crate::anneal::ProbabilityShaper;
use crate::checkpoint::{EngineState, MesacgaCheckpoint, SavedIndividual};
use crate::partition::PartitionGrid;
use crate::sacga::{population_front, Engine, SacgaConfig};
use crate::telemetry::{expect_complete, EventKind, NullSink, Optimizer, RunEvent, Sink};
use moea::individual::Individual;
use moea::problem::Problem;
use moea::{OptimizeError, RunOutcome, RunStatus};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One MESACGA phase: a partition count and how many generations to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Number of partitions during this phase.
    pub partitions: usize,
    /// Generations (the `span` of this phase's annealing schedule).
    pub span: usize,
}

impl PhaseSpec {
    /// Creates a phase spec.
    pub fn new(partitions: usize, span: usize) -> Self {
        PhaseSpec { partitions, span }
    }
}

/// Configuration of a MESACGA run.
#[derive(Debug, Clone, PartialEq)]
pub struct MesacgaConfig {
    pub(crate) base: SacgaConfig,
    pub(crate) phases: Vec<PhaseSpec>,
}

impl MesacgaConfig {
    /// Starts a builder.
    pub fn builder() -> MesacgaConfigBuilder {
        MesacgaConfigBuilder::default()
    }

    /// The phase schedule.
    pub fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    /// Total phase-II generations across all phases.
    pub fn total_span(&self) -> usize {
        self.phases.iter().map(|p| p.span).sum()
    }
}

/// Builder for [`MesacgaConfig`].
#[derive(Debug, Clone)]
pub struct MesacgaConfigBuilder {
    population_size: usize,
    phase1_max: usize,
    phases: Vec<PhaseSpec>,
    shaper: ProbabilityShaper,
    n_superior: usize,
    roulette_decay: f64,
    slice_objective: usize,
    slice_range: Option<(f64, f64)>,
    variation: Option<moea::operators::Variation>,
    exec: moea::setup::EngineSetup,
}

impl Default for MesacgaConfigBuilder {
    fn default() -> Self {
        MesacgaConfigBuilder {
            population_size: 100,
            phase1_max: 50,
            phases: Self::paper_phase_counts(100),
            shaper: ProbabilityShaper::standard(),
            n_superior: 5,
            roulette_decay: 0.8,
            slice_objective: 0,
            slice_range: None,
            variation: None,
            exec: moea::setup::EngineSetup::new(),
        }
    }
}

impl MesacgaConfigBuilder {
    /// The paper's 7-phase schedule (20, 13, 8, 5, 3, 2, 1 partitions)
    /// with a uniform `span` per phase.
    pub fn paper_phase_counts(span: usize) -> Vec<PhaseSpec> {
        [20, 13, 8, 5, 3, 2, 1]
            .into_iter()
            .map(|m| PhaseSpec::new(m, span))
            .collect()
    }

    /// Sets the population size.
    pub fn population_size(mut self, n: usize) -> Self {
        self.population_size = n;
        self
    }

    /// Caps the pure-local phase I.
    pub fn phase1_max(mut self, cap: usize) -> Self {
        self.phase1_max = cap;
        self
    }

    /// Replaces the phase schedule.
    pub fn phases(mut self, phases: Vec<PhaseSpec>) -> Self {
        self.phases = phases;
        self
    }

    /// Uses the paper's 20/13/8/5/3/2/1 schedule with uniform `span`.
    pub fn paper_phases(mut self, span: usize) -> Self {
        self.phases = Self::paper_phase_counts(span);
        self
    }

    /// Overrides the probability-shaping targets.
    pub fn shaper(mut self, shaper: ProbabilityShaper) -> Self {
        self.shaper = shaper;
        self
    }

    /// Sets `n`, the desired globally superior solutions per partition.
    pub fn n_superior(mut self, n: usize) -> Self {
        self.n_superior = n;
        self
    }

    /// Sets the rank-roulette decay.
    pub fn roulette_decay(mut self, d: f64) -> Self {
        self.roulette_decay = d;
        self
    }

    /// Chooses the partitioned objective.
    pub fn slice_objective(mut self, k: usize) -> Self {
        self.slice_objective = k;
        self
    }

    /// Fixes the partitioned objective range a priori.
    pub fn slice_range(mut self, lo: f64, hi: f64) -> Self {
        self.slice_range = Some((lo, hi));
        self
    }

    /// Overrides the variation operators.
    pub fn variation(mut self, v: moea::operators::Variation) -> Self {
        self.variation = Some(v);
        self
    }

    /// Replaces the whole engine-knob bundle at once (see
    /// [`moea::EngineSetup`]); the individual knob methods below
    /// delegate to the same bundle.
    pub fn engine_setup(mut self, exec: moea::setup::EngineSetup) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<engine::EvaluatorKind>) -> Self {
        self.exec = self.exec.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries
    /// (default: disabled).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.exec = self.exec.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.exec = self.exec.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy for candidate evaluation: retry
    /// budget, non-finite quarantine, and exhaustion behavior.
    pub fn fault_policy(mut self, fault: engine::FaultPolicy) -> Self {
        self.exec = self.exec.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection with the given plan (a
    /// testing/chaos harness — injected faults are reproducible per
    /// candidate).
    pub fn inject_faults(mut self, plan: engine::FaultPlan) -> Self {
        self.exec = self.exec.inject_faults(plan);
        self
    }

    /// Routes memoization through a cache pooled across concurrent runs
    /// (see [`SacgaConfigBuilder::shared_cache`](crate::sacga::SacgaConfigBuilder::shared_cache)).
    pub fn shared_cache(mut self, cache: engine::SharedCache<moea::Evaluation>) -> Self {
        self.exec = self.exec.shared_cache(cache);
        self
    }

    /// Attaches an opt-in surrogate pre-screen (see
    /// [`SacgaConfigBuilder::surrogate_screen`](crate::sacga::SacgaConfigBuilder::surrogate_screen)).
    pub fn surrogate_screen(mut self, screen: engine::SurrogateScreen<moea::Evaluation>) -> Self {
        self.exec = self.exec.surrogate_screen(screen);
        self
    }

    /// Attaches a live [`engine::EngineMetrics`] bundle (see
    /// [`SacgaConfigBuilder::metrics`](crate::sacga::SacgaConfigBuilder::metrics)).
    pub fn metrics(mut self, metrics: engine::EngineMetrics) -> Self {
        self.exec = self.exec.metrics(metrics);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when the phase list is
    /// empty, any phase has zero partitions or zero span, or the base
    /// parameters are invalid (see [`SacgaConfig::builder`]).
    pub fn build(self) -> Result<MesacgaConfig, OptimizeError> {
        if self.phases.is_empty() {
            return Err(OptimizeError::invalid_config(
                "phases",
                "need at least one phase",
            ));
        }
        for (i, ph) in self.phases.iter().enumerate() {
            if ph.partitions == 0 {
                return Err(OptimizeError::invalid_config(
                    "phases",
                    format!("phase {i} has zero partitions"),
                ));
            }
            if ph.span == 0 {
                return Err(OptimizeError::invalid_config(
                    "phases",
                    format!("phase {i} has zero span"),
                ));
            }
        }
        let total: usize = self.phases.iter().map(|p| p.span).sum();
        let mut base_builder = SacgaConfig::builder()
            .population_size(self.population_size)
            .generations(self.phase1_max + total)
            .partitions(self.phases[0].partitions)
            .n_superior(self.n_superior)
            .phase1_max(self.phase1_max)
            .shaper(self.shaper)
            .roulette_decay(self.roulette_decay)
            .slice_objective(self.slice_objective);
        if let Some((lo, hi)) = self.slice_range {
            base_builder = base_builder.slice_range(lo, hi);
        }
        if let Some(v) = self.variation {
            base_builder = base_builder.variation(v);
        }
        let mut base = base_builder.build()?;
        base.exec = self.exec;
        Ok(MesacgaConfig {
            base,
            phases: self.phases,
        })
    }
}

/// How a drive begins: a fresh seed or a stored checkpoint.
enum Launch<'c> {
    Seed(u64),
    Checkpoint(&'c MesacgaCheckpoint),
}

/// The MESACGA optimizer.
#[derive(Debug)]
pub struct Mesacga<P: Problem> {
    problem: P,
    config: MesacgaConfig,
}

impl<P: Problem> Mesacga<P> {
    /// Creates an optimizer for `problem` with `config`.
    pub fn new(problem: P, config: MesacgaConfig) -> Self {
        Mesacga { problem, config }
    }

    /// Runs with a seeded RNG and no instrumentation (equivalent to
    /// [`Optimizer::run`]).
    ///
    /// # Errors
    ///
    /// Propagates problem-definition errors discovered at start-up and
    /// [`OptimizeError::EvaluationFailed`] when a candidate evaluation
    /// exhausts the fault policy's retry budget with an aborting policy.
    pub fn run_seeded(&self, seed: u64) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        self.drive(Launch::Seed(seed), None, &mut NullSink)
            .map(expect_complete)
    }

    /// The shared run loop: phase I, then the expanding-partition cascade.
    /// Suspension can happen before any pending generation; the checkpoint
    /// records which phase was active and where its annealing schedule
    /// started, so the resumed run re-derives identical constants.
    /// Structured events flow into `sink`; emission never consumes RNG,
    /// so instrumented and bare runs are bit-identical.
    fn drive(
        &self,
        launch: Launch<'_>,
        stop_after: Option<usize>,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<MesacgaCheckpoint>, OptimizeError>
    where
        P: Sync,
    {
        let base = &self.config.base;
        let should_stop = |gen: usize| stop_after.is_some_and(|cap| gen >= cap);
        let fresh = matches!(launch, Launch::Seed(_));
        let (mut rng, mut engine, phase1_done, mut gen_t, resume_phase, mut phase_fronts) =
            match launch {
                Launch::Seed(seed) => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let engine = Engine::start(&self.problem, base, &mut rng)?;
                    let fronts = Vec::with_capacity(self.config.phases.len());
                    (rng, engine, false, 0, None, fronts)
                }
                Launch::Checkpoint(cp) => {
                    if cp.state.phase1_done && cp.phase_index >= self.config.phases.len() {
                        return Err(OptimizeError::invalid_checkpoint(format!(
                            "phase index {} out of range for a {}-phase schedule",
                            cp.phase_index,
                            self.config.phases.len()
                        )));
                    }
                    let (engine, rng) = Engine::restore(&self.problem, base, &cp.state)?;
                    let fronts: Vec<Vec<Individual>> = cp
                        .phase_fronts
                        .iter()
                        .map(|f| f.iter().map(SavedIndividual::to_individual).collect())
                        .collect();
                    // A checkpoint is only ever taken *inside* a phase's
                    // span, i.e. after its regrid: resuming must skip the
                    // regrid and reuse the stored schedule origin.
                    let resume_phase = cp
                        .state
                        .phase1_done
                        .then_some((cp.phase_index, cp.phase_start));
                    (
                        rng,
                        engine,
                        cp.state.phase1_done,
                        cp.state.gen_t,
                        resume_phase,
                        fronts,
                    )
                }
            };

        if sink.wants(EventKind::StageTiming) {
            engine.enable_timing();
        }
        // Faults from the initial-population evaluation surface as
        // generation-0 events. A resumed segment emits nothing for the
        // checkpoint generation — its events belong to the segment that
        // executed it.
        if fresh {
            engine.emit_generation(sink);
        } else {
            engine.discard_restored_faults();
        }

        // Phase I: pure local competition with the first phase's grid.
        if !phase1_done {
            let mut feasibility = sink
                .wants(EventKind::PartitionFeasible)
                .then(|| engine.partition_feasibility());
            while engine.gen < base.phase1_max
                && !(engine.pop.all_partitions_feasible() && engine.gen > 0)
            {
                if should_stop(engine.gen) {
                    return Ok(suspended(
                        sink,
                        engine.snapshot(&rng, false, 0),
                        0,
                        0,
                        &phase_fronts,
                    ));
                }
                engine.local_generation(&mut rng)?;
                if let Some(before) = &mut feasibility {
                    let now = engine.partition_feasibility();
                    for (p, (was, is)) in before.iter().zip(&now).enumerate() {
                        if !was && *is {
                            sink.record(&RunEvent::PartitionFeasible {
                                generation: engine.gen,
                                partition: p,
                            });
                        }
                    }
                    *before = now;
                }
                engine.emit_generation(sink);
            }
            if !engine.pop.all_partitions_feasible() {
                engine.pop.discard_infeasible_partitions();
            }
            gen_t = engine.gen;
        }

        // Expanding-partition SACGA phases.
        let first_phase = resume_phase.map_or(0, |(pi, _)| pi);
        for (pi, phase) in self.config.phases.iter().enumerate().skip(first_phase) {
            let phase_start = match resume_phase {
                Some((rpi, start)) if rpi == pi => start,
                _ => {
                    if pi > 0 || engine.pop.grid().partition_count() != phase.partitions {
                        let new_grid = engine.pop.grid().with_partitions(phase.partitions)?;
                        engine.pop = take_and_regrid(&mut engine.pop, new_grid);
                        engine.pop.rank_locally();
                    }
                    if sink.wants(EventKind::PhaseTransition) {
                        sink.record(&RunEvent::PhaseTransition {
                            generation: engine.gen,
                            phase_index: pi,
                            partitions: phase.partitions,
                            span: phase.span,
                        });
                    }
                    engine.gen
                }
            };
            let (policy, schedule) = base.shaper.solve(base.n_superior, phase.span)?;
            let phase_end = phase_start + phase.span;
            while engine.gen < phase_end {
                if should_stop(engine.gen) {
                    return Ok(suspended(
                        sink,
                        engine.snapshot(&rng, true, gen_t),
                        pi,
                        phase_start,
                        &phase_fronts,
                    ));
                }
                let (promoted, candidates) =
                    engine.annealed_generation(&mut rng, &policy, &schedule, phase_start)?;
                if sink.wants(EventKind::Promotion) {
                    sink.record(&RunEvent::Promotion {
                        generation: engine.gen,
                        promoted,
                        candidates,
                    });
                }
                engine.emit_generation(sink);
            }
            // End-of-phase Global Pareto Front: one global competition on
            // the current population (what Fig. 10 tracks).
            phase_fronts.push(population_front(&engine.flat_cache));
        }

        let mut outcome = engine.finish(gen_t);
        outcome.phase_fronts = phase_fronts;
        Ok(RunStatus::Complete(Box::new(outcome)))
    }
}

impl<P: Problem + Sync> Optimizer for Mesacga<P> {
    type Checkpoint = MesacgaCheckpoint;

    fn algorithm(&self) -> &'static str {
        "mesacga"
    }

    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        self.drive(Launch::Seed(seed), None, sink)
            .map(expect_complete)
    }

    fn run_until_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<MesacgaCheckpoint>, OptimizeError> {
        self.drive(Launch::Seed(seed), Some(stop_after), sink)
    }

    fn resume_with(
        &self,
        checkpoint: &MesacgaCheckpoint,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        self.drive(Launch::Checkpoint(checkpoint), None, sink)
            .map(expect_complete)
    }

    fn resume_until_with(
        &self,
        checkpoint: &MesacgaCheckpoint,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<MesacgaCheckpoint>, OptimizeError> {
        self.drive(Launch::Checkpoint(checkpoint), Some(stop_after), sink)
    }
}

/// Announces and packages a suspension into a checkpoint.
fn suspended(
    sink: &mut dyn Sink,
    state: EngineState,
    phase_index: usize,
    phase_start: usize,
    fronts: &[Vec<Individual>],
) -> RunStatus<MesacgaCheckpoint> {
    if sink.wants(EventKind::CheckpointWritten) {
        sink.record(&RunEvent::CheckpointWritten {
            generation: state.gen,
        });
    }
    RunStatus::Suspended(Box::new(MesacgaCheckpoint {
        state,
        phase_index,
        phase_start,
        phase_fronts: fronts
            .iter()
            .map(|f| f.iter().map(SavedIndividual::from_individual).collect())
            .collect(),
    }))
}

/// Moves the population out of the engine, regrids it, and hands it back.
fn take_and_regrid(
    pop: &mut crate::partition::PartitionedPopulation,
    grid: PartitionGrid,
) -> crate::partition::PartitionedPopulation {
    let placeholder = crate::partition::PartitionedPopulation::distribute(grid, Vec::new());
    let owned = std::mem::replace(pop, placeholder);
    owned.regrid(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::MemorySink;
    use moea::problems::{NarrowingCorridor, Schaffer};

    fn quick_config() -> MesacgaConfig {
        MesacgaConfig::builder()
            .population_size(40)
            .phase1_max(5)
            .phases(vec![
                PhaseSpec::new(8, 10),
                PhaseSpec::new(4, 10),
                PhaseSpec::new(1, 10),
            ])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_phases() {
        assert!(MesacgaConfig::builder().phases(vec![]).build().is_err());
        assert!(MesacgaConfig::builder()
            .phases(vec![PhaseSpec::new(0, 10)])
            .build()
            .is_err());
        assert!(MesacgaConfig::builder()
            .phases(vec![PhaseSpec::new(4, 0)])
            .build()
            .is_err());
        assert!(MesacgaConfig::builder().build().is_ok());
    }

    #[test]
    fn paper_schedule_shape() {
        let phases = MesacgaConfigBuilder::paper_phase_counts(150);
        assert_eq!(phases.len(), 7);
        let counts: Vec<usize> = phases.iter().map(|p| p.partitions).collect();
        assert_eq!(counts, vec![20, 13, 8, 5, 3, 2, 1]);
        assert!(phases.iter().all(|p| p.span == 150));
    }

    #[test]
    fn run_produces_front_and_phase_snapshots() {
        let r = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(5)
            .unwrap();
        assert!(!r.front.is_empty());
        assert_eq!(r.phase_fronts.len(), 3);
        assert!(r.phase_fronts.iter().all(|f| !f.is_empty()));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(6)
            .unwrap();
        let b = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(6)
            .unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
    }

    #[test]
    fn generations_total_phase1_plus_spans() {
        let r = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(7)
            .unwrap();
        // phase 1 ends immediately on an unconstrained problem
        assert_eq!(r.generations, r.gen_t + 30);
    }

    #[test]
    fn phase_fronts_quality_non_degrading_on_average() {
        use moea::hypervolume::hypervolume_2d;
        let r = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(8)
            .unwrap();
        let hv = |front: &[Individual]| {
            let pts: Vec<[f64; 2]> = front
                .iter()
                .map(|m| [m.objective(0), m.objective(1)])
                .collect();
            hypervolume_2d(&pts, [16.0, 16.0])
        };
        let first = hv(&r.phase_fronts[0]);
        let last = hv(r.phase_fronts.last().unwrap());
        assert!(
            last >= first * 0.9,
            "front should not collapse across phases: {first} -> {last}"
        );
    }

    #[test]
    fn constrained_problem_runs_through_all_phases() {
        let cfg = MesacgaConfig::builder()
            .population_size(30)
            .phase1_max(8)
            .phases(vec![PhaseSpec::new(6, 8), PhaseSpec::new(2, 8)])
            .slice_range(-1.0, 0.0)
            .build()
            .unwrap();
        let r = Mesacga::new(NarrowingCorridor::new(0.05), cfg)
            .run_seeded(9)
            .unwrap();
        assert_eq!(r.phase_fronts.len(), 2);
        assert!(!r.front.is_empty());
    }

    #[test]
    fn generation_end_emitted_every_generation() {
        let mut sink = MemorySink::new();
        let r = Mesacga::new(Schaffer::new(), quick_config())
            .run_with(1, &mut sink)
            .unwrap();
        let gens: Vec<usize> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                RunEvent::GenerationEnd { generation, .. } => Some(*generation),
                _ => None,
            })
            .collect();
        // One GenerationEnd per executed generation, in order, none for
        // the initial population.
        assert_eq!(gens, (1..=r.generations).collect::<Vec<_>>());
    }

    #[test]
    fn phase_transition_emitted_once_per_expanding_phase() {
        let mut sink = MemorySink::new();
        let r = Mesacga::new(Schaffer::new(), quick_config())
            .run_with(2, &mut sink)
            .unwrap();
        let transitions: Vec<(usize, usize)> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                RunEvent::PhaseTransition {
                    phase_index,
                    partitions,
                    ..
                } => Some((*phase_index, *partitions)),
                _ => None,
            })
            .collect();
        assert_eq!(transitions, vec![(0, 8), (1, 4), (2, 1)]);
        // Every phase-II generation reports its promotion pressure.
        let promotions = sink
            .events()
            .iter()
            .filter(|e| matches!(e, RunEvent::Promotion { .. }))
            .count();
        assert_eq!(promotions, r.generations - r.gen_t);
    }

    #[test]
    fn sink_attached_run_is_bit_identical_to_bare_run() {
        let bare = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(3)
            .unwrap();
        let mut sink = MemorySink::new();
        let watched = Mesacga::new(Schaffer::new(), quick_config())
            .run_with(3, &mut sink)
            .unwrap();
        assert_eq!(bare.front_objectives(), watched.front_objectives());
        assert_eq!(bare.history, watched.history);
        assert!(!sink.events().is_empty());
    }

    /// Strips wall-clock timing so stats can be compared across runs.
    fn scrub(mut stats: engine::EngineStats) -> engine::EngineStats {
        stats.eval_time = std::time::Duration::ZERO;
        stats.backoff_time = std::time::Duration::ZERO;
        stats
    }

    fn objectives_of(pop: &[Individual]) -> Vec<Vec<f64>> {
        pop.iter().map(|m| m.objectives().to_vec()).collect()
    }

    #[test]
    fn kill_mid_phase_and_resume_matches_uninterrupted_run() {
        let full = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(12)
            .unwrap();
        // Stop points cover: before any generation, inside each expanding
        // phase (quick_config spans three phases of 10 generations each
        // after phase I), and near the end of the run.
        for stop in [0usize, 5, 11, 15, 21, 28] {
            let ga = Mesacga::new(Schaffer::new(), quick_config());
            let cp = match ga.run_until(12, stop).unwrap() {
                RunStatus::Suspended(cp) => cp,
                RunStatus::Complete(_) => panic!("run should suspend at gen {stop}"),
            };
            assert_eq!(cp.state.gen, stop);
            let resumed = ga.resume(&cp).unwrap();
            assert_eq!(resumed.front_objectives(), full.front_objectives());
            assert_eq!(resumed.history, full.history);
            assert_eq!(resumed.phase_fronts.len(), full.phase_fronts.len());
            for (a, b) in resumed.phase_fronts.iter().zip(&full.phase_fronts) {
                assert_eq!(objectives_of(a), objectives_of(b));
            }
            assert_eq!(scrub(resumed.stats), scrub(full.stats.clone()));
        }
    }

    #[test]
    fn checkpoint_text_round_trip_resumes_identically() {
        let ga = Mesacga::new(Schaffer::new(), quick_config());
        let full = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(14)
            .unwrap();
        // Suspend mid-second-phase so the checkpoint carries a phase front.
        let cp = match ga.run_until(14, 15).unwrap() {
            RunStatus::Suspended(cp) => cp,
            RunStatus::Complete(_) => panic!("run should suspend"),
        };
        assert!(!cp.phase_fronts.is_empty());
        let restored = MesacgaCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(*cp, restored);
        let resumed = ga.resume(&restored).unwrap();
        assert_eq!(resumed.front_objectives(), full.front_objectives());
        assert_eq!(resumed.history, full.history);
    }

    #[test]
    fn resume_until_chains_across_checkpoints() {
        let full = Mesacga::new(Schaffer::new(), quick_config())
            .run_seeded(15)
            .unwrap();
        let ga = Mesacga::new(Schaffer::new(), quick_config());
        let mut run = ga.run_until(15, 6).unwrap();
        let mut hops = 0;
        let result = loop {
            match run {
                RunStatus::Complete(r) => break *r,
                RunStatus::Suspended(cp) => {
                    hops += 1;
                    run = ga.resume_until(&cp, cp.state.gen + 6).unwrap();
                }
            }
        };
        assert!(hops >= 4, "expected several suspensions, got {hops}");
        assert_eq!(result.front_objectives(), full.front_objectives());
        assert_eq!(result.history, full.history);
    }

    #[test]
    fn fault_injected_run_matches_fault_free_front() {
        let base = MesacgaConfig::builder()
            .population_size(40)
            .phase1_max(5)
            .phases(vec![PhaseSpec::new(6, 8), PhaseSpec::new(2, 8)]);
        let clean_cfg = base.clone().build().unwrap();
        let faulty_cfg = base
            .fault_policy(engine::FaultPolicy::tolerant(3))
            .inject_faults(engine::FaultPlan::seeded(21).panics(0.05).nonfinite(0.05))
            .build()
            .unwrap();
        let clean = Mesacga::new(Schaffer::new(), clean_cfg)
            .run_seeded(16)
            .unwrap();
        let faulty = Mesacga::new(Schaffer::new(), faulty_cfg)
            .run_seeded(16)
            .unwrap();
        assert_eq!(clean.front_objectives(), faulty.front_objectives());
        assert!(faulty.stats.failures > 0);
        assert_eq!(
            faulty.stats.failures,
            faulty.stats.injected_panics + faulty.stats.injected_nonfinite
        );
        assert_eq!(faulty.stats.recovered, faulty.stats.failures);
    }

    #[test]
    fn exhausted_checkpoint_is_rejected() {
        let ga = Mesacga::new(Schaffer::new(), quick_config());
        // Drive to the last generation, grab the final checkpoint, finish
        // it, then check a claim past the schedule is rejected on resume.
        let cp = match ga.run_until(17, 30).unwrap() {
            RunStatus::Suspended(cp) => cp,
            RunStatus::Complete(_) => panic!("run should suspend at gen 30"),
        };
        let mut doctored = (*cp).clone();
        doctored.phase_index = quick_config().phases().len();
        assert!(matches!(
            ga.resume(&doctored),
            Err(OptimizeError::InvalidCheckpoint { .. })
        ));
        // The genuine checkpoint still resumes fine.
        assert!(ga.resume(&cp).is_ok());
    }
}
