//! Plain-text run checkpoints: everything needed to suspend a SACGA or
//! MESACGA run at a generation boundary and later resume it
//! *bit-identically* — population, RNG state, generation counters,
//! annealing bookkeeping, and engine statistics.
//!
//! The format is line-oriented ASCII with no external dependencies.
//! Floating-point values are written as the 16-hex-digit bit pattern of
//! the `f64` ([`f64::to_bits`]), which round-trips every value —
//! including infinities and signed zeros — exactly. Durations are
//! written as integer nanoseconds. A version header guards against
//! format drift, and a trailing `end` record catches truncated files.

use crate::sacga::GenerationStats;
use engine::EngineStats;
use moea::individual::Individual;
use moea::{Evaluation, OptimizeError};
use std::time::Duration;

const SACGA_HEADER: &str = "sacga-checkpoint v1";
const MESACGA_HEADER: &str = "mesacga-checkpoint v1";
const STEADY_HEADER: &str = "steady-checkpoint v1";
const CELLULAR_HEADER: &str = "cellular-checkpoint v1";

/// A serialized individual: genes, evaluation, and ranking bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedIndividual {
    /// Decision variables.
    pub genes: Vec<f64>,
    /// Minimized objective values.
    pub objectives: Vec<f64>,
    /// Constraint-violation amounts.
    pub violations: Vec<f64>,
    /// Non-domination rank at suspension time.
    pub rank: usize,
    /// Crowding distance at suspension time.
    pub crowding: f64,
}

impl SavedIndividual {
    /// Captures an individual for serialization.
    pub fn from_individual(ind: &Individual) -> Self {
        SavedIndividual {
            genes: ind.genes.clone(),
            objectives: ind.objectives().to_vec(),
            violations: ind.evaluation.constraint_violations().to_vec(),
            rank: ind.rank,
            crowding: ind.crowding,
        }
    }

    /// Rebuilds the individual. [`Evaluation::new`]'s sanitization is
    /// idempotent on the already-sanitized stored values, so the rebuilt
    /// evaluation is bit-identical to the captured one.
    pub fn to_individual(&self) -> Individual {
        let mut ind = Individual::new(
            self.genes.clone(),
            Evaluation::new(self.objectives.clone(), self.violations.clone()),
        );
        ind.rank = self.rank;
        ind.crowding = self.crowding;
        ind
    }
}

/// Complete state of the shared partition-GA engine at a generation
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState {
    /// RNG internal state (xoshiro256**).
    pub rng: [u64; 4],
    /// Generations executed so far.
    pub gen: usize,
    /// Whether the phase-I boundary processing (infeasible-partition
    /// discard, `gen_t` capture) has already run.
    pub phase1_done: bool,
    /// Length of phase I (meaningful only when `phase1_done`).
    pub gen_t: usize,
    /// Index of the sliced objective.
    pub grid_objective: usize,
    /// Lower edge of the sliced range.
    pub grid_lo: f64,
    /// Upper edge of the sliced range.
    pub grid_hi: f64,
    /// Partition count of the grid.
    pub grid_partitions: usize,
    /// Liveness flag per partition.
    pub alive: Vec<bool>,
    /// Members of each partition, in storage order.
    pub partitions: Vec<Vec<SavedIndividual>>,
    /// Per-generation history recorded so far.
    pub history: Vec<GenerationStats>,
    /// Evaluation-engine counters at suspension time.
    pub stats: EngineStats,
}

/// A suspended SACGA run, resumable via
/// [`Optimizer::resume`](crate::telemetry::Optimizer::resume) on a
/// [`Sacga`](crate::sacga::Sacga) configured identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SacgaCheckpoint {
    /// The engine state at the suspension boundary.
    pub state: EngineState,
}

impl SacgaCheckpoint {
    /// Serializes the checkpoint to its text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(SACGA_HEADER);
        out.push('\n');
        write_state(&mut out, &self.state);
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidCheckpoint`] on a wrong header,
    /// malformed records, or truncation.
    pub fn from_text(text: &str) -> Result<Self, OptimizeError> {
        let mut lines = Lines::new(text);
        lines.expect_literal(SACGA_HEADER)?;
        let state = parse_state(&mut lines)?;
        lines.expect_literal("end")?;
        lines.expect_exhausted()?;
        Ok(SacgaCheckpoint { state })
    }
}

/// A suspended MESACGA run, resumable via
/// [`Optimizer::resume`](crate::telemetry::Optimizer::resume) on a
/// [`Mesacga`](crate::mesacga::Mesacga) configured identically.
#[derive(Debug, Clone, PartialEq)]
pub struct MesacgaCheckpoint {
    /// The engine state at the suspension boundary.
    pub state: EngineState,
    /// Index of the phase the run was suspended in.
    pub phase_index: usize,
    /// Generation at which that phase's annealing schedule started.
    pub phase_start: usize,
    /// End-of-phase fronts captured before suspension.
    pub phase_fronts: Vec<Vec<SavedIndividual>>,
}

impl MesacgaCheckpoint {
    /// Serializes the checkpoint to its text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MESACGA_HEADER);
        out.push('\n');
        write_state(&mut out, &self.state);
        out.push_str(&format!("phase_index {}\n", self.phase_index));
        out.push_str(&format!("phase_start {}\n", self.phase_start));
        out.push_str(&format!("phase_fronts {}\n", self.phase_fronts.len()));
        for (fi, front) in self.phase_fronts.iter().enumerate() {
            out.push_str(&format!("f {fi} {}\n", front.len()));
            for ind in front {
                write_individual(&mut out, ind);
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidCheckpoint`] on a wrong header,
    /// malformed records, or truncation.
    pub fn from_text(text: &str) -> Result<Self, OptimizeError> {
        let mut lines = Lines::new(text);
        lines.expect_literal(MESACGA_HEADER)?;
        let state = parse_state(&mut lines)?;
        let phase_index = lines.tagged_usize("phase_index")?;
        let phase_start = lines.tagged_usize("phase_start")?;
        let n_fronts = lines.tagged_usize("phase_fronts")?;
        let mut phase_fronts = Vec::with_capacity(n_fronts);
        for fi in 0..n_fronts {
            let (no, toks) = lines.tagged("f", 2)?;
            if parse_usize(toks[0], no)? != fi {
                return Err(bad(no, "front records out of order"));
            }
            let count = parse_usize(toks[1], no)?;
            let mut front = Vec::with_capacity(count);
            for _ in 0..count {
                front.push(parse_individual(&mut lines)?);
            }
            phase_fronts.push(front);
        }
        lines.expect_literal("end")?;
        lines.expect_exhausted()?;
        Ok(MesacgaCheckpoint {
            state,
            phase_index,
            phase_start,
            phase_fronts,
        })
    }
}

/// A suspended steady-state SACGA run, resumable via
/// [`Optimizer::resume`](crate::telemetry::Optimizer::resume) on a
/// [`SteadySacga`](crate::steady::SteadySacga) configured identically.
///
/// Steady-state production runs ahead of merging, so at a generation
/// boundary there may be offspring already submitted (their selection and
/// variation RNG consumed) but not yet merged into the population. Those
/// travel in [`pending`](SteadyCheckpoint::pending) as genes plus their
/// completed evaluations, in submission order; resume primes them back
/// into the evaluation session so the merge stream continues exactly
/// where it stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyCheckpoint {
    /// The engine state at the suspension boundary.
    pub state: EngineState,
    /// Offspring submitted but not yet merged: genes and evaluations in
    /// submission order (rank/crowding carry the freshly-constructed
    /// individual's defaults, exactly as an in-stream merge would see).
    pub pending: Vec<SavedIndividual>,
}

impl SteadyCheckpoint {
    /// Serializes the checkpoint to its text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(STEADY_HEADER);
        out.push('\n');
        write_state(&mut out, &self.state);
        out.push_str(&format!("pending {}\n", self.pending.len()));
        for ind in &self.pending {
            write_individual(&mut out, ind);
        }
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidCheckpoint`] on a wrong header,
    /// malformed records, or truncation.
    pub fn from_text(text: &str) -> Result<Self, OptimizeError> {
        let mut lines = Lines::new(text);
        lines.expect_literal(STEADY_HEADER)?;
        let state = parse_state(&mut lines)?;
        let n_pending = lines.tagged_usize("pending")?;
        let mut pending = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push(parse_individual(&mut lines)?);
        }
        lines.expect_literal("end")?;
        lines.expect_exhausted()?;
        Ok(SteadyCheckpoint { state, pending })
    }
}

/// A suspended cellular run, resumable via
/// [`Optimizer::resume`](crate::telemetry::Optimizer::resume) on a
/// [`CellularGa`](crate::cellular::CellularGa) configured identically.
///
/// The cellular loop drains every submitted offspring before crossing a
/// generation boundary (its merge boundary), so — unlike
/// [`SteadyCheckpoint`] — there is never a pending look-ahead to rescue:
/// the checkpoint is just the RNG, the counters, the history, and each
/// cell's members.
#[derive(Debug, Clone, PartialEq)]
pub struct CellularCheckpoint {
    /// RNG internal state (xoshiro256**).
    pub rng: [u64; 4],
    /// Generations executed so far.
    pub gen: usize,
    /// Migration events performed so far.
    pub migrations: usize,
    /// Members of each cell, in topology order.
    pub cells: Vec<Vec<SavedIndividual>>,
    /// Per-generation history recorded so far.
    pub history: Vec<GenerationStats>,
    /// Evaluation-engine counters at suspension time.
    pub stats: EngineStats,
}

impl CellularCheckpoint {
    /// Serializes the checkpoint to its text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CELLULAR_HEADER);
        out.push('\n');
        out.push_str(&format!(
            "rng {:016x} {:016x} {:016x} {:016x}\n",
            self.rng[0], self.rng[1], self.rng[2], self.rng[3]
        ));
        out.push_str(&format!("gen {}\n", self.gen));
        out.push_str(&format!("migrations {}\n", self.migrations));
        write_history(&mut out, &self.history);
        write_stats(&mut out, &self.stats);
        out.push_str(&format!("cells {}\n", self.cells.len()));
        for (ci, cell) in self.cells.iter().enumerate() {
            out.push_str(&format!("c {ci} {}\n", cell.len()));
            for ind in cell {
                write_individual(&mut out, ind);
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a checkpoint from its text form.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidCheckpoint`] on a wrong header,
    /// malformed records, or truncation.
    pub fn from_text(text: &str) -> Result<Self, OptimizeError> {
        let mut lines = Lines::new(text);
        lines.expect_literal(CELLULAR_HEADER)?;
        let (no, toks) = lines.tagged("rng", 4)?;
        let mut rng = [0u64; 4];
        for (slot, tok) in rng.iter_mut().zip(&toks) {
            *slot = parse_hex_u64(tok, no)?;
        }
        let gen = lines.tagged_usize("gen")?;
        let migrations = lines.tagged_usize("migrations")?;
        let history = parse_history(&mut lines)?;
        let stats = parse_stats(&mut lines)?;
        let n_cells = lines.tagged_usize("cells")?;
        let mut cells = Vec::with_capacity(n_cells);
        for ci in 0..n_cells {
            let (no, toks) = lines.tagged("c", 2)?;
            if parse_usize(toks[0], no)? != ci {
                return Err(bad(no, "cell records out of order"));
            }
            let count = parse_usize(toks[1], no)?;
            let mut cell = Vec::with_capacity(count);
            for _ in 0..count {
                cell.push(parse_individual(&mut lines)?);
            }
            cells.push(cell);
        }
        lines.expect_literal("end")?;
        lines.expect_exhausted()?;
        Ok(CellularCheckpoint {
            rng,
            gen,
            migrations,
            cells,
            history,
            stats,
        })
    }
}

// ---------------------------------------------------------------------------
// Writing

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn write_individual(out: &mut String, ind: &SavedIndividual) {
    out.push_str(&format!(
        "i {} {} {} {} {}",
        ind.rank,
        f64_hex(ind.crowding),
        ind.genes.len(),
        ind.objectives.len(),
        ind.violations.len()
    ));
    for v in ind
        .genes
        .iter()
        .chain(&ind.objectives)
        .chain(&ind.violations)
    {
        out.push(' ');
        out.push_str(&f64_hex(*v));
    }
    out.push('\n');
}

fn write_state(out: &mut String, s: &EngineState) {
    out.push_str(&format!(
        "rng {:016x} {:016x} {:016x} {:016x}\n",
        s.rng[0], s.rng[1], s.rng[2], s.rng[3]
    ));
    out.push_str(&format!("gen {}\n", s.gen));
    out.push_str(&format!("phase1_done {}\n", u8::from(s.phase1_done)));
    out.push_str(&format!("gen_t {}\n", s.gen_t));
    out.push_str(&format!(
        "grid {} {} {} {}\n",
        s.grid_objective,
        f64_hex(s.grid_lo),
        f64_hex(s.grid_hi),
        s.grid_partitions
    ));
    out.push_str("alive");
    for &a in &s.alive {
        out.push(' ');
        out.push(if a { '1' } else { '0' });
    }
    out.push('\n');
    write_history(out, &s.history);
    write_stats(out, &s.stats);
    out.push_str(&format!("partitions {}\n", s.partitions.len()));
    for (pi, part) in s.partitions.iter().enumerate() {
        out.push_str(&format!("p {pi} {}\n", part.len()));
        for ind in part {
            write_individual(out, ind);
        }
    }
}

fn write_history(out: &mut String, history: &[GenerationStats]) {
    out.push_str(&format!("history {}\n", history.len()));
    for h in history {
        out.push_str(&format!(
            "h {} {} {} {} {} {}\n",
            h.generation,
            h.phase,
            f64_hex(h.temperature),
            h.promoted,
            h.feasible,
            h.population
        ));
    }
}

fn write_stats(out: &mut String, st: &EngineStats) {
    // `screened` rides at the end so checkpoints written before the
    // surrogate screen existed (14 tokens) still parse (as screened = 0).
    out.push_str(&format!(
        "stats {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
        st.candidates,
        st.evaluations,
        st.cache_hits,
        st.batches,
        st.max_batch,
        st.eval_time.as_nanos(),
        st.failures,
        st.retries,
        st.recovered,
        st.quarantined,
        st.backoff_time.as_nanos(),
        st.injected_panics,
        st.injected_nonfinite,
        st.injected_delays,
        st.screened
    ));
}

// ---------------------------------------------------------------------------
// Parsing

fn bad(line: usize, why: impl std::fmt::Display) -> OptimizeError {
    OptimizeError::invalid_checkpoint(format!("line {line}: {why}"))
}

fn parse_usize(tok: &str, line: usize) -> Result<usize, OptimizeError> {
    tok.parse()
        .map_err(|_| bad(line, format!("expected an integer, got `{tok}`")))
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, OptimizeError> {
    tok.parse()
        .map_err(|_| bad(line, format!("expected an integer, got `{tok}`")))
}

fn parse_hex_u64(tok: &str, line: usize) -> Result<u64, OptimizeError> {
    u64::from_str_radix(tok, 16)
        .map_err(|_| bad(line, format!("expected a 64-bit hex value, got `{tok}`")))
}

fn parse_hex_f64(tok: &str, line: usize) -> Result<f64, OptimizeError> {
    parse_hex_u64(tok, line).map(f64::from_bits)
}

fn parse_nanos(tok: &str, line: usize) -> Result<Duration, OptimizeError> {
    let nanos: u128 = tok
        .parse()
        .map_err(|_| bad(line, format!("expected nanoseconds, got `{tok}`")))?;
    let secs =
        u64::try_from(nanos / 1_000_000_000).map_err(|_| bad(line, "duration out of range"))?;
    Ok(Duration::new(secs, (nanos % 1_000_000_000) as u32))
}

struct Lines<'a> {
    it: std::str::Lines<'a>,
    no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines {
            it: text.lines(),
            no: 0,
        }
    }

    fn next_line(&mut self) -> Result<(usize, &'a str), OptimizeError> {
        loop {
            let line = self.it.next().ok_or_else(|| {
                OptimizeError::invalid_checkpoint("unexpected end of checkpoint".to_string())
            })?;
            self.no += 1;
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok((self.no, trimmed));
            }
        }
    }

    fn expect_literal(&mut self, expected: &str) -> Result<(), OptimizeError> {
        let (no, line) = self.next_line()?;
        if line != expected {
            return Err(bad(no, format!("expected `{expected}`, got `{line}`")));
        }
        Ok(())
    }

    fn expect_exhausted(&mut self) -> Result<(), OptimizeError> {
        for line in self.it.by_ref() {
            self.no += 1;
            if !line.trim().is_empty() {
                return Err(bad(self.no, "unexpected content after `end`"));
            }
        }
        Ok(())
    }

    /// Reads a line `tag tok tok ...`, requiring at least `min` tokens
    /// after the tag; returns `(line_no, tokens)`.
    fn tagged(&mut self, tag: &str, min: usize) -> Result<(usize, Vec<&'a str>), OptimizeError> {
        let (no, line) = self.next_line()?;
        let mut toks = line.split_whitespace();
        match toks.next() {
            Some(t) if t == tag => {}
            Some(t) => return Err(bad(no, format!("expected `{tag}` record, got `{t}`"))),
            None => return Err(bad(no, format!("expected `{tag}` record"))),
        }
        let rest: Vec<&str> = toks.collect();
        if rest.len() < min {
            return Err(bad(
                no,
                format!(
                    "`{tag}` record needs at least {min} fields, got {}",
                    rest.len()
                ),
            ));
        }
        Ok((no, rest))
    }

    fn tagged_usize(&mut self, tag: &str) -> Result<usize, OptimizeError> {
        let (no, toks) = self.tagged(tag, 1)?;
        parse_usize(toks[0], no)
    }
}

fn parse_individual(lines: &mut Lines<'_>) -> Result<SavedIndividual, OptimizeError> {
    let (no, toks) = lines.tagged("i", 5)?;
    let rank = parse_usize(toks[0], no)?;
    let crowding = parse_hex_f64(toks[1], no)?;
    let ng = parse_usize(toks[2], no)?;
    let nobj = parse_usize(toks[3], no)?;
    let nv = parse_usize(toks[4], no)?;
    let values = &toks[5..];
    if values.len() != ng + nobj + nv {
        return Err(bad(
            no,
            format!("expected {} values, got {}", ng + nobj + nv, values.len()),
        ));
    }
    let mut parsed = Vec::with_capacity(values.len());
    for tok in values {
        parsed.push(parse_hex_f64(tok, no)?);
    }
    let violations = parsed.split_off(ng + nobj);
    let objectives = parsed.split_off(ng);
    Ok(SavedIndividual {
        genes: parsed,
        objectives,
        violations,
        rank,
        crowding,
    })
}

fn parse_state(lines: &mut Lines<'_>) -> Result<EngineState, OptimizeError> {
    let (no, toks) = lines.tagged("rng", 4)?;
    let mut rng = [0u64; 4];
    for (slot, tok) in rng.iter_mut().zip(&toks) {
        *slot = parse_hex_u64(tok, no)?;
    }
    let gen = lines.tagged_usize("gen")?;
    let (no, toks) = lines.tagged("phase1_done", 1)?;
    let phase1_done = match toks[0] {
        "0" => false,
        "1" => true,
        other => return Err(bad(no, format!("expected 0 or 1, got `{other}`"))),
    };
    let gen_t = lines.tagged_usize("gen_t")?;
    let (no, toks) = lines.tagged("grid", 4)?;
    let grid_objective = parse_usize(toks[0], no)?;
    let grid_lo = parse_hex_f64(toks[1], no)?;
    let grid_hi = parse_hex_f64(toks[2], no)?;
    let grid_partitions = parse_usize(toks[3], no)?;
    let (no, toks) = lines.tagged("alive", 0)?;
    let mut alive = Vec::with_capacity(toks.len());
    for tok in &toks {
        alive.push(match *tok {
            "0" => false,
            "1" => true,
            other => return Err(bad(no, format!("expected 0 or 1, got `{other}`"))),
        });
    }
    let history = parse_history(lines)?;
    let stats = parse_stats(lines)?;
    let n_partitions = lines.tagged_usize("partitions")?;
    if n_partitions != grid_partitions || alive.len() != grid_partitions {
        return Err(OptimizeError::invalid_checkpoint(format!(
            "grid declares {grid_partitions} partitions but checkpoint stores {n_partitions} \
             member lists and {} alive flags",
            alive.len()
        )));
    }
    let mut partitions = Vec::with_capacity(n_partitions);
    for pi in 0..n_partitions {
        let (no, toks) = lines.tagged("p", 2)?;
        if parse_usize(toks[0], no)? != pi {
            return Err(bad(no, "partition records out of order"));
        }
        let count = parse_usize(toks[1], no)?;
        let mut part = Vec::with_capacity(count);
        for _ in 0..count {
            part.push(parse_individual(lines)?);
        }
        partitions.push(part);
    }
    Ok(EngineState {
        rng,
        gen,
        phase1_done,
        gen_t,
        grid_objective,
        grid_lo,
        grid_hi,
        grid_partitions,
        alive,
        partitions,
        history,
        stats,
    })
}

fn parse_history(lines: &mut Lines<'_>) -> Result<Vec<GenerationStats>, OptimizeError> {
    let n_history = lines.tagged_usize("history")?;
    let mut history = Vec::with_capacity(n_history);
    for _ in 0..n_history {
        let (no, toks) = lines.tagged("h", 6)?;
        history.push(GenerationStats {
            generation: parse_usize(toks[0], no)?,
            phase: parse_usize(toks[1], no)?
                .try_into()
                .map_err(|_| bad(no, "phase out of range"))?,
            temperature: parse_hex_f64(toks[2], no)?,
            promoted: parse_usize(toks[3], no)?,
            feasible: parse_usize(toks[4], no)?,
            population: parse_usize(toks[5], no)?,
        });
    }
    Ok(history)
}

fn parse_stats(lines: &mut Lines<'_>) -> Result<EngineStats, OptimizeError> {
    let (no, toks) = lines.tagged("stats", 14)?;
    Ok(EngineStats {
        candidates: parse_u64(toks[0], no)?,
        evaluations: parse_u64(toks[1], no)?,
        cache_hits: parse_u64(toks[2], no)?,
        batches: parse_u64(toks[3], no)?,
        max_batch: parse_u64(toks[4], no)?,
        eval_time: parse_nanos(toks[5], no)?,
        failures: parse_u64(toks[6], no)?,
        retries: parse_u64(toks[7], no)?,
        recovered: parse_u64(toks[8], no)?,
        quarantined: parse_u64(toks[9], no)?,
        backoff_time: parse_nanos(toks[10], no)?,
        injected_panics: parse_u64(toks[11], no)?,
        injected_nonfinite: parse_u64(toks[12], no)?,
        injected_delays: parse_u64(toks[13], no)?,
        // Absent in pre-screen checkpoints: default to zero.
        screened: toks.get(14).map_or(Ok(0), |t| parse_u64(t, no))?,
    })
}

impl crate::telemetry::CheckpointText for SacgaCheckpoint {
    const SUSPENDABLE: bool = true;

    fn to_checkpoint_text(&self) -> String {
        self.to_text()
    }

    fn from_checkpoint_text(text: &str) -> Result<Self, OptimizeError> {
        SacgaCheckpoint::from_text(text)
    }

    fn generation(&self) -> usize {
        self.state.gen
    }
}

impl crate::telemetry::CheckpointText for SteadyCheckpoint {
    const SUSPENDABLE: bool = true;

    fn to_checkpoint_text(&self) -> String {
        self.to_text()
    }

    fn from_checkpoint_text(text: &str) -> Result<Self, OptimizeError> {
        SteadyCheckpoint::from_text(text)
    }

    fn generation(&self) -> usize {
        self.state.gen
    }
}

impl crate::telemetry::CheckpointText for CellularCheckpoint {
    const SUSPENDABLE: bool = true;

    fn to_checkpoint_text(&self) -> String {
        self.to_text()
    }

    fn from_checkpoint_text(text: &str) -> Result<Self, OptimizeError> {
        CellularCheckpoint::from_text(text)
    }

    fn generation(&self) -> usize {
        self.gen
    }
}

impl crate::telemetry::CheckpointText for MesacgaCheckpoint {
    const SUSPENDABLE: bool = true;

    fn to_checkpoint_text(&self) -> String {
        self.to_text()
    }

    fn from_checkpoint_text(text: &str) -> Result<Self, OptimizeError> {
        MesacgaCheckpoint::from_text(text)
    }

    fn generation(&self) -> usize {
        self.state.gen
    }
}

/// Deterministic file name for a per-run artifact of a campaign cell —
/// checkpoint, completed-cell state, or telemetry stream — built from
/// the arm label, the seed, and an extension.
///
/// The label is sanitized so the name is a portable single path
/// component: ASCII alphanumerics, `-`, `_` and `.` pass through,
/// everything else (including path separators) becomes `-`. Identical
/// inputs always produce the identical name, so a resumed campaign finds
/// exactly the artifacts the killed one wrote.
///
/// ```
/// use sacga::checkpoint::cell_artifact_name;
///
/// assert_eq!(cell_artifact_name("sacga8", 42, "state"), "cell_sacga8_seed42.state");
/// assert_eq!(cell_artifact_name("tpg/1 part", 7, "jsonl"), "cell_tpg-1-part_seed7.jsonl");
/// ```
pub fn cell_artifact_name(arm: &str, seed: u64, extension: &str) -> String {
    let clean: String = arm
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect();
    format!("cell_{clean}_seed{seed}.{extension}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> EngineState {
        EngineState {
            rng: [1, 2, 3, u64::MAX],
            gen: 7,
            phase1_done: true,
            gen_t: 3,
            grid_objective: 0,
            grid_lo: -1.25,
            grid_hi: 4.75,
            grid_partitions: 2,
            alive: vec![true, false],
            partitions: vec![
                vec![SavedIndividual {
                    genes: vec![0.5, -0.0],
                    objectives: vec![1.5, f64::INFINITY],
                    violations: vec![0.0],
                    rank: 0,
                    crowding: f64::INFINITY,
                }],
                vec![],
            ],
            history: vec![GenerationStats {
                generation: 0,
                phase: 1,
                temperature: f64::INFINITY,
                promoted: 0,
                feasible: 1,
                population: 1,
            }],
            stats: EngineStats {
                candidates: 40,
                evaluations: 38,
                cache_hits: 2,
                batches: 2,
                max_batch: 20,
                eval_time: Duration::from_nanos(123_456_789_012),
                failures: 3,
                retries: 3,
                recovered: 2,
                quarantined: 1,
                backoff_time: Duration::from_nanos(42),
                injected_panics: 2,
                injected_nonfinite: 1,
                injected_delays: 0,
                screened: 4,
            },
        }
    }

    #[test]
    fn sacga_checkpoint_round_trips() {
        let cp = SacgaCheckpoint {
            state: sample_state(),
        };
        let text = cp.to_text();
        let back = SacgaCheckpoint::from_text(&text).unwrap();
        assert_eq!(cp, back);
        // second serialization is byte-identical (canonical form)
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn legacy_14_token_stats_line_parses_with_zero_screened() {
        let cp = SacgaCheckpoint {
            state: sample_state(),
        };
        let text = cp.to_text();
        // Strip the trailing token to simulate a checkpoint written before
        // the surrogate screen existed.
        let legacy: String = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("stats ") {
                    let toks: Vec<&str> = rest.split_whitespace().take(14).collect();
                    format!("stats {}", toks.join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let back = SacgaCheckpoint::from_text(&legacy).unwrap();
        assert_eq!(back.state.stats.screened, 0);
        assert_eq!(back.state.stats.candidates, 40);
    }

    #[test]
    fn mesacga_checkpoint_round_trips() {
        let cp = MesacgaCheckpoint {
            state: sample_state(),
            phase_index: 1,
            phase_start: 5,
            phase_fronts: vec![vec![SavedIndividual {
                genes: vec![1.0],
                objectives: vec![0.25, 0.75],
                violations: vec![],
                rank: 0,
                crowding: 1.5,
            }]],
        };
        let text = cp.to_text();
        let back = MesacgaCheckpoint::from_text(&text).unwrap();
        assert_eq!(cp, back);
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn steady_checkpoint_round_trips() {
        let cp = SteadyCheckpoint {
            state: sample_state(),
            pending: vec![
                SavedIndividual {
                    genes: vec![0.25, -1.5],
                    objectives: vec![2.0, 3.0],
                    violations: vec![0.0],
                    rank: 0,
                    crowding: 0.0,
                },
                SavedIndividual {
                    genes: vec![0.75, 0.5],
                    objectives: vec![1.0, f64::INFINITY],
                    violations: vec![0.5],
                    rank: 0,
                    crowding: 0.0,
                },
            ],
        };
        let text = cp.to_text();
        let back = SteadyCheckpoint::from_text(&text).unwrap();
        assert_eq!(cp, back);
        assert_eq!(text, back.to_text());
        // empty pending set round-trips too (suspension with nothing ahead)
        let empty = SteadyCheckpoint {
            state: sample_state(),
            pending: vec![],
        };
        assert_eq!(
            SteadyCheckpoint::from_text(&empty.to_text()).unwrap(),
            empty
        );
    }

    #[test]
    fn cellular_checkpoint_round_trips() {
        let base = sample_state();
        let cp = CellularCheckpoint {
            rng: [9, 8, 7, 6],
            gen: 4,
            migrations: 1,
            cells: vec![
                base.partitions[0].clone(),
                vec![SavedIndividual {
                    genes: vec![-0.0, f64::INFINITY],
                    objectives: vec![0.5],
                    violations: vec![],
                    rank: 1,
                    crowding: 0.25,
                }],
            ],
            history: base.history.clone(),
            stats: base.stats.clone(),
        };
        let text = cp.to_text();
        assert!(text.starts_with("cellular-checkpoint v1\n"));
        let back = CellularCheckpoint::from_text(&text).unwrap();
        assert_eq!(cp, back);
        assert_eq!(text, back.to_text());
        // wrong header, truncation, and corruption are rejected
        assert!(SteadyCheckpoint::from_text(&text).is_err());
        assert!(CellularCheckpoint::from_text(text.rsplit_once("end").unwrap().0).is_err());
        assert!(CellularCheckpoint::from_text(&text.replace("c 1", "c 9")).is_err());
    }

    #[test]
    fn steady_header_is_not_interchangeable() {
        let steady = SteadyCheckpoint {
            state: sample_state(),
            pending: vec![],
        };
        let sacga = SacgaCheckpoint {
            state: sample_state(),
        };
        assert!(SacgaCheckpoint::from_text(&steady.to_text()).is_err());
        assert!(SteadyCheckpoint::from_text(&sacga.to_text()).is_err());
        // truncation before the pending block is caught
        let text = steady.to_text();
        let truncated = text.rsplit_once("pending").unwrap().0;
        assert!(SteadyCheckpoint::from_text(truncated).is_err());
    }

    #[test]
    fn bit_patterns_survive_exactly() {
        // -0.0 and infinity must round-trip to the same bits.
        let ind = SavedIndividual {
            genes: vec![-0.0],
            objectives: vec![f64::INFINITY, 1.0 / 3.0],
            violations: vec![f64::MIN_POSITIVE],
            rank: usize::MAX,
            crowding: -0.0,
        };
        let mut out = String::new();
        write_individual(&mut out, &ind);
        let mut lines = Lines::new(&out);
        let back = parse_individual(&mut lines).unwrap();
        assert_eq!(back.genes[0].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.objectives[0], f64::INFINITY);
        assert_eq!(back.objectives[1].to_bits(), (1.0f64 / 3.0).to_bits());
        assert_eq!(back.violations[0], f64::MIN_POSITIVE);
        assert_eq!(back.rank, usize::MAX);
        assert_eq!(back.crowding.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn truncated_and_corrupt_text_is_rejected() {
        let cp = SacgaCheckpoint {
            state: sample_state(),
        };
        let text = cp.to_text();
        // truncation: drop the trailing `end`
        let truncated = text.rsplit_once("end").unwrap().0;
        assert!(SacgaCheckpoint::from_text(truncated).is_err());
        // wrong header
        assert!(SacgaCheckpoint::from_text("nonsense v1\nend\n").is_err());
        // mesacga header fed to sacga parser and vice versa
        let m = MesacgaCheckpoint {
            state: sample_state(),
            phase_index: 0,
            phase_start: 0,
            phase_fronts: vec![],
        };
        assert!(SacgaCheckpoint::from_text(&m.to_text()).is_err());
        assert!(MesacgaCheckpoint::from_text(&text).is_err());
        // corrupt hex
        let corrupt = text.replace("rng", "rng zz");
        assert!(SacgaCheckpoint::from_text(&corrupt).is_err());
        // trailing garbage
        let mut trailing = text.clone();
        trailing.push_str("junk\n");
        assert!(SacgaCheckpoint::from_text(&trailing).is_err());
    }

    #[test]
    fn saved_individual_round_trips_through_individual() {
        let saved = SavedIndividual {
            genes: vec![0.1, 0.2],
            objectives: vec![1.0, f64::INFINITY],
            violations: vec![0.0, 2.5],
            rank: 3,
            crowding: 0.75,
        };
        let ind = saved.to_individual();
        assert_eq!(SavedIndividual::from_individual(&ind), saved);
    }
}
