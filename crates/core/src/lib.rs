#![warn(missing_docs)]
//! # sacga — mixing local and global competition in genetic optimization
//!
//! Implementation of the DATE 2005 paper *"Mixing Global and Local
//! Competition in Genetic Optimization based Design Space Exploration of
//! Analog Circuits"* (Somani, Chakrabarti, Patra).
//!
//! Traditional multi-objective GAs rank every individual against every
//! other (*purely global competition*), which on tightly-constrained
//! problems lets an early feasible cluster take over: crossover keeps
//! producing children *inside* the cluster, weaker outlying solutions lose
//! the global competition and die, and the Pareto front ends up covering a
//! small fraction of the objective space.
//!
//! This crate provides the paper's remedies on top of the [`moea`]
//! substrate:
//!
//! * [`partition`] — slicing the objective space into partitions along one
//!   objective, inducing *local* competitions;
//! * [`local`] — the pure local-competition GA of Sec. 4.3 (diverse but
//!   slow to converge);
//! * [`anneal`] — the simulated-annealing machinery of Sec. 4.4: the
//!   promotion-cost function `c = k₁·e^(k₂·i/(n−1))`, the participation
//!   probability `prob = 1 − e^(−α/(c·T_A))`, the cooling schedule
//!   `T_A = T_init·e^(−k₃·ln(T_init)/span·(gen−gen_t))`, and a closed-form
//!   [`ProbabilityShaper`] that solves the
//!   constants from target probabilities (reproducing Fig. 4);
//! * [`sacga`] — the Simulated-Annealing-driven Competition GA: pure local
//!   competition transitioning gradually into pure global competition;
//! * [`mesacga`] — the Multi-phase Expanding-partitions SACGA of Sec. 4.5:
//!   a cascade of SACGA phases with progressively fewer, larger partitions
//!   (e.g. 20 → 13 → 8 → 5 → 3 → 2 → 1), removing the need to guess the
//!   optimal static partition count;
//! * [`checkpoint`] — plain-text run checkpoints: SACGA and MESACGA runs
//!   can be suspended at any generation boundary
//!   ([`Sacga::run_until`](sacga::Sacga::run_until),
//!   [`Mesacga::run_until`](mesacga::Mesacga::run_until)) and resumed
//!   bit-identically, including across process restarts.
//!
//! ## Example
//!
//! ```
//! use sacga::sacga::{Sacga, SacgaConfig};
//! use moea::problems::Schaffer;
//!
//! # fn main() -> Result<(), moea::OptimizeError> {
//! let config = SacgaConfig::builder()
//!     .population_size(40)
//!     .generations(60)
//!     .partitions(8)
//!     .build()?;
//! let result = Sacga::new(Schaffer::new(), config).run_seeded(42)?;
//! assert!(!result.front.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod anneal;
pub mod checkpoint;
pub mod island;
pub mod local;
pub mod mesacga;
pub mod partition;
pub mod sacga;

pub use anneal::{AnnealingSchedule, ProbabilityShaper, PromotionPolicy};
pub use checkpoint::{EngineState, MesacgaCheckpoint, SacgaCheckpoint, SavedIndividual};
pub use island::{IslandConfig, IslandGa};
pub use mesacga::{Mesacga, MesacgaConfig, MesacgaResult, MesacgaRun, PhaseSpec};
pub use partition::PartitionGrid;
pub use sacga::{Sacga, SacgaConfig, SacgaResult, SacgaRun};
