#![warn(missing_docs)]
//! # sacga — mixing local and global competition in genetic optimization
//!
//! Implementation of the DATE 2005 paper *"Mixing Global and Local
//! Competition in Genetic Optimization based Design Space Exploration of
//! Analog Circuits"* (Somani, Chakrabarti, Patra).
//!
//! Traditional multi-objective GAs rank every individual against every
//! other (*purely global competition*), which on tightly-constrained
//! problems lets an early feasible cluster take over: crossover keeps
//! producing children *inside* the cluster, weaker outlying solutions lose
//! the global competition and die, and the Pareto front ends up covering a
//! small fraction of the objective space.
//!
//! This crate provides the paper's remedies on top of the [`moea`]
//! substrate:
//!
//! * [`partition`] — slicing the objective space into partitions along one
//!   objective, inducing *local* competitions;
//! * [`local`] — the pure local-competition GA of Sec. 4.3 (diverse but
//!   slow to converge);
//! * [`anneal`] — the simulated-annealing machinery of Sec. 4.4: the
//!   promotion-cost function `c = k₁·e^(k₂·i/(n−1))`, the participation
//!   probability `prob = 1 − e^(−α/(c·T_A))`, the cooling schedule
//!   `T_A = T_init·e^(−k₃·ln(T_init)/span·(gen−gen_t))`, and a closed-form
//!   [`ProbabilityShaper`] that solves the
//!   constants from target probabilities (reproducing Fig. 4);
//! * [`sacga`] — the Simulated-Annealing-driven Competition GA: pure local
//!   competition transitioning gradually into pure global competition;
//! * [`mesacga`] — the Multi-phase Expanding-partitions SACGA of Sec. 4.5:
//!   a cascade of SACGA phases with progressively fewer, larger partitions
//!   (e.g. 20 → 13 → 8 → 5 → 3 → 2 → 1), removing the need to guess the
//!   optimal static partition count;
//! * [`steady`] — steady-state SACGA: the same algorithm driven through
//!   the engine's incremental submission/completion API, with no
//!   per-generation evaluation barrier and bit-identical seeded results
//!   across worker counts;
//! * [`cellular`] — a structured-population GA over a pluggable
//!   neighborhood [`topology`] (ring, torus, fully-connected,
//!   small-world) that degenerates bit-for-bit to the [`island`] model
//!   on a fully-connected graph;
//! * [`checkpoint`] — plain-text run checkpoints: SACGA, MESACGA, and
//!   steady-state runs can be suspended at any generation boundary
//!   ([`Sacga::run_until`](sacga::Sacga::run_until),
//!   [`Mesacga::run_until`](mesacga::Mesacga::run_until)) and resumed
//!   bit-identically, including across process restarts.
//!
//! All seven loops — [`moea::nsga2::Nsga2`], [`local`], [`sacga`],
//! [`mesacga`], [`island`], [`steady`], [`cellular`] — implement the unified
//! [`Optimizer`] run API and emit the structured
//! [`RunEvent`] stream of the [`telemetry`] module
//! into composable [`Sink`]s.
//!
//! ## Example
//!
//! ```
//! use sacga::prelude::*;
//! use moea::problems::Schaffer;
//!
//! # fn main() -> Result<(), moea::OptimizeError> {
//! let config = SacgaConfig::builder()
//!     .population_size(40)
//!     .generations(60)
//!     .partitions(8)
//!     .build()?;
//! let ga = Sacga::new(Schaffer::new(), config);
//!
//! // Instrumented run: a memory sink captures the event stream.
//! let mut sink = MemorySink::new();
//! let result = ga.run_with(42, &mut sink)?;
//! assert!(!result.front.is_empty());
//!
//! // Sinks never consume RNG: the bare run is bit-identical.
//! assert_eq!(ga.run(42)?.front_objectives(), result.front_objectives());
//! let ends = sink
//!     .events()
//!     .iter()
//!     .filter(|e| e.kind() == EventKind::GenerationEnd)
//!     .count();
//! assert_eq!(ends, result.generations);
//! # Ok(())
//! # }
//! ```

pub mod anneal;
pub mod cellular;
pub mod checkpoint;
pub mod island;
pub mod local;
pub mod mesacga;
pub mod partition;
pub mod prelude;
pub mod sacga;
pub mod steady;
pub mod telemetry;
pub mod topology;

pub use anneal::{AnnealingSchedule, ProbabilityShaper, PromotionPolicy};
pub use cellular::{CellularConfig, CellularGa};
pub use checkpoint::{
    cell_artifact_name, CellularCheckpoint, EngineState, MesacgaCheckpoint, SacgaCheckpoint,
    SavedIndividual, SteadyCheckpoint,
};
pub use island::{IslandConfig, IslandGa};
pub use mesacga::{Mesacga, MesacgaConfig, PhaseSpec};
pub use partition::PartitionGrid;
pub use sacga::{Sacga, SacgaConfig};
pub use steady::{SteadyConfig, SteadySacga};
pub use telemetry::{
    CheckpointText, DynOptimizer, DynRunStatus, EventKind, FaultRateAlarm, HealthWarning,
    InfeasibilityAlarm, JsonlSink, MemorySink, MetricsRow, MetricsSink, NoCheckpoint, NullSink,
    Optimizer, RunEvent, Sink, StallDetector, Tee, EVENT_SCHEMA_VERSION,
};
pub use topology::Topology;
