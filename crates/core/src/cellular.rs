//! Cellular structured-population GA: the island model generalized to an
//! arbitrary neighborhood [`Topology`].
//!
//! "From Cells to Islands" observes that island models and cellular GAs
//! are the same algorithm at two points of one continuum: a population
//! structured by a neighborhood graph, with locality controlled by how
//! much of the graph each deme sees. [`CellularGa`] walks that continuum.
//! `N` cells (each a small subpopulation running its own elitist
//! constrained-dominance GA) sit on a pluggable [`Topology`] — ring, 2-D
//! torus, fully-connected, or small-world — with two mixing controls:
//!
//! * **Migration** (coarse-grained): every
//!   [`migration_interval`](CellularConfigBuilder::migration_interval)
//!   generations each cell sends [`migrants`](CellularConfigBuilder::migrants)
//!   clones of its local rank-0 front to its first neighbor, exactly as
//!   the island model's ring migration does.
//! * **Open mating** (fine-grained): with probability
//!   [`openness`](CellularConfigBuilder::openness) a cell picks its
//!   second parent from a neighboring cell instead of its own, choosing
//!   the forward or backward half of its neighborhood with probability
//!   [`anisotropy`](CellularConfigBuilder::anisotropy).
//!
//! **Degenerate contract.** On a [`Topology::FullyConnected`] graph with
//! `openness == 0.0` the loop is *bit-identical* to
//! [`IslandGa`](crate::island::IslandGa): the fully-connected adjacency
//! leads with the island's `(i+1) % k` migration target, migration picks
//! consume the same RNG draws, and an openness of exactly zero skips the
//! mate-mixing draw entirely, so the RNG stream never diverges. The
//! differential test suite pins this against the island golden master.
//!
//! **Determinism across workers.** Every cell submits its offspring
//! through one shared [`EvaluationSession`] and a single drain loop
//! collects completions *in submission order*, so — like
//! [`SteadySacga`](crate::steady::SteadySacga) — a seeded run is
//! bit-identical whether it evaluates serially or over any number of
//! workers. All RNG draws happen on the control thread; evaluation and
//! selection consume none.
//!
//! **Suspension.** Every submission is drained before a generation
//! boundary, so generation boundaries *are* merge boundaries and the
//! [`CellularCheckpoint`] needs no pending look-ahead: RNG state, cell
//! members, history, and engine counters round-trip through
//! `cellular-checkpoint v1` text and a killed-and-resumed run is
//! bit-identical to an uninterrupted one.

use crate::checkpoint::{CellularCheckpoint, SavedIndividual};
use crate::island::merged_front_objectives;
use crate::telemetry::{expect_complete, EventKind, NullSink, Optimizer, RunEvent, Sink};
use crate::topology::Topology;
use engine::{EvaluationSession, EvaluatorKind, Stage, StageTimer};
use moea::individual::Individual;
use moea::operators::{random_vector, Variation};
use moea::problem::Problem;
use moea::selection::binary_tournament;
use moea::setup::EngineSetup;
use moea::sorting::{environmental_selection, rank_and_crowd};
use moea::{Bounds, Evaluation, GenerationStats, OptimizeError, RunOutcome, RunStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a cellular run. Build with
/// [`CellularConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellularConfig {
    population_size: usize,
    generations: usize,
    topology: Topology,
    migration_interval: usize,
    migrants: usize,
    openness: f64,
    anisotropy: f64,
    variation: Option<Variation>,
    exec: EngineSetup,
}

impl CellularConfig {
    /// Starts a configuration builder.
    pub fn builder() -> CellularConfigBuilder {
        CellularConfigBuilder::default()
    }

    /// Total population across all cells.
    pub fn population_size(&self) -> usize {
        self.population_size
    }

    /// Generation budget.
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// The neighborhood graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Members per cell.
    pub fn per_cell(&self) -> usize {
        self.population_size / self.topology.cells()
    }
}

/// Builder for [`CellularConfig`].
#[derive(Debug, Clone)]
pub struct CellularConfigBuilder {
    population_size: usize,
    generations: usize,
    topology: Topology,
    migration_interval: usize,
    migrants: usize,
    openness: f64,
    anisotropy: f64,
    variation: Option<Variation>,
    exec: EngineSetup,
}

impl Default for CellularConfigBuilder {
    fn default() -> Self {
        CellularConfigBuilder {
            population_size: 64,
            generations: 100,
            topology: Topology::Ring {
                cells: 8,
                radius: 1,
            },
            migration_interval: 10,
            migrants: 1,
            openness: 0.0,
            anisotropy: 0.5,
            variation: None,
            exec: EngineSetup::new(),
        }
    }
}

impl CellularConfigBuilder {
    /// Sets the total population (split evenly across cells).
    pub fn population_size(mut self, n: usize) -> Self {
        self.population_size = n;
        self
    }

    /// Sets the generation budget.
    pub fn generations(mut self, n: usize) -> Self {
        self.generations = n;
        self
    }

    /// Sets the neighborhood graph.
    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Sets how many generations pass between migrations (≥ 1).
    pub fn migration_interval(mut self, g: usize) -> Self {
        self.migration_interval = g;
        self
    }

    /// Sets how many individuals each cell emits per migration event.
    pub fn migrants(mut self, m: usize) -> Self {
        self.migrants = m;
        self
    }

    /// Sets the probability of drawing the second parent from a
    /// neighboring cell instead of the breeding cell itself (in
    /// `[0, 1]`; exactly `0.0` consumes no RNG, preserving the island
    /// degeneracy).
    pub fn openness(mut self, p: f64) -> Self {
        self.openness = p;
        self
    }

    /// Sets the probability that an open mating looks *forward* (toward
    /// higher cyclic cell indices) rather than backward (in `[0, 1]`;
    /// 0.5 is isotropic).
    pub fn anisotropy(mut self, p: f64) -> Self {
        self.anisotropy = p;
        self
    }

    /// Overrides the variation operators.
    pub fn variation(mut self, v: Variation) -> Self {
        self.variation = Some(v);
        self
    }

    /// Replaces the whole engine-knob bundle at once (see
    /// [`moea::EngineSetup`]); the individual knob methods below
    /// delegate to the same bundle.
    pub fn engine_setup(mut self, exec: EngineSetup) -> Self {
        self.exec = exec;
        self
    }

    /// Selects the candidate-evaluation strategy (default: serial).
    pub fn evaluator(mut self, evaluator: impl Into<EvaluatorKind>) -> Self {
        self.exec = self.exec.evaluator(evaluator);
        self
    }

    /// Enables evaluation memoization with room for `capacity` entries
    /// (default: disabled).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.exec = self.exec.cache_capacity(capacity);
        self
    }

    /// Sets the memoization quantization grid (must be positive).
    pub fn cache_grid(mut self, grid: f64) -> Self {
        self.exec = self.exec.cache_grid(grid);
        self
    }

    /// Sets the fault-handling policy for candidate evaluation.
    pub fn fault_policy(mut self, fault: engine::FaultPolicy) -> Self {
        self.exec = self.exec.fault_policy(fault);
        self
    }

    /// Enables deterministic fault injection with the given plan.
    pub fn inject_faults(mut self, plan: engine::FaultPlan) -> Self {
        self.exec = self.exec.inject_faults(plan);
        self
    }

    /// Routes memoization through a pooled [`engine::SharedCache`].
    pub fn shared_cache(mut self, cache: engine::SharedCache<Evaluation>) -> Self {
        self.exec = self.exec.shared_cache(cache);
        self
    }

    /// Attaches an opt-in [`engine::SurrogateScreen`] (screening changes
    /// which candidates reach the model; leave unset for pinned
    /// artifacts).
    pub fn surrogate_screen(mut self, screen: engine::SurrogateScreen<Evaluation>) -> Self {
        self.exec = self.exec.surrogate_screen(screen);
        self
    }

    /// Attaches a live [`engine::EngineMetrics`] bundle. Observation
    /// only — an instrumented run is bit-identical to a bare one.
    pub fn metrics(mut self, metrics: engine::EngineMetrics) -> Self {
        self.exec = self.exec.metrics(metrics);
        self
    }

    /// Attaches a per-cell [`engine::CellSeries`]: each cell mirrors its
    /// breeding/selection timings, offspring counter, and local front
    /// size into the series' registry under `cell="<index>"` labels.
    /// Observation only — an instrumented run is bit-identical to a
    /// bare one.
    pub fn cell_series(mut self, series: engine::CellSeries) -> Self {
        self.exec = self.exec.cell_series(series);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::InvalidConfig`] when the topology is
    /// structurally invalid, the per-cell population would drop below 4,
    /// the interval is zero, migrants reach the cell size, or a mixing
    /// probability leaves `[0, 1]`.
    pub fn build(self) -> Result<CellularConfig, OptimizeError> {
        self.topology.validate()?;
        if self.generations == 0 {
            return Err(OptimizeError::invalid_config(
                "generations",
                "must be at least 1",
            ));
        }
        let cells = self.topology.cells();
        let per_cell = self.population_size / cells;
        if per_cell < 4 {
            return Err(OptimizeError::invalid_config(
                "population_size",
                format!(
                    "per-cell population must be at least 4, got {per_cell} \
                     ({} over {cells} cells)",
                    self.population_size
                ),
            ));
        }
        if self.migration_interval == 0 {
            return Err(OptimizeError::invalid_config(
                "migration_interval",
                "must be at least 1",
            ));
        }
        if self.migrants >= per_cell {
            return Err(OptimizeError::invalid_config(
                "migrants",
                format!("must be fewer than the cell size {per_cell}"),
            ));
        }
        for (name, p) in [("openness", self.openness), ("anisotropy", self.anisotropy)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(OptimizeError::invalid_config(
                    name,
                    format!("must be a probability in [0, 1], got {p}"),
                ));
            }
        }
        Ok(CellularConfig {
            population_size: self.population_size,
            generations: self.generations,
            topology: self.topology,
            migration_interval: self.migration_interval,
            migrants: self.migrants,
            openness: self.openness,
            anisotropy: self.anisotropy,
            variation: self.variation,
            exec: self.exec,
        })
    }
}

/// How a drive starts: fresh from a seed or from a suspended checkpoint.
enum CellularLaunch<'a> {
    Seed(u64),
    Checkpoint(&'a CellularCheckpoint),
}

/// The cellular structured-population GA.
///
/// # Examples
///
/// ```
/// use sacga::cellular::{CellularConfig, CellularGa};
/// use sacga::topology::Topology;
/// use moea::problems::Schaffer;
///
/// # fn main() -> Result<(), moea::OptimizeError> {
/// let config = CellularConfig::builder()
///     .population_size(40)
///     .generations(30)
///     .topology(Topology::Ring { cells: 4, radius: 1 })
///     .openness(0.25)
///     .build()?;
/// let result = CellularGa::new(Schaffer::new(), config).run_seeded(1)?;
/// assert!(!result.front.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CellularGa<P: Problem> {
    problem: P,
    config: CellularConfig,
}

impl<P: Problem> CellularGa<P> {
    /// Creates an optimizer for `problem` with `config`.
    pub fn new(problem: P, config: CellularConfig) -> Self {
        CellularGa { problem, config }
    }

    /// Runs with a seeded RNG and no instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates problem-definition errors discovered at start-up and
    /// [`OptimizeError::EvaluationFailed`] when a candidate evaluation
    /// exhausts an aborting fault policy's retry budget.
    pub fn run_seeded(&self, seed: u64) -> Result<RunOutcome, OptimizeError>
    where
        P: Sync,
    {
        self.drive(CellularLaunch::Seed(seed), None, &mut NullSink)
            .map(expect_complete)
    }
}

impl<P: Problem + Sync> CellularGa<P> {
    /// The shared run loop behind every public entry point. The whole
    /// drive executes inside one [`EvaluationSession`], so under a
    /// parallel evaluator the worker pool lives for the entire run.
    fn drive(
        &self,
        launch: CellularLaunch<'_>,
        stop_after: Option<usize>,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<CellularCheckpoint>, OptimizeError> {
        let problem = &self.problem;
        if problem.num_objectives() == 0 {
            return Err(OptimizeError::invalid_problem(
                "problem must declare at least one objective",
            ));
        }
        if let CellularLaunch::Checkpoint(cp) = &launch {
            let k = self.config.topology.cells();
            let per_cell = self.config.per_cell();
            if cp.cells.len() != k {
                return Err(OptimizeError::invalid_checkpoint(format!(
                    "checkpoint stores {} cells but the topology has {k}",
                    cp.cells.len()
                )));
            }
            if let Some(cell) = cp.cells.iter().find(|c| c.len() != per_cell) {
                return Err(OptimizeError::invalid_checkpoint(format!(
                    "checkpoint cell holds {} members but the configuration expects {per_cell}",
                    cell.len()
                )));
            }
        }
        let mut exec = self.config.exec.build_engine(problem.cache_canonicalizer());
        if let CellularLaunch::Checkpoint(cp) = &launch {
            exec.restore_stats(cp.stats.clone());
        }
        let bounds = problem.bounds().clone();
        let eval = |genes: &[f64]| problem.evaluate(genes);
        let batch_eval = |chunk: &[Vec<f64>]| problem.evaluate_all(chunk);
        exec.with_session(&eval, &batch_eval, |session| {
            self.run_loop(launch, stop_after, sink, session, bounds)
        })
    }

    /// The cellular loop proper, generic over the session's evaluation
    /// closures.
    #[allow(clippy::too_many_lines)]
    fn run_loop<F, B>(
        &self,
        launch: CellularLaunch<'_>,
        stop_after: Option<usize>,
        sink: &mut dyn Sink,
        session: &mut EvaluationSession<'_, Evaluation, F, B>,
        bounds: Bounds,
    ) -> Result<RunStatus<CellularCheckpoint>, OptimizeError>
    where
        F: Fn(&[f64]) -> Evaluation + Sync,
        B: Fn(&[Vec<f64>]) -> Vec<Evaluation>,
    {
        let cfg = &self.config;
        let topo = &cfg.topology;
        let k = topo.cells();
        let per_cell = cfg.per_cell();
        let variation = cfg
            .variation
            .unwrap_or_else(|| Variation::standard(bounds.len()));
        let adjacency: Vec<Vec<usize>> = (0..k).map(|i| topo.neighbors(i)).collect();
        let oriented: Vec<(Vec<usize>, Vec<usize>)> = (0..k).map(|i| topo.orientation(i)).collect();
        let cell_metrics: Option<Vec<engine::CellMetrics>> = cfg
            .exec
            .cell_series_ref()
            .map(|series| (0..k).map(|i| series.cell(i)).collect());

        let fresh = matches!(launch, CellularLaunch::Seed(_));
        let (mut rng, mut cells, mut history, mut gen, mut migrations): (
            StdRng,
            Vec<Vec<Individual>>,
            Vec<GenerationStats>,
            usize,
            usize,
        );
        match launch {
            CellularLaunch::Seed(seed) => {
                rng = StdRng::seed_from_u64(seed);
                // Draw every cell's genes first (sole RNG consumer), then
                // evaluate the whole lattice through the shared session.
                let init_genes: Vec<Vec<f64>> = (0..k * per_cell)
                    .map(|_| random_vector(&mut rng, &bounds))
                    .collect();
                for genes in &init_genes {
                    session.submit(genes);
                }
                let init_evals = session.drain_all()?;
                let mut members = init_genes
                    .into_iter()
                    .zip(init_evals)
                    .map(|(genes, ev)| Individual::new(genes, ev));
                cells = (0..k)
                    .map(|_| members.by_ref().take(per_cell).collect())
                    .collect();
                self.problem.check_evaluation(&cells[0][0].evaluation)?;
                for cell in &mut cells {
                    rank_and_crowd(cell);
                }
                history = Vec::with_capacity(cfg.generations);
                gen = 0;
                migrations = 0;
            }
            CellularLaunch::Checkpoint(cp) => {
                rng = StdRng::from_state(cp.rng);
                cells = cp
                    .cells
                    .iter()
                    .map(|cell| cell.iter().map(SavedIndividual::to_individual).collect())
                    .collect();
                history = cp.history.clone();
                gen = cp.gen;
                migrations = cp.migrations;
            }
        }

        let want_fault = sink.wants(EventKind::EvaluationFault);
        let want_generation = sink.wants(EventKind::GenerationEnd);
        let want_promotion = sink.wants(EventKind::Promotion);
        let mut timer = StageTimer::new(sink.wants(EventKind::StageTiming));
        let mut stats_mark = session.stats().clone();
        // Faults from the initial-population evaluation surface as
        // generation-0 events; a resumed segment replays completed
        // evaluations without re-reporting their faults.
        let init_faults = session.take_fault_events();
        if fresh && want_fault {
            for fault in init_faults {
                sink.record(&RunEvent::EvaluationFault {
                    generation: 0,
                    kind: fault.kind,
                    failures: fault.failures,
                    resolution: fault.resolution,
                });
            }
        }

        loop {
            if gen >= cfg.generations {
                let mut population: Vec<Individual> = cells.into_iter().flatten().collect();
                rank_and_crowd(&mut population);
                let front = population
                    .iter()
                    .filter(|m| m.rank == 0 && m.is_feasible())
                    .cloned()
                    .collect();
                let stats = session.stats().clone();
                return Ok(RunStatus::Complete(Box::new(RunOutcome {
                    population,
                    front,
                    evaluations: stats.evaluations as usize,
                    generations: gen,
                    gen_t: 0,
                    history,
                    phase_fronts: Vec::new(),
                    migrations,
                    stats,
                })));
            }
            if stop_after.is_some_and(|cap| gen >= cap) {
                if sink.wants(EventKind::CheckpointWritten) {
                    sink.record(&RunEvent::CheckpointWritten { generation: gen });
                }
                return Ok(RunStatus::Suspended(Box::new(CellularCheckpoint {
                    rng: rng.state(),
                    gen,
                    migrations,
                    cells: cells
                        .iter()
                        .map(|cell| cell.iter().map(SavedIndividual::from_individual).collect())
                        .collect(),
                    history: history.clone(),
                    stats: session.stats().clone(),
                })));
            }
            gen += 1;

            // --- breed every cell in topology order, submitting children
            // through the shared session as they are produced
            let mut queues: Vec<Vec<Vec<f64>>> = Vec::with_capacity(k);
            for i in 0..k {
                timer.start(Stage::Variation);
                let t0 = cell_metrics.as_ref().map(|_| std::time::Instant::now());
                let cell = &cells[i];
                let mut child_genes: Vec<Vec<f64>> = Vec::with_capacity(per_cell);
                while child_genes.len() < per_cell {
                    let pa = binary_tournament(&mut rng, cell);
                    // An openness of exactly zero must not consume RNG:
                    // that is the island degeneracy.
                    let mate_pool: &[Individual] =
                        if cfg.openness > 0.0 && rng.gen::<f64>() < cfg.openness {
                            &cells[pick_neighbor(&mut rng, &oriented[i], cfg.anisotropy)]
                        } else {
                            cell
                        };
                    let pb = binary_tournament(&mut rng, mate_pool);
                    let (c1, c2) = variation.offspring(
                        &mut rng,
                        &cell[pa].genes,
                        &mate_pool[pb].genes,
                        &bounds,
                    );
                    child_genes.push(c1);
                    if child_genes.len() < per_cell {
                        child_genes.push(c2);
                    }
                }
                for genes in &child_genes {
                    session.submit(genes);
                }
                if let (Some(ms), Some(t0)) = (&cell_metrics, t0) {
                    ms[i].candidates.add(child_genes.len() as u64);
                    ms[i].variation_nanos.add(elapsed_nanos(t0));
                }
                queues.push(child_genes);
            }

            // --- single merge loop: drain completions in submission
            // order (worker interleaving invisible), then per-cell
            // survivor selection
            for (i, child_genes) in queues.into_iter().enumerate() {
                timer.start(Stage::Evaluation);
                let evals = session.drain(per_cell)?;
                timer.start(Stage::Selection);
                let t0 = cell_metrics.as_ref().map(|_| std::time::Instant::now());
                let offspring: Vec<Individual> = child_genes
                    .into_iter()
                    .zip(evals)
                    .map(|(genes, ev)| Individual::new(genes, ev))
                    .collect();
                let mut combined = std::mem::take(&mut cells[i]);
                combined.extend(offspring);
                cells[i] = environmental_selection(combined, per_cell);
                timer.stop();
                if let (Some(ms), Some(t0)) = (&cell_metrics, t0) {
                    ms[i].selection_nanos.add(elapsed_nanos(t0));
                    #[allow(clippy::cast_precision_loss)]
                    ms[i]
                        .front_size
                        .set(cells[i].iter().filter(|m| m.rank == 0).count() as f64);
                }
            }

            // --- neighborhood migration
            timer.start(Stage::Promotion);
            let mut migrated = 0usize;
            if gen % cfg.migration_interval == 0 && k > 1 {
                migrations += 1;
                let (m, candidates) =
                    migrate(&mut cells, &adjacency, cfg.migrants, per_cell, &mut rng);
                migrated = m;
                if want_promotion {
                    sink.record(&RunEvent::Promotion {
                        generation: gen,
                        promoted: migrated,
                        candidates,
                    });
                }
            }
            timer.stop();

            // --- generation boundary: history row and events
            let feasible = cells.iter().flatten().filter(|m| m.is_feasible()).count();
            history.push(GenerationStats {
                generation: gen,
                phase: 2,
                temperature: 1.0,
                promoted: migrated,
                feasible,
                population: per_cell * k,
            });
            let faults = session.take_fault_events();
            if want_fault {
                for fault in faults {
                    sink.record(&RunEvent::EvaluationFault {
                        generation: gen,
                        kind: fault.kind,
                        failures: fault.failures,
                        resolution: fault.resolution,
                    });
                }
            }
            if want_generation {
                sink.record(&RunEvent::GenerationEnd {
                    generation: gen,
                    phase: 2,
                    temperature: 1.0,
                    promoted: migrated,
                    feasible,
                    population: per_cell * k,
                    evaluations: session.stats().evaluations,
                    front: merged_front_objectives(&cells),
                });
            }
            if timer.is_enabled() {
                let stages = timer.take();
                let delta = session.stats().since(&stats_mark);
                stats_mark = session.stats().clone();
                sink.record(&RunEvent::StageTiming {
                    generation: gen,
                    stages,
                    candidates: delta.candidates,
                    evaluations: delta.evaluations,
                    cache_hits: delta.cache_hits,
                });
            }
        }
    }
}

/// One migration event over a structured population: each cell clones
/// `migrants` members of its local rank-0 front (falling back to uniform
/// picks when the front is empty), then every pick list is delivered to
/// its cell's *first* neighbor and absorbed by environmental selection
/// back down to `capacity` members.
///
/// Total individual count is conserved: every cell stays exactly
/// `capacity` strong (selection truncates the `capacity + migrants`
/// combined pool). Returns `(migrated, candidates)`: the number of
/// clones delivered (`cells.len() * migrants`) and the total size of the
/// pick pools. Exposed so the topology property tests can pin the
/// conservation claim directly.
pub fn migrate(
    cells: &mut [Vec<Individual>],
    adjacency: &[Vec<usize>],
    migrants: usize,
    capacity: usize,
    rng: &mut StdRng,
) -> (usize, usize) {
    let k = cells.len();
    let mut candidates = 0usize;
    let mut outgoing: Vec<Vec<Individual>> = Vec::with_capacity(k);
    for cell in cells.iter() {
        let rank0: Vec<&Individual> = cell.iter().filter(|m| m.rank == 0).collect();
        candidates += if rank0.is_empty() {
            cell.len()
        } else {
            rank0.len()
        };
        let mut picks = Vec::with_capacity(migrants);
        for _ in 0..migrants {
            let src = if rank0.is_empty() {
                &cell[rng.gen_range(0..cell.len())]
            } else {
                rank0[rng.gen_range(0..rank0.len())]
            };
            picks.push(src.clone());
        }
        outgoing.push(picks);
    }
    for (i, picks) in outgoing.into_iter().enumerate() {
        let dst = adjacency[i][0];
        let cell = &mut cells[dst];
        let mut combined = std::mem::take(cell);
        combined.extend(picks);
        *cell = environmental_selection(combined, capacity);
    }
    (k * migrants, candidates)
}

/// Picks the neighbor cell an open mating draws its second parent from:
/// a forward/backward coin weighted by `anisotropy`, then a uniform pick
/// within the chosen half (falling back to the non-empty half when the
/// topology leaves one side empty).
fn pick_neighbor(rng: &mut StdRng, oriented: &(Vec<usize>, Vec<usize>), anisotropy: f64) -> usize {
    let (fwd, bwd) = oriented;
    let pool: &[usize] = if fwd.is_empty() {
        bwd
    } else if bwd.is_empty() || rng.gen::<f64>() < anisotropy {
        fwd
    } else {
        bwd
    };
    pool[rng.gen_range(0..pool.len())]
}

#[allow(clippy::cast_possible_truncation)]
fn elapsed_nanos(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_nanos() as u64
}

impl<P: Problem + Sync> Optimizer for CellularGa<P> {
    type Checkpoint = CellularCheckpoint;

    fn algorithm(&self) -> &'static str {
        "cellular"
    }

    fn run_with(&self, seed: u64, sink: &mut dyn Sink) -> Result<RunOutcome, OptimizeError> {
        self.drive(CellularLaunch::Seed(seed), None, sink)
            .map(expect_complete)
    }

    fn run_until_with(
        &self,
        seed: u64,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<CellularCheckpoint>, OptimizeError> {
        self.drive(CellularLaunch::Seed(seed), Some(stop_after), sink)
    }

    fn resume_with(
        &self,
        checkpoint: &CellularCheckpoint,
        sink: &mut dyn Sink,
    ) -> Result<RunOutcome, OptimizeError> {
        self.drive(CellularLaunch::Checkpoint(checkpoint), None, sink)
            .map(expect_complete)
    }

    fn resume_until_with(
        &self,
        checkpoint: &CellularCheckpoint,
        stop_after: usize,
        sink: &mut dyn Sink,
    ) -> Result<RunStatus<CellularCheckpoint>, OptimizeError> {
        self.drive(
            CellularLaunch::Checkpoint(checkpoint),
            Some(stop_after),
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::island::{IslandConfig, IslandGa};
    use crate::telemetry::MemorySink;
    use moea::problems::{Schaffer, Zdt1};

    fn quick(topology: Topology, interval: usize) -> CellularConfig {
        CellularConfig::builder()
            .population_size(40)
            .generations(30)
            .topology(topology)
            .migration_interval(interval)
            .migrants(2)
            .build()
            .unwrap()
    }

    fn ring4() -> Topology {
        Topology::Ring {
            cells: 4,
            radius: 1,
        }
    }

    #[test]
    fn builder_validates() {
        assert!(CellularConfig::builder()
            .topology(Topology::Ring {
                cells: 4,
                radius: 2
            })
            .build()
            .is_err());
        assert!(CellularConfig::builder()
            .population_size(12)
            .topology(ring4())
            .build()
            .is_err());
        assert!(CellularConfig::builder()
            .migration_interval(0)
            .build()
            .is_err());
        assert!(CellularConfig::builder()
            .population_size(16)
            .topology(ring4())
            .migrants(4)
            .build()
            .is_err());
        assert!(CellularConfig::builder().openness(1.5).build().is_err());
        assert!(CellularConfig::builder().anisotropy(-0.1).build().is_err());
        assert!(CellularConfig::builder().build().is_ok());
    }

    #[test]
    fn run_is_deterministic() {
        let a = CellularGa::new(Schaffer::new(), quick(ring4(), 10))
            .run_seeded(3)
            .unwrap();
        let b = CellularGa::new(Schaffer::new(), quick(ring4(), 10))
            .run_seeded(3)
            .unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn evaluation_budget_and_migration_schedule_match_island() {
        let r = CellularGa::new(Schaffer::new(), quick(ring4(), 10))
            .run_seeded(2)
            .unwrap();
        assert_eq!(r.evaluations, 40 + 30 * 40);
        assert_eq!(r.migrations, 3); // generations 10, 20, 30
    }

    #[test]
    fn fully_connected_zero_openness_is_the_island_model() {
        let island_cfg = IslandConfig::builder()
            .population_size(40)
            .generations(30)
            .islands(4)
            .migration_interval(10)
            .migrants(2)
            .build()
            .unwrap();
        let island = IslandGa::new(Schaffer::new(), island_cfg)
            .run_seeded(11)
            .unwrap();
        let cellular = CellularGa::new(
            Schaffer::new(),
            quick(Topology::FullyConnected { cells: 4 }, 10),
        )
        .run_seeded(11)
        .unwrap();
        assert_eq!(island.front_objectives(), cellular.front_objectives());
        assert_eq!(island.history, cellular.history);
        assert_eq!(island.evaluations, cellular.evaluations);
        assert_eq!(island.migrations, cellular.migrations);
        let genes = |o: &RunOutcome| -> Vec<Vec<f64>> {
            o.population.iter().map(|m| m.genes.clone()).collect()
        };
        assert_eq!(genes(&island), genes(&cellular));
    }

    #[test]
    fn open_mating_changes_the_stream_but_stays_deterministic() {
        let mut open = quick(ring4(), 10);
        open = CellularConfig::builder()
            .population_size(open.population_size)
            .generations(open.generations)
            .topology(ring4())
            .migration_interval(10)
            .migrants(2)
            .openness(0.5)
            .anisotropy(0.25)
            .build()
            .unwrap();
        let a = CellularGa::new(Schaffer::new(), open.clone())
            .run_seeded(5)
            .unwrap();
        let b = CellularGa::new(Schaffer::new(), open)
            .run_seeded(5)
            .unwrap();
        assert_eq!(a.front_objectives(), b.front_objectives());
        let closed = CellularGa::new(Schaffer::new(), quick(ring4(), 10))
            .run_seeded(5)
            .unwrap();
        assert_ne!(a.front_objectives(), closed.front_objectives());
    }

    #[test]
    fn kill_and_resume_is_lossless() {
        let ga = CellularGa::new(Schaffer::new(), quick(ring4(), 10));
        let whole = ga.run_seeded(7).unwrap();
        let status = ga.run_until(7, 13).unwrap();
        let RunStatus::Suspended(cp) = status else {
            panic!("expected suspension at generation 13");
        };
        assert_eq!(cp.gen, 13);
        // text round-trip, as the daemon would do it
        let cp = CellularCheckpoint::from_text(&cp.to_text()).unwrap();
        let resumed = ga.resume(&cp).unwrap();
        assert_eq!(whole.front_objectives(), resumed.front_objectives());
        assert_eq!(whole.history, resumed.history);
        assert_eq!(whole.evaluations, resumed.evaluations);
    }

    #[test]
    fn stop_after_zero_suspends_before_breeding() {
        let ga = CellularGa::new(Schaffer::new(), quick(ring4(), 10));
        let RunStatus::Suspended(cp) = ga.run_until(3, 0).unwrap() else {
            panic!("expected immediate suspension");
        };
        assert_eq!(cp.gen, 0);
        assert!(cp.history.is_empty());
        let resumed = ga.resume(&cp).unwrap();
        assert_eq!(
            resumed.front_objectives(),
            ga.run_seeded(3).unwrap().front_objectives()
        );
    }

    #[test]
    fn stop_past_the_budget_completes() {
        let ga = CellularGa::new(Schaffer::new(), quick(ring4(), 10));
        let status = ga.run_until(3, 99).unwrap();
        assert!(matches!(status, RunStatus::Complete(_)));
    }

    #[test]
    fn checkpoint_from_wrong_shape_is_rejected() {
        let ga = CellularGa::new(Schaffer::new(), quick(ring4(), 10));
        let RunStatus::Suspended(cp) = ga.run_until(1, 5).unwrap() else {
            panic!("expected suspension");
        };
        let eight_cells = CellularGa::new(
            Schaffer::new(),
            CellularConfig::builder()
                .population_size(40)
                .generations(30)
                .topology(Topology::Ring {
                    cells: 8,
                    radius: 1,
                })
                .build()
                .unwrap(),
        );
        assert!(eight_cells.resume(&cp).is_err());
    }

    #[test]
    fn events_match_run_structure() {
        let mut sink = MemorySink::new();
        let ga = CellularGa::new(Schaffer::new(), quick(ring4(), 10));
        assert_eq!(ga.algorithm(), "cellular");
        let watched = ga.run_with(1, &mut sink).unwrap();
        let bare = ga.run_seeded(1).unwrap();
        assert_eq!(bare.front_objectives(), watched.front_objectives());
        assert_eq!(bare.history, watched.history);
        let ends = sink
            .events()
            .iter()
            .filter(|e| matches!(e, RunEvent::GenerationEnd { .. }))
            .count();
        assert_eq!(ends, watched.generations);
        let promotions = sink
            .events()
            .iter()
            .filter(|e| matches!(e, RunEvent::Promotion { .. }))
            .count();
        assert_eq!(promotions, watched.migrations);
    }

    #[test]
    fn per_cell_metrics_observe_without_steering() {
        let registry = engine::MetricsRegistry::new();
        let series = engine::CellSeries::register(&registry, &[("arm", "cellular")]);
        let instrumented = CellularConfig::builder()
            .population_size(40)
            .generations(30)
            .topology(ring4())
            .migration_interval(10)
            .migrants(2)
            .cell_series(series.clone())
            .build()
            .unwrap();
        let watched = CellularGa::new(Schaffer::new(), instrumented)
            .run_seeded(4)
            .unwrap();
        let bare = CellularGa::new(Schaffer::new(), quick(ring4(), 10))
            .run_seeded(4)
            .unwrap();
        assert_eq!(watched.front_objectives(), bare.front_objectives());
        // 10 offspring per cell per generation over 30 generations.
        for i in 0..4 {
            assert_eq!(series.cell(i).candidates.get(), 300);
            assert!(series.cell(i).front_size.get() >= 1.0);
        }
        assert!(registry
            .render_text()
            .contains("dse_cell_candidates_total{arm=\"cellular\",cell=\"0\"} 300"));
    }

    #[test]
    fn works_on_zdt_and_every_topology() {
        for topo in [
            Topology::Ring {
                cells: 4,
                radius: 1,
            },
            Topology::Torus {
                rows: 2,
                cols: 2,
                radius: 1,
            },
            Topology::FullyConnected { cells: 4 },
            Topology::SmallWorld {
                cells: 4,
                radius: 1,
                chords: 1,
                seed: 3,
            },
        ] {
            let cfg = CellularConfig::builder()
                .population_size(32)
                .generations(15)
                .topology(topo)
                .openness(0.3)
                .build()
                .unwrap();
            let r = CellularGa::new(Zdt1::new(6), cfg).run_seeded(5).unwrap();
            assert!(!r.front.is_empty());
            assert_eq!(r.population.len(), 32);
        }
    }
}
