//! Per-job progress fan-out: a bounded in-memory ring of serialized
//! [`RunEvent`](sacga::RunEvent) JSONL lines that late subscribers can
//! replay from the start and live subscribers can follow with blocking
//! polls.
//!
//! The ring holds the most recent [`HUB_CAPACITY`] lines; a subscriber
//! that falls further behind observes a `skipped` count instead of the
//! dropped lines (the full stream is always on disk in the job's
//! `events.jsonl`).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Maximum lines retained per job before the ring drops its oldest.
pub const HUB_CAPACITY: usize = 65_536;

#[derive(Debug)]
struct Inner {
    /// Stream offset of `lines[0]`.
    base: u64,
    lines: VecDeque<String>,
    /// Lines overwritten by the ring since the hub was created; equals
    /// `base`, but kept as an explicit lifetime total so observability
    /// surfaces (the `dse_hub_dropped_lines` gauge) read one field.
    dropped: u64,
    done: bool,
}

/// One job's progress stream (see module docs).
#[derive(Debug)]
pub struct ProgressHub {
    inner: Mutex<Inner>,
    grew: Condvar,
}

/// One poll's worth of progress lines.
#[derive(Debug, PartialEq, Eq)]
pub struct HubPoll {
    /// Lines since the polled cursor, oldest first.
    pub lines: Vec<String>,
    /// Cursor to pass to the next poll.
    pub next: u64,
    /// Lines the subscriber missed because the ring dropped them.
    pub skipped: u64,
    /// Whether the job reached a terminal state; no further lines will
    /// be published after the ones returned here.
    pub done: bool,
}

impl ProgressHub {
    /// An empty stream.
    pub fn new() -> Self {
        ProgressHub {
            inner: Mutex::new(Inner {
                base: 0,
                lines: VecDeque::new(),
                dropped: 0,
                done: false,
            }),
            grew: Condvar::new(),
        }
    }

    /// Appends one line and wakes blocked subscribers.
    pub fn publish(&self, line: String) {
        let mut inner = self.inner.lock().unwrap();
        if inner.lines.len() == HUB_CAPACITY {
            inner.lines.pop_front();
            inner.base += 1;
            inner.dropped += 1;
        }
        inner.lines.push_back(line);
        drop(inner);
        self.grew.notify_all();
    }

    /// Lifetime count of lines the ring overwrote; any subscriber that
    /// started from cursor 0 has missed at least these.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Marks the stream terminal and wakes blocked subscribers.
    pub fn finish(&self) {
        self.inner.lock().unwrap().done = true;
        self.grew.notify_all();
    }

    /// Returns all lines at offsets `>= cursor`, blocking up to
    /// `timeout` when none are available yet and the stream is not
    /// terminal. A `cursor` of 0 replays the retained history.
    pub fn poll(&self, cursor: u64, timeout: Duration) -> HubPoll {
        let mut inner = self.inner.lock().unwrap();
        let end = |inner: &Inner| inner.base + inner.lines.len() as u64;
        if cursor >= end(&inner) && !inner.done {
            let (guard, _) = self.grew.wait_timeout(inner, timeout).unwrap();
            inner = guard;
        }
        let start = cursor.max(inner.base);
        let skipped = start - cursor;
        let lines: Vec<String> = inner
            .lines
            .iter()
            .skip((start - inner.base) as usize)
            .cloned()
            .collect();
        HubPoll {
            next: start + lines.len() as u64,
            lines,
            skipped,
            done: inner.done,
        }
    }
}

impl Default for ProgressHub {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_history_then_follows() {
        let hub = ProgressHub::new();
        hub.publish("a".into());
        hub.publish("b".into());
        let p = hub.poll(0, Duration::ZERO);
        assert_eq!(p.lines, vec!["a", "b"]);
        assert_eq!(p.next, 2);
        assert!(!p.done);
        hub.publish("c".into());
        hub.finish();
        let p = hub.poll(p.next, Duration::ZERO);
        assert_eq!(p.lines, vec!["c"]);
        assert!(p.done);
    }

    #[test]
    fn poll_after_done_returns_immediately() {
        let hub = ProgressHub::new();
        hub.finish();
        let p = hub.poll(0, Duration::from_secs(5));
        assert!(p.lines.is_empty());
        assert!(p.done);
    }

    #[test]
    fn overflow_reports_skipped_lines() {
        let hub = ProgressHub::new();
        for i in 0..(HUB_CAPACITY + 10) {
            hub.publish(format!("{i}"));
        }
        let p = hub.poll(0, Duration::ZERO);
        assert_eq!(p.skipped, 10);
        assert_eq!(p.lines.len(), HUB_CAPACITY);
        assert_eq!(p.lines[0], "10");
        assert_eq!(hub.dropped(), 10);
    }

    #[test]
    fn dropped_is_zero_until_overflow() {
        let hub = ProgressHub::new();
        hub.publish("a".into());
        assert_eq!(hub.dropped(), 0);
    }
}
