//! The error type shared by every layer of the service.

use std::fmt;
use std::io;
use std::path::PathBuf;

use crate::spec::JobId;
use moea::OptimizeError;

/// Anything that can go wrong inside the optimization service.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// Filesystem or socket I/O failed.
    Io(io::Error),
    /// A job specification line did not parse or failed validation.
    InvalidSpec(String),
    /// The bounded job queue is at capacity; resubmit later.
    QueueFull {
        /// The configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// No job with this identifier exists in the store.
    UnknownJob(String),
    /// A job with the identical canonical spec was already submitted.
    /// Vary `name=` to rerun the same configuration.
    DuplicateJob(JobId),
    /// A persisted artifact did not parse (and was not recoverable).
    Corrupt {
        /// Path of the offending file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// The optimizer itself failed while executing a job.
    Run {
        /// The job that failed.
        job: JobId,
        /// The underlying optimizer error.
        source: OptimizeError,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::InvalidSpec(msg) => write!(f, "invalid job spec: {msg}"),
            ServerError::QueueFull { capacity } => {
                write!(f, "job queue full (capacity {capacity})")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::UnknownJob(id) => write!(f, "unknown job: {id}"),
            ServerError::DuplicateJob(id) => {
                write!(f, "duplicate job {id}: vary name= to resubmit")
            }
            ServerError::Corrupt { path, detail } => {
                write!(f, "corrupt artifact {}: {detail}", path.display())
            }
            ServerError::Run { job, source } => write!(f, "job {job} failed: {source}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Run { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}
