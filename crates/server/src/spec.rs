//! Job specifications: what to optimize, with which algorithm arm, under
//! which seed, budget and service policy — plus the deterministic
//! [`JobId`] derived from the canonical spec text.
//!
//! A spec round-trips through one canonical line:
//!
//! ```text
//! job v1 name=demo tenant=none problem=schaffer algo=sacga:pop=16,gens=10,parts=4 \
//!     seed=42 priority=0 slice=0 stall=0 fault=none inject=0 screen=0
//! ```
//!
//! (shown wrapped; the wire format is a single line). The [`JobId`] is
//! the FNV-1a 64-bit hash of that canonical line, so resubmitting the
//! identical spec is detected as a duplicate — vary `name=` to rerun.

use std::fmt;

use crate::error::ServerError;
use analog_circuits::surrogate::{drivable_screen, ScreenThresholds};
use analog_circuits::{DrivableLoadProblem, Spec};
use engine::{EngineMetrics, FaultPlan, FaultPolicy, SharedCache, SurrogateScreen};
use moea::nsga2::{Nsga2, Nsga2Config};
use moea::problems::{BinhKorn, Constr, Schaffer, Srinivas, Tanaka, Zdt1, Zdt2, Zdt3};
use moea::{Evaluation, Problem};
use sacga::local::LocalCompetitionGaBuilder;
use sacga::{
    CellularConfig, CellularGa, DynOptimizer, IslandConfig, IslandGa, Mesacga, MesacgaConfig,
    Sacga, SacgaConfig, SteadyConfig, SteadySacga, Topology,
};

/// Deterministic job identifier: FNV-1a 64 of the canonical spec line,
/// printed as 16 lower-case hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Parses the 16-hex-digit form produced by `Display`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidSpec`] when `s` is not exactly 16
    /// hex digits.
    pub fn parse(s: &str) -> Result<JobId, ServerError> {
        if s.len() != 16 {
            return Err(ServerError::InvalidSpec(format!(
                "job id must be 16 hex digits, got {s:?}"
            )));
        }
        u64::from_str_radix(s, 16)
            .map(JobId)
            .map_err(|_| ServerError::InvalidSpec(format!("job id must be hex, got {s:?}")))
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The benchmark problem a job optimizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemSpec {
    /// Schaffer's two-objective toy problem.
    Schaffer,
    /// The constrained Binh–Korn problem.
    BinhKorn,
    /// The constrained Srinivas problem.
    Srinivas,
    /// The disconnected-front Tanaka problem.
    Tanaka,
    /// The CONSTR problem.
    Constr,
    /// ZDT1 with `n` decision variables.
    Zdt1(usize),
    /// ZDT2 with `n` decision variables.
    Zdt2(usize),
    /// ZDT3 with `n` decision variables.
    Zdt3(usize),
    /// The featured switched-capacitor integrator sizing problem.
    Drivable,
}

impl ProblemSpec {
    /// Parses a problem token (`schaffer`, `zdt1:8`, `drivable`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidSpec`] for unknown tokens.
    pub fn parse(token: &str) -> Result<Self, ServerError> {
        let (head, arg) = match token.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (token, None),
        };
        let n = |arg: Option<&str>| -> Result<usize, ServerError> {
            let a = arg.ok_or_else(|| {
                ServerError::InvalidSpec(format!("problem {head} needs a dimension, e.g. {head}:8"))
            })?;
            a.parse::<usize>().map_err(|_| {
                ServerError::InvalidSpec(format!("bad dimension {a:?} for problem {head}"))
            })
        };
        match head {
            "schaffer" => Ok(ProblemSpec::Schaffer),
            "binh_korn" => Ok(ProblemSpec::BinhKorn),
            "srinivas" => Ok(ProblemSpec::Srinivas),
            "tanaka" => Ok(ProblemSpec::Tanaka),
            "constr" => Ok(ProblemSpec::Constr),
            "zdt1" => Ok(ProblemSpec::Zdt1(n(arg)?)),
            "zdt2" => Ok(ProblemSpec::Zdt2(n(arg)?)),
            "zdt3" => Ok(ProblemSpec::Zdt3(n(arg)?)),
            "drivable" => Ok(ProblemSpec::Drivable),
            other => Err(ServerError::InvalidSpec(format!(
                "unknown problem {other:?}"
            ))),
        }
    }

    /// The canonical token this spec serializes to.
    pub fn token(&self) -> String {
        match self {
            ProblemSpec::Schaffer => "schaffer".into(),
            ProblemSpec::BinhKorn => "binh_korn".into(),
            ProblemSpec::Srinivas => "srinivas".into(),
            ProblemSpec::Tanaka => "tanaka".into(),
            ProblemSpec::Constr => "constr".into(),
            ProblemSpec::Zdt1(n) => format!("zdt1:{n}"),
            ProblemSpec::Zdt2(n) => format!("zdt2:{n}"),
            ProblemSpec::Zdt3(n) => format!("zdt3:{n}"),
            ProblemSpec::Drivable => "drivable".into(),
        }
    }

    /// Instantiates the problem behind a type-erased handle.
    pub fn build(&self) -> Box<dyn Problem + Send + Sync> {
        match self {
            ProblemSpec::Schaffer => Box::new(Schaffer::new()),
            ProblemSpec::BinhKorn => Box::new(BinhKorn::new()),
            ProblemSpec::Srinivas => Box::new(Srinivas::new()),
            ProblemSpec::Tanaka => Box::new(Tanaka::new()),
            ProblemSpec::Constr => Box::new(Constr::new()),
            ProblemSpec::Zdt1(n) => Box::new(Zdt1::new(*n)),
            ProblemSpec::Zdt2(n) => Box::new(Zdt2::new(*n)),
            ProblemSpec::Zdt3(n) => Box::new(Zdt3::new(*n)),
            ProblemSpec::Drivable => Box::new(DrivableLoadProblem::new(Spec::featured())),
        }
    }

    /// The partition slice range to configure for partitioned algorithms,
    /// when the problem needs one beyond the default.
    fn slice_range(&self) -> Option<(f64, f64)> {
        match self {
            ProblemSpec::Drivable => Some(DrivableLoadProblem::slice_range()),
            _ => None,
        }
    }

    /// The analytic surrogate pre-screen for this problem, when one
    /// exists. Jobs opt in via `screen=1`; screened runs are not
    /// byte-identical to unscreened ones.
    fn surrogate_screen(&self) -> Option<SurrogateScreen<Evaluation>> {
        match self {
            ProblemSpec::Drivable => {
                let problem = DrivableLoadProblem::new(Spec::featured());
                Some(drivable_screen(
                    problem.process(),
                    ScreenThresholds::conservative(),
                ))
            }
            _ => None,
        }
    }
}

/// The algorithm arm a job runs, with its core sizing knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgoSpec {
    /// SACGA: annealed local-to-global competition.
    Sacga {
        /// Population size.
        pop: usize,
        /// Generations to run.
        gens: usize,
        /// Objective-space partitions.
        parts: usize,
    },
    /// The pure local-competition GA of Sec. 4.3.
    Local {
        /// Population size.
        pop: usize,
        /// Generations to run.
        gens: usize,
        /// Objective-space partitions.
        parts: usize,
    },
    /// MESACGA with the paper's expanding-partition cascade over `span`
    /// total generations.
    Mesacga {
        /// Population size.
        pop: usize,
        /// Total generation span across all phases.
        span: usize,
    },
    /// Steady-state SACGA: same algorithm as `Sacga`, driven through the
    /// engine's incremental submission API with no generation barrier.
    Steady {
        /// Population size.
        pop: usize,
        /// Generations to run.
        gens: usize,
        /// Objective-space partitions.
        parts: usize,
        /// Look-ahead window (submitted-but-unmerged offspring).
        window: usize,
        /// Completions folded per merge.
        quantum: usize,
    },
    /// The NSGA-II baseline (purely global competition).
    Nsga2 {
        /// Population size.
        pop: usize,
        /// Generations to run.
        gens: usize,
    },
    /// The island-model GA baseline.
    Island {
        /// Total population size across islands.
        pop: usize,
        /// Generations to run.
        gens: usize,
        /// Island count.
        islands: usize,
    },
    /// The cellular structured-population GA over a neighborhood
    /// topology.
    Cellular {
        /// Total population size across cells.
        pop: usize,
        /// Generations to run.
        gens: usize,
        /// Neighborhood graph family.
        topo: CellTopo,
        /// Cell count (`torus` requires a perfect square, laid out as a
        /// √cells × √cells lattice).
        cells: usize,
        /// Neighborhood radius (ignored by `full`).
        radius: usize,
        /// Generations between migrations.
        interval: usize,
        /// Individuals each cell emits per migration.
        migrants: usize,
        /// Open-mating probability in percent (0–100).
        open: usize,
        /// Forward-bias of open matings in percent (0–100; 50 is
        /// isotropic).
        aniso: usize,
    },
}

/// The neighborhood-graph family of a [`AlgoSpec::Cellular`] arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellTopo {
    /// Cyclic ring lattice.
    Ring,
    /// 2-D torus lattice (cells must be a perfect square).
    Torus,
    /// Fully connected — the island-model degenerate point.
    Full,
    /// Ring plus seeded random chords (Watts–Strogatz style); the chord
    /// seed is the job seed, so the graph is pinned by the spec.
    SmallWorld,
}

impl CellTopo {
    fn parse(token: &str, head: &str) -> Result<Self, ServerError> {
        match token {
            "ring" => Ok(CellTopo::Ring),
            "torus" => Ok(CellTopo::Torus),
            "full" => Ok(CellTopo::Full),
            "smallworld" => Ok(CellTopo::SmallWorld),
            other => Err(ServerError::InvalidSpec(format!(
                "algo {head}: unknown topology {other:?} \
                 (expected ring, torus, full or smallworld)"
            ))),
        }
    }

    fn token(self) -> &'static str {
        match self {
            CellTopo::Ring => "ring",
            CellTopo::Torus => "torus",
            CellTopo::Full => "full",
            CellTopo::SmallWorld => "smallworld",
        }
    }

    /// Realizes the concrete [`Topology`]; `seed` pins small-world
    /// chords.
    fn build(self, cells: usize, radius: usize, seed: u64) -> Result<Topology, ServerError> {
        match self {
            CellTopo::Ring => Ok(Topology::Ring { cells, radius }),
            CellTopo::Torus => {
                let side = (cells as f64).sqrt().round() as usize;
                if side * side != cells {
                    return Err(ServerError::InvalidSpec(format!(
                        "algo cellular: torus needs a perfect-square cell count, got {cells}"
                    )));
                }
                Ok(Topology::Torus {
                    rows: side,
                    cols: side,
                    radius,
                })
            }
            CellTopo::Full => Ok(Topology::FullyConnected { cells }),
            CellTopo::SmallWorld => Ok(Topology::SmallWorld {
                cells,
                radius,
                chords: cells / 4 + 1,
                seed,
            }),
        }
    }
}

fn algo_params(body: &str, head: &str) -> Result<Vec<(String, usize)>, ServerError> {
    let mut out = Vec::new();
    for part in body.split(',') {
        let (k, v) = part.split_once('=').ok_or_else(|| {
            ServerError::InvalidSpec(format!("algo {head}: expected key=value, got {part:?}"))
        })?;
        let v = v
            .parse::<usize>()
            .map_err(|_| ServerError::InvalidSpec(format!("algo {head}: bad value in {part:?}")))?;
        out.push((k.to_string(), v));
    }
    Ok(out)
}

fn take(params: &[(String, usize)], key: &str, head: &str) -> Result<usize, ServerError> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| ServerError::InvalidSpec(format!("algo {head}: missing {key}=")))
}

fn take_or(params: &[(String, usize)], key: &str, default: usize) -> usize {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map_or(default, |(_, v)| *v)
}

impl AlgoSpec {
    /// Parses an algorithm token
    /// (`sacga:pop=16,gens=10,parts=4`, `nsga2:pop=16,gens=10`, ...).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidSpec`] for unknown algorithms,
    /// missing or malformed parameters.
    pub fn parse(token: &str) -> Result<Self, ServerError> {
        let (head, body) = token.split_once(':').ok_or_else(|| {
            ServerError::InvalidSpec(format!(
                "algo token {token:?} needs parameters, e.g. sacga:pop=16,gens=10,parts=4"
            ))
        })?;
        // The cellular arm carries one non-numeric parameter (the
        // topology family), peeled off before the key=usize pass.
        let mut topo = None;
        let body = if head == "cellular" {
            let mut numeric = Vec::new();
            for part in body.split(',') {
                if let Some(t) = part.strip_prefix("topo=") {
                    topo = Some(CellTopo::parse(t, head)?);
                } else {
                    numeric.push(part);
                }
            }
            numeric.join(",")
        } else {
            body.to_string()
        };
        let p = algo_params(&body, head)?;
        match head {
            "sacga" => Ok(AlgoSpec::Sacga {
                pop: take(&p, "pop", head)?,
                gens: take(&p, "gens", head)?,
                parts: take(&p, "parts", head)?,
            }),
            "local" => Ok(AlgoSpec::Local {
                pop: take(&p, "pop", head)?,
                gens: take(&p, "gens", head)?,
                parts: take(&p, "parts", head)?,
            }),
            "mesacga" => Ok(AlgoSpec::Mesacga {
                pop: take(&p, "pop", head)?,
                span: take(&p, "span", head)?,
            }),
            "steady" => {
                let pop = take(&p, "pop", head)?;
                Ok(AlgoSpec::Steady {
                    pop,
                    gens: take(&p, "gens", head)?,
                    parts: take(&p, "parts", head)?,
                    // Same defaults as the config builder; the canonical
                    // token always spells them out.
                    window: take_or(&p, "window", pop),
                    quantum: take_or(&p, "quantum", (pop / 4).max(1)),
                })
            }
            "nsga2" => Ok(AlgoSpec::Nsga2 {
                pop: take(&p, "pop", head)?,
                gens: take(&p, "gens", head)?,
            }),
            "island" => Ok(AlgoSpec::Island {
                pop: take(&p, "pop", head)?,
                gens: take(&p, "gens", head)?,
                islands: take(&p, "islands", head)?,
            }),
            "cellular" => Ok(AlgoSpec::Cellular {
                pop: take(&p, "pop", head)?,
                gens: take(&p, "gens", head)?,
                topo: topo.unwrap_or(CellTopo::Ring),
                cells: take(&p, "cells", head)?,
                // Same defaults as the config builder; the canonical
                // token always spells them out.
                radius: take_or(&p, "radius", 1),
                interval: take_or(&p, "interval", 10),
                migrants: take_or(&p, "migrants", 1),
                open: take_or(&p, "open", 0),
                aniso: take_or(&p, "aniso", 50),
            }),
            other => Err(ServerError::InvalidSpec(format!("unknown algo {other:?}"))),
        }
    }

    /// The canonical token this spec serializes to.
    pub fn token(&self) -> String {
        match self {
            AlgoSpec::Sacga { pop, gens, parts } => {
                format!("sacga:pop={pop},gens={gens},parts={parts}")
            }
            AlgoSpec::Local { pop, gens, parts } => {
                format!("local:pop={pop},gens={gens},parts={parts}")
            }
            AlgoSpec::Mesacga { pop, span } => format!("mesacga:pop={pop},span={span}"),
            AlgoSpec::Steady {
                pop,
                gens,
                parts,
                window,
                quantum,
            } => {
                format!(
                    "steady:pop={pop},gens={gens},parts={parts},window={window},quantum={quantum}"
                )
            }
            AlgoSpec::Nsga2 { pop, gens } => format!("nsga2:pop={pop},gens={gens}"),
            AlgoSpec::Island { pop, gens, islands } => {
                format!("island:pop={pop},gens={gens},islands={islands}")
            }
            AlgoSpec::Cellular {
                pop,
                gens,
                topo,
                cells,
                radius,
                interval,
                migrants,
                open,
                aniso,
            } => {
                format!(
                    "cellular:pop={pop},gens={gens},topo={},cells={cells},radius={radius},\
                     interval={interval},migrants={migrants},open={open},aniso={aniso}",
                    topo.token()
                )
            }
        }
    }

    /// The bare arm name (`sacga`, `steady`, ...) without parameters —
    /// the value of the `arm` metric label.
    pub fn arm(&self) -> &'static str {
        match self {
            AlgoSpec::Sacga { .. } => "sacga",
            AlgoSpec::Local { .. } => "local",
            AlgoSpec::Mesacga { .. } => "mesacga",
            AlgoSpec::Steady { .. } => "steady",
            AlgoSpec::Nsga2 { .. } => "nsga2",
            AlgoSpec::Island { .. } => "island",
            AlgoSpec::Cellular { .. } => "cellular",
        }
    }

    /// Whether this arm's builder accepts a shared (tenant) cache.
    pub fn supports_shared_cache(&self) -> bool {
        matches!(
            self,
            AlgoSpec::Sacga { .. }
                | AlgoSpec::Mesacga { .. }
                | AlgoSpec::Steady { .. }
                | AlgoSpec::Nsga2 { .. }
                | AlgoSpec::Cellular { .. }
        )
    }

    /// Whether this arm's builder accepts a surrogate pre-screen.
    pub fn supports_screen(&self) -> bool {
        !matches!(self, AlgoSpec::Island { .. })
    }
}

/// A complete job description: problem + algorithm arm + seed + service
/// policy. The canonical text form is one line (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Human-chosen job name; part of the identity hash, so reruns of an
    /// identical configuration vary only this.
    pub name: String,
    /// Shared-cache pool this job draws from; `None` means a private
    /// per-run cache. Only arms for which
    /// [`AlgoSpec::supports_shared_cache`] is `true` may set a tenant.
    pub tenant: Option<String>,
    /// The benchmark problem.
    pub problem: ProblemSpec,
    /// The algorithm arm.
    pub algo: AlgoSpec,
    /// RNG seed; together with the spec this pins the run bit-exactly.
    pub seed: u64,
    /// Queue priority 0–9; higher pops first, FIFO within a level.
    pub priority: u8,
    /// Cooperative-preemption quantum in generations; `0` runs each
    /// job to completion in one slice. Ignored by arms that cannot
    /// checkpoint (NSGA-II, island), which always run to completion.
    pub slice: usize,
    /// Stall-detector window in generations; `0` disables the detector.
    pub stall_window: usize,
    /// Fault-rate alarm threshold (faults per candidate per generation);
    /// `None` disables the alarm.
    pub fault_alarm: Option<f64>,
    /// Rate of injected non-finite evaluations (fault-injection harness
    /// for health testing); `0` injects nothing.
    pub inject_nonfinite: f64,
    /// Opt-in analytic surrogate pre-screen: obviously infeasible
    /// candidates are answered by the surrogate (counted as `screened`)
    /// instead of the full model. Only valid for problems that have a
    /// surrogate and arms that accept one; changes results, so it is
    /// part of the job identity.
    pub screen: bool,
}

fn valid_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

impl JobSpec {
    /// A spec with the given identity fields and default policy: no
    /// tenant, priority 0, no preemption, watchdogs off, no injection.
    pub fn new(name: impl Into<String>, problem: ProblemSpec, algo: AlgoSpec, seed: u64) -> Self {
        JobSpec {
            name: name.into(),
            tenant: None,
            problem,
            algo,
            seed,
            priority: 0,
            slice: 0,
            stall_window: 0,
            fault_alarm: None,
            inject_nonfinite: 0.0,
            screen: false,
        }
    }

    /// Sets the tenant cache pool.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Sets the queue priority (0–9).
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the preemption quantum in generations.
    pub fn slice(mut self, slice: usize) -> Self {
        self.slice = slice;
        self
    }

    /// Enables the stall detector with the given window.
    pub fn stall_window(mut self, window: usize) -> Self {
        self.stall_window = window;
        self
    }

    /// Enables the fault-rate alarm with the given threshold.
    pub fn fault_alarm(mut self, rate: f64) -> Self {
        self.fault_alarm = Some(rate);
        self
    }

    /// Enables non-finite fault injection at the given rate.
    pub fn inject_nonfinite(mut self, rate: f64) -> Self {
        self.inject_nonfinite = rate;
        self
    }

    /// Enables the problem's analytic surrogate pre-screen.
    pub fn screen(mut self) -> Self {
        self.screen = true;
        self
    }

    /// Validates field ranges and cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidSpec`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), ServerError> {
        if !valid_token(&self.name) {
            return Err(ServerError::InvalidSpec(format!(
                "name {:?} must be non-empty [A-Za-z0-9._-]",
                self.name
            )));
        }
        if let Some(t) = &self.tenant {
            if !valid_token(t) {
                return Err(ServerError::InvalidSpec(format!(
                    "tenant {t:?} must be non-empty [A-Za-z0-9._-]"
                )));
            }
            if !self.algo.supports_shared_cache() {
                return Err(ServerError::InvalidSpec(format!(
                    "algo {} does not support a tenant cache",
                    self.algo.token()
                )));
            }
        }
        if self.priority > 9 {
            return Err(ServerError::InvalidSpec(format!(
                "priority {} out of range 0-9",
                self.priority
            )));
        }
        if let Some(rate) = self.fault_alarm {
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(ServerError::InvalidSpec(format!(
                    "fault alarm rate {rate} must be finite and >= 0"
                )));
            }
        }
        if !(self.inject_nonfinite.is_finite() && (0.0..=1.0).contains(&self.inject_nonfinite)) {
            return Err(ServerError::InvalidSpec(format!(
                "inject rate {} must be in [0, 1]",
                self.inject_nonfinite
            )));
        }
        if self.screen {
            if self.problem.surrogate_screen().is_none() {
                return Err(ServerError::InvalidSpec(format!(
                    "problem {} has no surrogate screen",
                    self.problem.token()
                )));
            }
            if !self.algo.supports_screen() {
                return Err(ServerError::InvalidSpec(format!(
                    "algo {} does not support a surrogate screen",
                    self.algo.token()
                )));
            }
        }
        Ok(())
    }

    /// The canonical single-line text form; hashing this yields
    /// [`JobSpec::id`].
    pub fn canonical(&self) -> String {
        format!(
            "job v1 name={} tenant={} problem={} algo={} seed={} priority={} slice={} stall={} fault={} inject={} screen={}",
            self.name,
            self.tenant.as_deref().unwrap_or("none"),
            self.problem.token(),
            self.algo.token(),
            self.seed,
            self.priority,
            self.slice,
            self.stall_window,
            self.fault_alarm
                .map_or_else(|| "none".to_string(), |r| r.to_string()),
            self.inject_nonfinite,
            u8::from(self.screen),
        )
    }

    /// The deterministic identifier of this spec.
    pub fn id(&self) -> JobId {
        JobId(fnv1a64(&self.canonical()))
    }

    /// Parses the canonical line form.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidSpec`] on malformed input or
    /// failed validation.
    pub fn parse(line: &str) -> Result<JobSpec, ServerError> {
        let mut tokens = line.split_whitespace();
        match (tokens.next(), tokens.next()) {
            (Some("job"), Some("v1")) => {}
            _ => {
                return Err(ServerError::InvalidSpec(
                    "spec must start with 'job v1'".into(),
                ))
            }
        }
        let mut name = None;
        let mut tenant = None;
        let mut problem = None;
        let mut algo = None;
        let mut seed = None;
        let mut priority = 0u8;
        let mut slice = 0usize;
        let mut stall = 0usize;
        let mut fault = None;
        let mut inject = 0.0f64;
        let mut screen = false;
        for tok in tokens {
            let (k, v) = tok.split_once('=').ok_or_else(|| {
                ServerError::InvalidSpec(format!("expected key=value, got {tok:?}"))
            })?;
            let bad = |what: &str| ServerError::InvalidSpec(format!("bad {what} value {v:?}"));
            match k {
                "name" => name = Some(v.to_string()),
                "tenant" => tenant = (v != "none").then(|| v.to_string()),
                "problem" => problem = Some(ProblemSpec::parse(v)?),
                "algo" => algo = Some(AlgoSpec::parse(v)?),
                "seed" => seed = Some(v.parse::<u64>().map_err(|_| bad("seed"))?),
                "priority" => priority = v.parse::<u8>().map_err(|_| bad("priority"))?,
                "slice" => slice = v.parse::<usize>().map_err(|_| bad("slice"))?,
                "stall" => stall = v.parse::<usize>().map_err(|_| bad("stall"))?,
                "fault" => {
                    fault = if v == "none" {
                        None
                    } else {
                        Some(v.parse::<f64>().map_err(|_| bad("fault"))?)
                    }
                }
                "inject" => inject = v.parse::<f64>().map_err(|_| bad("inject"))?,
                "screen" => {
                    screen = match v {
                        "0" => false,
                        "1" => true,
                        _ => return Err(bad("screen")),
                    }
                }
                other => {
                    return Err(ServerError::InvalidSpec(format!("unknown key {other:?}")));
                }
            }
        }
        let missing = |what: &str| ServerError::InvalidSpec(format!("missing {what}="));
        let spec = JobSpec {
            name: name.ok_or_else(|| missing("name"))?,
            tenant,
            problem: problem.ok_or_else(|| missing("problem"))?,
            algo: algo.ok_or_else(|| missing("algo"))?,
            seed: seed.ok_or_else(|| missing("seed"))?,
            priority,
            slice,
            stall_window: stall,
            fault_alarm: fault,
            inject_nonfinite: inject,
            screen,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Instantiates the optimizer for this job, wiring in the tenant
    /// cache (when given), the fault-injection harness (when
    /// `inject_nonfinite > 0`), and a live [`EngineMetrics`] bundle
    /// (when given; observation only, results are unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::InvalidSpec`] when the underlying config
    /// builder rejects the sizing parameters.
    pub fn build_optimizer(
        &self,
        cache: Option<SharedCache<Evaluation>>,
        metrics: Option<EngineMetrics>,
    ) -> Result<Box<dyn DynOptimizer>, ServerError> {
        let cfg_err = |e: moea::OptimizeError| ServerError::InvalidSpec(e.to_string());
        let problem = self.problem.build();
        let plan = (self.inject_nonfinite > 0.0)
            .then(|| FaultPlan::seeded(self.seed).nonfinite(self.inject_nonfinite));
        let screen = self
            .screen
            .then(|| self.problem.surrogate_screen())
            .flatten();
        match &self.algo {
            AlgoSpec::Sacga { pop, gens, parts } => {
                let mut b = SacgaConfig::builder()
                    .population_size(*pop)
                    .generations(*gens)
                    .partitions(*parts);
                if let Some((lo, hi)) = self.problem.slice_range() {
                    b = b.slice_range(lo, hi);
                }
                if let Some(cache) = cache {
                    b = b.shared_cache(cache);
                }
                if let Some(plan) = plan {
                    b = b.fault_policy(FaultPolicy::tolerant(3)).inject_faults(plan);
                }
                if let Some(screen) = screen {
                    b = b.surrogate_screen(screen);
                }
                if let Some(metrics) = metrics {
                    b = b.metrics(metrics);
                }
                Ok(Box::new(Sacga::new(problem, b.build().map_err(cfg_err)?)))
            }
            AlgoSpec::Local { pop, gens, parts } => {
                let mut b = LocalCompetitionGaBuilder::new()
                    .population_size(*pop)
                    .generations(*gens)
                    .partitions(*parts);
                if let Some((lo, hi)) = self.problem.slice_range() {
                    b = b.slice_range(lo, hi);
                }
                if let Some(plan) = plan {
                    b = b.fault_policy(FaultPolicy::tolerant(3)).inject_faults(plan);
                }
                if let Some(screen) = screen {
                    b = b.surrogate_screen(screen);
                }
                if let Some(metrics) = metrics {
                    b = b.metrics(metrics);
                }
                Ok(Box::new(b.build(problem).map_err(cfg_err)?))
            }
            AlgoSpec::Mesacga { pop, span } => {
                let mut b = MesacgaConfig::builder()
                    .population_size(*pop)
                    .paper_phases(*span);
                if let Some((lo, hi)) = self.problem.slice_range() {
                    b = b.slice_range(lo, hi);
                }
                if let Some(cache) = cache {
                    b = b.shared_cache(cache);
                }
                if let Some(plan) = plan {
                    b = b.fault_policy(FaultPolicy::tolerant(3)).inject_faults(plan);
                }
                if let Some(screen) = screen {
                    b = b.surrogate_screen(screen);
                }
                if let Some(metrics) = metrics {
                    b = b.metrics(metrics);
                }
                Ok(Box::new(Mesacga::new(problem, b.build().map_err(cfg_err)?)))
            }
            AlgoSpec::Steady {
                pop,
                gens,
                parts,
                window,
                quantum,
            } => {
                let mut b = SteadyConfig::builder()
                    .population_size(*pop)
                    .generations(*gens)
                    .partitions(*parts)
                    .window(*window)
                    .quantum(*quantum);
                if let Some((lo, hi)) = self.problem.slice_range() {
                    b = b.slice_range(lo, hi);
                }
                if let Some(cache) = cache {
                    b = b.shared_cache(cache);
                }
                if let Some(plan) = plan {
                    b = b.fault_policy(FaultPolicy::tolerant(3)).inject_faults(plan);
                }
                if let Some(screen) = screen {
                    b = b.surrogate_screen(screen);
                }
                if let Some(metrics) = metrics {
                    b = b.metrics(metrics);
                }
                Ok(Box::new(SteadySacga::new(
                    problem,
                    b.build().map_err(cfg_err)?,
                )))
            }
            AlgoSpec::Nsga2 { pop, gens } => {
                let mut b = Nsga2Config::builder()
                    .population_size(*pop)
                    .generations(*gens);
                if let Some(cache) = cache {
                    b = b.shared_cache(cache);
                }
                if let Some(plan) = plan {
                    b = b.fault_policy(FaultPolicy::tolerant(3)).inject_faults(plan);
                }
                if let Some(screen) = screen {
                    b = b.surrogate_screen(screen);
                }
                if let Some(metrics) = metrics {
                    b = b.metrics(metrics);
                }
                Ok(Box::new(Nsga2::new(problem, b.build().map_err(cfg_err)?)))
            }
            AlgoSpec::Island { pop, gens, islands } => {
                let mut b = IslandConfig::builder()
                    .population_size(*pop)
                    .generations(*gens)
                    .islands(*islands);
                if let Some(plan) = plan {
                    b = b.fault_policy(FaultPolicy::tolerant(3)).inject_faults(plan);
                }
                if let Some(metrics) = metrics {
                    b = b.metrics(metrics);
                }
                Ok(Box::new(IslandGa::new(
                    problem,
                    b.build().map_err(cfg_err)?,
                )))
            }
            AlgoSpec::Cellular {
                pop,
                gens,
                topo,
                cells,
                radius,
                interval,
                migrants,
                open,
                aniso,
            } => {
                let topology = topo.build(*cells, *radius, self.seed)?;
                #[allow(clippy::cast_precision_loss)]
                let mut b = CellularConfig::builder()
                    .population_size(*pop)
                    .generations(*gens)
                    .topology(topology)
                    .migration_interval(*interval)
                    .migrants(*migrants)
                    .openness(*open as f64 / 100.0)
                    .anisotropy(*aniso as f64 / 100.0);
                if let Some(cache) = cache {
                    b = b.shared_cache(cache);
                }
                if let Some(plan) = plan {
                    b = b.fault_policy(FaultPolicy::tolerant(3)).inject_faults(plan);
                }
                if let Some(screen) = screen {
                    b = b.surrogate_screen(screen);
                }
                if let Some(metrics) = metrics {
                    b = b.metrics(metrics);
                }
                Ok(Box::new(CellularGa::new(
                    problem,
                    b.build().map_err(cfg_err)?,
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> JobSpec {
        JobSpec::new(
            "demo",
            ProblemSpec::Schaffer,
            AlgoSpec::Sacga {
                pop: 16,
                gens: 10,
                parts: 4,
            },
            42,
        )
    }

    #[test]
    fn canonical_round_trips() {
        let spec = demo()
            .tenant("acme")
            .priority(3)
            .slice(2)
            .stall_window(5)
            .fault_alarm(0.25)
            .inject_nonfinite(0.1);
        let line = spec.canonical();
        let back = JobSpec::parse(&line).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.id(), spec.id());
        assert_eq!(back.canonical(), line);
    }

    #[test]
    fn id_is_stable_and_name_sensitive() {
        let a = demo();
        let mut b = demo();
        assert_eq!(a.id(), b.id());
        b.name = "demo2".into();
        assert_ne!(a.id(), b.id());
        // Pinned: the id derives only from the canonical text.
        assert_eq!(a.id().to_string().len(), 16);
        assert_eq!(JobId::parse(&a.id().to_string()).unwrap(), a.id());
    }

    #[test]
    fn screen_round_trips_and_is_identity_relevant() {
        let plain = JobSpec::new(
            "s",
            ProblemSpec::Drivable,
            AlgoSpec::Sacga {
                pop: 16,
                gens: 4,
                parts: 4,
            },
            7,
        );
        let screened = plain.clone().screen();
        assert_ne!(plain.id(), screened.id(), "screening changes results");
        let back = JobSpec::parse(&screened.canonical()).unwrap();
        assert_eq!(back, screened);
        // Legacy lines without screen= parse as unscreened.
        let legacy = plain.canonical().replace(" screen=0", "");
        assert!(!JobSpec::parse(&legacy).unwrap().screen);
    }

    #[test]
    fn screen_rejected_without_a_surrogate_or_support() {
        let no_surrogate = demo().screen(); // schaffer has no surrogate
        assert!(matches!(
            no_surrogate.validate(),
            Err(ServerError::InvalidSpec(_))
        ));
        let island = JobSpec::new(
            "i",
            ProblemSpec::Drivable,
            AlgoSpec::Island {
                pop: 32,
                gens: 4,
                islands: 2,
            },
            7,
        )
        .screen();
        assert!(matches!(
            island.validate(),
            Err(ServerError::InvalidSpec(_))
        ));
    }

    #[test]
    fn steady_arm_defaults_window_and_quantum() {
        let parsed = AlgoSpec::parse("steady:pop=16,gens=10,parts=4").unwrap();
        assert_eq!(
            parsed,
            AlgoSpec::Steady {
                pop: 16,
                gens: 10,
                parts: 4,
                window: 16,
                quantum: 4,
            }
        );
        // The canonical token always spells the defaults out and
        // round-trips.
        assert_eq!(
            parsed.token(),
            "steady:pop=16,gens=10,parts=4,window=16,quantum=4"
        );
        assert_eq!(AlgoSpec::parse(&parsed.token()).unwrap(), parsed);
        assert!(parsed.supports_shared_cache());
        assert!(parsed.supports_screen());
    }

    #[test]
    fn cellular_arm_defaults_and_round_trips() {
        let parsed = AlgoSpec::parse("cellular:pop=64,gens=12,cells=8").unwrap();
        assert_eq!(
            parsed,
            AlgoSpec::Cellular {
                pop: 64,
                gens: 12,
                topo: CellTopo::Ring,
                cells: 8,
                radius: 1,
                interval: 10,
                migrants: 1,
                open: 0,
                aniso: 50,
            }
        );
        // The canonical token always spells the defaults out and
        // round-trips, with the topology word in a fixed position.
        assert_eq!(
            parsed.token(),
            "cellular:pop=64,gens=12,topo=ring,cells=8,radius=1,\
             interval=10,migrants=1,open=0,aniso=50"
        );
        assert_eq!(AlgoSpec::parse(&parsed.token()).unwrap(), parsed);
        assert!(parsed.supports_shared_cache());
        assert!(parsed.supports_screen());
        // Non-ring families parse; garbage and non-square tori do not.
        let torus =
            AlgoSpec::parse("cellular:pop=64,gens=12,topo=torus,cells=16,interval=4").unwrap();
        assert_eq!(AlgoSpec::parse(&torus.token()).unwrap(), torus);
        assert!(AlgoSpec::parse("cellular:pop=64,gens=12,topo=moebius,cells=8").is_err());
        let bad_torus = AlgoSpec::parse("cellular:pop=60,gens=12,topo=torus,cells=15").unwrap();
        let spec = JobSpec::new("t", ProblemSpec::Schaffer, bad_torus, 7);
        assert!(spec.build_optimizer(None, None).is_err());
    }

    #[test]
    fn tenant_rejected_for_uncached_arms() {
        let spec = JobSpec::new(
            "x",
            ProblemSpec::Schaffer,
            AlgoSpec::Island {
                pop: 32,
                gens: 5,
                islands: 2,
            },
            1,
        )
        .tenant("acme");
        assert!(matches!(spec.validate(), Err(ServerError::InvalidSpec(_))));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JobSpec::parse("submit stuff").is_err());
        assert!(JobSpec::parse("job v1 name=x").is_err()); // missing problem/algo/seed
        assert!(JobSpec::parse(
            "job v1 name=x problem=nope algo=sacga:pop=1,gens=1,parts=1 seed=0"
        )
        .is_err());
        assert!(JobSpec::parse("job v1 name=x problem=schaffer algo=sacga:pop=1 seed=0").is_err());
    }

    #[test]
    fn every_arm_builds_an_optimizer() {
        let arms = [
            AlgoSpec::Sacga {
                pop: 16,
                gens: 4,
                parts: 4,
            },
            AlgoSpec::Local {
                pop: 16,
                gens: 4,
                parts: 4,
            },
            AlgoSpec::Mesacga { pop: 16, span: 12 },
            AlgoSpec::Steady {
                pop: 16,
                gens: 4,
                parts: 4,
                window: 20,
                quantum: 4,
            },
            AlgoSpec::Nsga2 { pop: 16, gens: 4 },
            AlgoSpec::Island {
                pop: 32,
                gens: 4,
                islands: 2,
            },
            AlgoSpec::Cellular {
                pop: 32,
                gens: 4,
                topo: CellTopo::SmallWorld,
                cells: 4,
                radius: 1,
                interval: 2,
                migrants: 1,
                open: 25,
                aniso: 50,
            },
        ];
        for algo in arms {
            let spec = JobSpec::new("t", ProblemSpec::Schaffer, algo.clone(), 7);
            let opt = spec.build_optimizer(None, None).unwrap();
            let outcome = opt.run_dyn(7).unwrap();
            assert!(!outcome.front.is_empty(), "{}", algo.token());
        }
    }

    #[test]
    fn metered_build_is_bit_identical_and_balances() {
        let registry = engine::MetricsRegistry::new();
        let spec = demo();
        let labels = [("job", "demo"), ("arm", spec.algo.arm())];
        let metrics = EngineMetrics::register(&registry, &labels);
        let bare = spec
            .build_optimizer(None, None)
            .unwrap()
            .run_dyn(7)
            .unwrap();
        let metered = spec
            .build_optimizer(None, Some(metrics.clone()))
            .unwrap()
            .run_dyn(7)
            .unwrap();
        assert_eq!(bare.front_objectives(), metered.front_objectives());
        assert_eq!(metrics.candidates.get(), metered.stats.candidates);
        assert_eq!(
            metrics.candidates.get(),
            metrics.evaluations.get() + metrics.cache_hits.get() + metrics.screened.get()
        );
    }
}
