//! Crash-safe per-job persistence.
//!
//! Each job owns one directory under the store root:
//!
//! ```text
//! store/
//!   job_<16-hex-id>/
//!     spec.job        # canonical JobSpec line (written once at submit)
//!     state.job       # status/progress/health, rewritten atomically
//!     checkpoint.txt  # optimizer checkpoint text at the last slice
//!     events.jsonl    # RunEvent stream (appended; torn tails healed)
//!     outcome.cell    # final CellResult text (atomic, terminal only)
//! ```
//!
//! Every rewrite goes through write-to-`.partial`-then-rename, the same
//! discipline the campaign runner uses, so a crash leaves either the old
//! or the new content — never a torn file. `state.job` is nevertheless
//! *parsed defensively*: a torn or missing state file is treated as
//! "in flight" by the rescan logic, because a dead daemon may have been
//! killed before its first state write.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::error::ServerError;
use crate::spec::{JobId, JobSpec};
use campaign::CellResult;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Suspended at a generation boundary (checkpoint on disk).
    Suspended,
    /// Finished; `outcome.cell` holds the result.
    Done,
    /// Aborted with an error.
    Failed,
    /// Cancelled by request.
    Cancelled,
}

impl JobStatus {
    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }

    /// Stable lower-case token.
    pub fn token(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Suspended => "suspended",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "queued" => JobStatus::Queued,
            "running" => JobStatus::Running,
            "suspended" => JobStatus::Suspended,
            "done" => JobStatus::Done,
            "failed" => JobStatus::Failed,
            "cancelled" => JobStatus::Cancelled,
            _ => return None,
        })
    }
}

/// Watchdog-driven health of a job, as exposed by the health endpoint.
///
/// While a job is live the value reflects its watchdogs (fault beats
/// stall); once terminal, the endpoint reports [`JobHealth::Done`] or
/// [`JobHealth::Failed`] regardless of earlier warnings (the warnings
/// stay visible in `state.job` and the status line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobHealth {
    /// No watchdog has fired.
    Healthy,
    /// The stall detector observed a hypervolume/feasibility plateau.
    Stalled,
    /// The fault-rate alarm fired on at least one generation.
    Faulty,
    /// Terminal: completed successfully.
    Done,
    /// Terminal: failed or cancelled.
    Failed,
}

impl JobHealth {
    /// Stable lower-case token.
    pub fn token(self) -> &'static str {
        match self {
            JobHealth::Healthy => "healthy",
            JobHealth::Stalled => "stalled",
            JobHealth::Faulty => "faulty",
            JobHealth::Done => "done",
            JobHealth::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "healthy" => JobHealth::Healthy,
            "stalled" => JobHealth::Stalled,
            "faulty" => JobHealth::Faulty,
            "done" => JobHealth::Done,
            "failed" => JobHealth::Failed,
            _ => return None,
        })
    }
}

/// Persisted progress snapshot of one job (`state.job`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobState {
    /// Lifecycle state.
    pub status: JobStatus,
    /// Generations completed so far.
    pub generations: usize,
    /// Candidate vectors this job submitted (exact per-job accounting,
    /// also under a shared tenant cache). Filled at completion.
    pub candidates: u64,
    /// Model evaluations this job actually paid for.
    pub evaluations: u64,
    /// Candidates answered from the cache on this job's behalf.
    pub cache_hits: u64,
    /// Candidates rejected by the job's surrogate screen (never passed
    /// to the full model). `candidates = evaluations + cache_hits +
    /// screened` always balances.
    pub screened: u64,
    /// Watchdog health (never `Done`/`Failed`; those are derived from
    /// `status` by [`JobState::endpoint_health`]).
    pub health: JobHealth,
    /// Error message for failed jobs.
    pub error: Option<String>,
}

impl JobState {
    /// A fresh queued state.
    pub fn queued() -> Self {
        JobState {
            status: JobStatus::Queued,
            generations: 0,
            candidates: 0,
            evaluations: 0,
            cache_hits: 0,
            screened: 0,
            health: JobHealth::Healthy,
            error: None,
        }
    }

    /// The health value the per-job health endpoint reports: terminal
    /// statuses mask live watchdog health.
    pub fn endpoint_health(&self) -> JobHealth {
        match self.status {
            JobStatus::Done => JobHealth::Done,
            JobStatus::Failed | JobStatus::Cancelled => JobHealth::Failed,
            _ => self.health,
        }
    }

    /// Serializes to the `state.job` text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from("jobstate v1\n");
        out.push_str(&format!("status {}\n", self.status.token()));
        out.push_str(&format!("generations {}\n", self.generations));
        out.push_str(&format!("candidates {}\n", self.candidates));
        out.push_str(&format!("evaluations {}\n", self.evaluations));
        out.push_str(&format!("cache_hits {}\n", self.cache_hits));
        // Written after cache_hits so state files from older daemons
        // (which simply lack the line) still parse with screened = 0.
        out.push_str(&format!("screened {}\n", self.screened));
        out.push_str(&format!("health {}\n", self.health.token()));
        if let Some(err) = &self.error {
            out.push_str(&format!("error {}\n", err.replace('\n', " ")));
        }
        out.push_str("end\n");
        out
    }

    /// Parses the `state.job` text form. The trailing `end` marker makes
    /// torn writes detectable: text without it is rejected.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<JobState, String> {
        let mut lines = text.lines();
        if lines.next() != Some("jobstate v1") {
            return Err("missing 'jobstate v1' header".into());
        }
        let mut state = JobState::queued();
        let mut complete = false;
        for line in lines {
            let (key, value) = match line.split_once(' ') {
                Some(kv) => kv,
                None => (line, ""),
            };
            match key {
                "status" => {
                    state.status =
                        JobStatus::parse(value).ok_or_else(|| format!("bad status {value:?}"))?;
                }
                "generations" => {
                    state.generations = value
                        .parse()
                        .map_err(|_| format!("bad generations {value:?}"))?;
                }
                "candidates" => {
                    state.candidates = value
                        .parse()
                        .map_err(|_| format!("bad candidates {value:?}"))?;
                }
                "evaluations" => {
                    state.evaluations = value
                        .parse()
                        .map_err(|_| format!("bad evaluations {value:?}"))?;
                }
                "cache_hits" => {
                    state.cache_hits = value
                        .parse()
                        .map_err(|_| format!("bad cache_hits {value:?}"))?;
                }
                "screened" => {
                    state.screened = value
                        .parse()
                        .map_err(|_| format!("bad screened {value:?}"))?;
                }
                "health" => {
                    state.health =
                        JobHealth::parse(value).ok_or_else(|| format!("bad health {value:?}"))?;
                }
                "error" => state.error = Some(value.to_string()),
                "end" => {
                    complete = true;
                    break;
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if !complete {
            return Err("truncated state (no 'end' marker)".into());
        }
        Ok(state)
    }
}

/// Atomic write: `<path>.partial` then rename, so readers (and a rescan
/// after a crash) never observe a half-written file.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".partial");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// The on-disk job store (see module docs for the layout).
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
}

impl JobStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<JobStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(JobStore { root })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory owned by `id`.
    pub fn job_dir(&self, id: JobId) -> PathBuf {
        self.root.join(format!("job_{id}"))
    }

    /// Path of the job's event stream.
    pub fn events_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("events.jsonl")
    }

    /// Path of the job's checkpoint text.
    pub fn checkpoint_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("checkpoint.txt")
    }

    /// Path of the job's final result.
    pub fn outcome_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("outcome.cell")
    }

    fn spec_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("spec.job")
    }

    fn state_path(&self, id: JobId) -> PathBuf {
        self.job_dir(id).join("state.job")
    }

    /// Creates the job directory and persists the spec (written once).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn create_job(&self, id: JobId, spec: &JobSpec) -> Result<(), ServerError> {
        fs::create_dir_all(self.job_dir(id))?;
        write_atomic(&self.spec_path(id), &format!("{}\n", spec.canonical()))?;
        Ok(())
    }

    /// Reads a job's spec back.
    ///
    /// # Errors
    ///
    /// [`ServerError::Corrupt`] when missing or unparseable.
    pub fn read_spec(&self, id: JobId) -> Result<JobSpec, ServerError> {
        let path = self.spec_path(id);
        let text = fs::read_to_string(&path).map_err(|e| ServerError::Corrupt {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        JobSpec::parse(text.trim()).map_err(|e| ServerError::Corrupt {
            path,
            detail: e.to_string(),
        })
    }

    /// Atomically persists a state snapshot.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_state(&self, id: JobId, state: &JobState) -> Result<(), ServerError> {
        write_atomic(&self.state_path(id), &state.to_text())?;
        Ok(())
    }

    /// Reads a job's state; `Ok(None)` when the file is missing or torn
    /// (both mean "treat as in flight" to the rescan logic).
    pub fn read_state(&self, id: JobId) -> Option<JobState> {
        let text = fs::read_to_string(self.state_path(id)).ok()?;
        JobState::from_text(&text).ok()
    }

    /// Atomically persists checkpoint text.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_checkpoint(&self, id: JobId, text: &str) -> Result<(), ServerError> {
        write_atomic(&self.checkpoint_path(id), text)?;
        Ok(())
    }

    /// Reads checkpoint text, if any.
    pub fn read_checkpoint(&self, id: JobId) -> Option<String> {
        fs::read_to_string(self.checkpoint_path(id)).ok()
    }

    /// Atomically persists the final result.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_outcome(&self, id: JobId, result: &CellResult) -> Result<(), ServerError> {
        write_atomic(&self.outcome_path(id), &result.to_text())?;
        Ok(())
    }

    /// Reads and parses the final result, if present and intact.
    pub fn read_outcome(&self, id: JobId) -> Option<CellResult> {
        let text = fs::read_to_string(self.outcome_path(id)).ok()?;
        CellResult::from_text(&text).ok()
    }

    /// All job ids with a directory in the store, sorted.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn scan(&self) -> Result<Vec<JobId>, ServerError> {
        let mut ids = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(hex) = name.strip_prefix("job_") {
                if let Ok(id) = JobId::parse(hex) {
                    ids.push(id);
                }
            }
        }
        ids.sort();
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlgoSpec, ProblemSpec};

    fn tmp_store(tag: &str) -> JobStore {
        let dir =
            std::env::temp_dir().join(format!("dse-server-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        JobStore::open(dir).unwrap()
    }

    fn demo_spec() -> JobSpec {
        JobSpec::new(
            "demo",
            ProblemSpec::Schaffer,
            AlgoSpec::Nsga2 { pop: 8, gens: 2 },
            1,
        )
    }

    #[test]
    fn state_round_trips_including_error() {
        let mut state = JobState::queued();
        state.status = JobStatus::Failed;
        state.generations = 7;
        state.candidates = 100;
        state.evaluations = 85;
        state.cache_hits = 10;
        state.screened = 5;
        state.health = JobHealth::Faulty;
        state.error = Some("boom\nsecond line".into());
        let text = state.to_text();
        let back = JobState::from_text(&text).unwrap();
        assert_eq!(back.status, JobStatus::Failed);
        assert_eq!(back.error.as_deref(), Some("boom second line"));
        assert_eq!(back.generations, 7);
        assert_eq!(back.screened, 5);
        assert_eq!(back.health, JobHealth::Faulty);
    }

    #[test]
    fn legacy_state_without_screened_line_parses_with_zero() {
        // Stores written by pre-screening daemons lack the line entirely.
        let legacy = "jobstate v1\nstatus done\ngenerations 6\ncandidates 40\n\
                      evaluations 30\ncache_hits 10\nhealth healthy\nend\n";
        let state = JobState::from_text(legacy).unwrap();
        assert_eq!(state.screened, 0);
        assert_eq!(state.candidates, state.evaluations + state.cache_hits);
    }

    #[test]
    fn torn_state_is_rejected() {
        let full = JobState::queued().to_text();
        let torn = &full[..full.len() - 5]; // chop the 'end' marker
        assert!(JobState::from_text(torn).is_err());
        assert!(JobState::from_text("garbage").is_err());
    }

    #[test]
    fn endpoint_health_masks_terminal_statuses() {
        let mut s = JobState::queued();
        s.health = JobHealth::Stalled;
        assert_eq!(s.endpoint_health(), JobHealth::Stalled);
        s.status = JobStatus::Done;
        assert_eq!(s.endpoint_health(), JobHealth::Done);
        s.status = JobStatus::Cancelled;
        assert_eq!(s.endpoint_health(), JobHealth::Failed);
    }

    #[test]
    fn store_round_trips_spec_state_and_scan() {
        let store = tmp_store("roundtrip");
        let spec = demo_spec();
        let id = spec.id();
        store.create_job(id, &spec).unwrap();
        store.write_state(id, &JobState::queued()).unwrap();
        assert_eq!(store.read_spec(id).unwrap(), spec);
        assert_eq!(store.read_state(id).unwrap(), JobState::queued());
        assert_eq!(store.scan().unwrap(), vec![id]);
        assert!(store.read_checkpoint(id).is_none());
        assert!(store.read_outcome(id).is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn torn_state_file_reads_as_in_flight() {
        let store = tmp_store("torn");
        let spec = demo_spec();
        let id = spec.id();
        store.create_job(id, &spec).unwrap();
        fs::write(
            store.job_dir(id).join("state.job"),
            "jobstate v1\nstatus runn",
        )
        .unwrap();
        assert!(store.read_state(id).is_none());
        let _ = fs::remove_dir_all(store.root());
    }
}
