//! The in-process optimization service: a bounded priority queue of
//! [`JobSpec`]s executed by a worker pool (built on [`engine::pool`])
//! through the object-safe [`DynOptimizer`](sacga::telemetry::DynOptimizer) API, with per-tenant shared
//! evaluation caches, crash-safe persistence ([`JobStore`]), streaming
//! progress ([`ProgressHub`]) and per-job watchdog health.
//!
//! # Execution model
//!
//! A worker pops the highest-priority job and runs it in *slices* of
//! `spec.slice` generations. At each slice boundary the job's
//! checkpoint and state are persisted atomically; if other jobs are
//! waiting the job re-enters the queue (cooperative preemption),
//! otherwise it continues inline. Algorithms that cannot checkpoint
//! (NSGA-II, island) always run to completion in one slice.
//!
//! # Crash safety
//!
//! [`Server::open`] rescans the store: terminal jobs are left alone;
//! anything else — including a job whose `state.job` is torn because
//! the previous daemon died mid-write — is re-enqueued. The event
//! stream is trimmed back to the persisted checkpoint's generation so
//! a resumed run appends exactly the events the killed run would have
//! produced, and the final front is bit-identical to an uninterrupted
//! run of the same spec.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::BufWriter;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::ServerError;
use crate::hub::ProgressHub;
use crate::queue::{JobQueue, PopMode};
use crate::spec::{JobId, JobSpec};
use crate::store::{JobHealth, JobState, JobStatus, JobStore};
use campaign::CellResult;
use engine::{
    CacheConfig, Counter, EngineMetrics, Gauge, Histogram, MetricsRegistry, SharedCache, StageNanos,
};
use moea::{Evaluation, RunOutcome};
use sacga::telemetry::{
    DynRunStatus, EventKind, FaultRateAlarm, JsonlSink, RegistrySink, Sink, StallDetector,
};
use sacga::RunEvent;

/// Reference point used for the stall detector's hypervolume when a job
/// enables `stall=`; generous enough to dominate every benchmark front
/// in this workspace. The `dse_run_hypervolume` gauge uses the same
/// point, so the scraped trajectory matches what the detector sees.
const STALL_REF: f64 = 1e3;

/// Event lines each job's flight recorder retains (a deliberately small
/// tail — the full stream lives in `events.jsonl` and the hub).
pub const FLIGHT_CAPACITY: usize = 256;

/// Tuning of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs accepted from clients.
    pub queue_capacity: usize,
    /// Template for per-tenant shared evaluation caches.
    pub cache: CacheConfig,
}

impl ServerConfig {
    /// Defaults: 2 workers, 64 queued jobs, 64Ki-entry tenant caches.
    pub fn new() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            cache: CacheConfig::with_capacity(1 << 16),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time snapshot of one job, as reported by status/list.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Job identifier.
    pub id: JobId,
    /// Human-chosen name from the spec.
    pub name: String,
    /// Lifecycle state.
    pub status: JobStatus,
    /// Endpoint health (terminal statuses mask watchdog health).
    pub health: JobHealth,
    /// Generations completed.
    pub generations: usize,
    /// Candidates submitted by this job (exact per-job attribution,
    /// also under a shared tenant cache).
    pub candidates: u64,
    /// Evaluations this job paid for.
    pub evaluations: u64,
    /// Candidates answered from the cache for this job.
    pub cache_hits: u64,
    /// Candidates rejected by the job's surrogate screen, never passed
    /// to the full model (`candidates = evaluations + cache_hits +
    /// screened`).
    pub screened: u64,
    /// Error message for failed jobs.
    pub error: Option<String>,
}

/// Process-level service metrics, registered once per server in the
/// shared registry (label-free: per-job series carry the labels).
struct ServerMetrics {
    jobs_submitted: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    preemptions: Counter,
    slices: Histogram,
    queue_depth: Gauge,
    jobs_running: Gauge,
}

impl ServerMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        ServerMetrics {
            jobs_submitted: registry.counter("dse_server_jobs_submitted_total", &[]),
            jobs_completed: registry.counter("dse_server_jobs_completed_total", &[]),
            jobs_failed: registry.counter("dse_server_jobs_failed_total", &[]),
            preemptions: registry.counter("dse_server_preemptions_total", &[]),
            slices: registry.histogram(
                "dse_server_slice_seconds",
                &[],
                &engine::metrics::latency_buckets(),
            ),
            queue_depth: registry.gauge("dse_server_queue_depth", &[]),
            jobs_running: registry.gauge("dse_server_jobs_running", &[]),
        }
    }
}

/// Decrements the running-jobs count however its scope exits.
struct RunningGuard<'a>(&'a AtomicUsize);

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One job's flight recorder: a bounded tail of its most recent event
/// lines plus cumulative per-stage nanoseconds, kept in memory for the
/// `debug` endpoint (post-incident triage without replaying the full
/// `events.jsonl`).
#[derive(Debug, Default)]
struct FlightRecorder {
    lines: VecDeque<String>,
    dropped: u64,
    stages: StageNanos,
    timed_generations: u64,
}

impl FlightRecorder {
    fn record(&mut self, event: &RunEvent, line: &str) {
        if self.lines.len() == FLIGHT_CAPACITY {
            self.lines.pop_front();
            self.dropped += 1;
        }
        self.lines.push_back(line.to_string());
        if let RunEvent::StageTiming { stages, .. } = event {
            self.stages.merge(stages);
            self.timed_generations += 1;
        }
    }
}

/// A point-in-time copy of one job's flight recorder, as served by the
/// `debug` protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightReport {
    /// Event lines currently retained (at most [`FLIGHT_CAPACITY`]).
    pub lines: Vec<String>,
    /// Older lines the recorder ring overwrote.
    pub dropped: u64,
    /// Lines the job's progress hub ring overwrote (see
    /// [`ProgressHub::dropped`]).
    pub hub_dropped: u64,
    /// Cumulative per-stage nanoseconds across all recorded
    /// `StageTiming` events.
    pub stages: StageNanos,
    /// Generations that contributed a `StageTiming` breakdown.
    pub timed_generations: u64,
}

/// The live watchdogs of one job; they survive suspension and requeues
/// so windowed detectors keep their history across slices.
struct WatchdogSet {
    stall: Option<StallDetector>,
    faults: Option<FaultRateAlarm>,
}

impl WatchdogSet {
    fn build(spec: &JobSpec) -> Self {
        let nobj = spec.problem.build().num_objectives();
        WatchdogSet {
            stall: (spec.stall_window > 0)
                .then(|| StallDetector::new(vec![STALL_REF; nobj], spec.stall_window)),
            faults: spec.fault_alarm.map(FaultRateAlarm::new),
        }
    }

    fn replay(&mut self, events: &[RunEvent]) {
        for event in events {
            self.record(event);
        }
    }

    fn record(&mut self, event: &RunEvent) {
        if let Some(stall) = self.stall.as_mut() {
            stall.record(event);
        }
        if let Some(faults) = self.faults.as_mut() {
            faults.record(event);
        }
    }

    /// Fault warnings outrank stall warnings; warnings only accumulate,
    /// so a job that ever stalled stays marked until it terminates.
    fn health(&self) -> JobHealth {
        let faulty = self
            .faults
            .as_ref()
            .is_some_and(|w| !w.warnings().is_empty());
        let stalled = self
            .stall
            .as_ref()
            .is_some_and(|w| !w.warnings().is_empty());
        if faulty {
            JobHealth::Faulty
        } else if stalled {
            JobHealth::Stalled
        } else {
            JobHealth::Healthy
        }
    }
}

/// Per-slice composite sink: disk JSONL + progress hub + watchdogs +
/// flight recorder + registry bridge.
struct SegmentSink<'a> {
    jsonl: &'a mut JsonlSink<BufWriter<fs::File>>,
    hub: &'a ProgressHub,
    watch: &'a mut WatchdogSet,
    flight: &'a Mutex<FlightRecorder>,
    run_metrics: &'a mut RegistrySink,
}

impl Sink for SegmentSink<'_> {
    fn record(&mut self, event: &RunEvent) {
        self.jsonl.record(event);
        let line = event.to_json();
        self.flight.lock().unwrap().record(event, &line);
        self.hub.publish(line);
        self.watch.record(event);
        self.run_metrics.record(event);
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.jsonl.flush()
    }
}

/// In-memory companion of one job.
struct JobRuntime {
    spec: JobSpec,
    hub: ProgressHub,
    cancel: AtomicBool,
    state: Mutex<JobState>,
    watch: Mutex<Option<WatchdogSet>>,
    flight: Mutex<FlightRecorder>,
}

impl JobRuntime {
    fn new(spec: JobSpec, state: JobState) -> Self {
        JobRuntime {
            spec,
            hub: ProgressHub::new(),
            cancel: AtomicBool::new(false),
            state: Mutex::new(state),
            watch: Mutex::new(None),
            flight: Mutex::new(FlightRecorder::default()),
        }
    }
}

/// Scrapes the completed-generation count out of checkpoint text (both
/// SACGA and MESACGA checkpoints embed an engine-state `gen <n>` line).
fn checkpoint_generation(text: &str) -> Option<usize> {
    text.lines()
        .find_map(|line| line.strip_prefix("gen "))
        .and_then(|v| v.parse().ok())
}

/// The optimization service (see module docs).
pub struct Server {
    config: ServerConfig,
    store: JobStore,
    queue: JobQueue,
    jobs: Mutex<HashMap<JobId, Arc<JobRuntime>>>,
    tenants: Mutex<HashMap<String, SharedCache<Evaluation>>>,
    shutdown: AtomicBool,
    registry: MetricsRegistry,
    metrics: ServerMetrics,
    running: AtomicUsize,
}

impl Server {
    /// Opens a server over `store_root`, rescanning any persisted jobs:
    /// terminal jobs are registered as-is, everything else is
    /// re-enqueued to resume from its last checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn open(
        store_root: impl Into<std::path::PathBuf>,
        config: ServerConfig,
    ) -> Result<Server, ServerError> {
        let store = JobStore::open(store_root)?;
        let registry = MetricsRegistry::new();
        let metrics = ServerMetrics::register(&registry);
        let server = Server {
            queue: JobQueue::new(config.queue_capacity),
            config,
            store,
            jobs: Mutex::new(HashMap::new()),
            tenants: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            registry,
            metrics,
            running: AtomicUsize::new(0),
        };
        for id in server.store.scan()? {
            server.rescan_job(id)?;
        }
        Ok(server)
    }

    fn rescan_job(&self, id: JobId) -> Result<(), ServerError> {
        let spec = match self.store.read_spec(id) {
            Ok(spec) => spec,
            // A directory without a readable spec was never fully
            // submitted; leave it for manual inspection.
            Err(_) => return Ok(()),
        };
        let state = self.store.read_state(id);
        match state {
            Some(state) if state.status.is_terminal() => {
                let rt = Arc::new(JobRuntime::new(spec, state));
                // Make the historical stream replayable for subscribers.
                if let Ok(text) = fs::read_to_string(self.store.events_path(id)) {
                    for event in RunEvent::parse_jsonl_lossy(&text).events {
                        rt.hub.publish(event.to_json());
                    }
                }
                rt.hub.finish();
                self.jobs.lock().unwrap().insert(id, rt);
            }
            other => {
                // Queued, running, suspended, or a torn/missing state
                // file: the job is in flight and must be resumed. Trim
                // the event stream back to the checkpoint so the resumed
                // run appends without duplicating generations.
                let generations = self
                    .store
                    .read_checkpoint(id)
                    .as_deref()
                    .and_then(checkpoint_generation)
                    .unwrap_or(0);
                let rt = Arc::new(JobRuntime::new(
                    spec.clone(),
                    JobState {
                        status: JobStatus::Queued,
                        generations,
                        ..other.unwrap_or_else(JobState::queued)
                    },
                ));
                self.trim_events(id, generations, &rt.hub)?;
                self.store.write_state(id, &rt.state.lock().unwrap())?;
                self.jobs.lock().unwrap().insert(id, rt);
                self.queue.requeue(id, spec.priority);
            }
        }
        Ok(())
    }

    /// Rewrites `events.jsonl` keeping only the prefix up to (and
    /// including) the `generations`-th `GenerationEnd`, dropping events
    /// a killed daemon emitted past its last persisted checkpoint, and
    /// replays the kept events into the hub.
    fn trim_events(
        &self,
        id: JobId,
        generations: usize,
        hub: &ProgressHub,
    ) -> Result<(), ServerError> {
        let path = self.store.events_path(id);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => return Ok(()), // no stream yet
        };
        if generations == 0 {
            fs::remove_file(&path)?;
            return Ok(());
        }
        let replay = RunEvent::parse_jsonl_lossy(&text);
        let mut kept = Vec::new();
        let mut ends = 0usize;
        for event in replay.events {
            let is_end = event.kind() == EventKind::GenerationEnd;
            kept.push(event);
            if is_end {
                ends += 1;
                if ends == generations {
                    break;
                }
            }
        }
        let mut sink = JsonlSink::create(&path)?;
        for event in &kept {
            sink.record(event);
            hub.publish(event.to_json());
        }
        sink.flush()?;
        Ok(())
    }

    /// The store this server persists into.
    pub fn store(&self) -> &JobStore {
        &self.store
    }

    /// Submits a job; returns its deterministic id.
    ///
    /// # Errors
    ///
    /// [`ServerError::InvalidSpec`] on validation failure,
    /// [`ServerError::DuplicateJob`] when the identical canonical spec
    /// was already submitted, [`ServerError::QueueFull`] /
    /// [`ServerError::ShuttingDown`] from the queue, and I/O errors
    /// from persistence.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServerError> {
        spec.validate()?;
        if self.shutdown.load(Ordering::SeqCst) {
            return Err(ServerError::ShuttingDown);
        }
        let id = spec.id();
        {
            let mut jobs = self.jobs.lock().unwrap();
            if jobs.contains_key(&id) {
                return Err(ServerError::DuplicateJob(id));
            }
            self.store.create_job(id, &spec)?;
            self.store.write_state(id, &JobState::queued())?;
            jobs.insert(
                id,
                Arc::new(JobRuntime::new(spec.clone(), JobState::queued())),
            );
        }
        if let Err(e) = self.queue.push(id, spec.priority) {
            self.fail_job(id, &format!("not enqueued: {e}"));
            return Err(e);
        }
        self.metrics.jobs_submitted.inc();
        Ok(id)
    }

    fn runtime(&self, id: JobId) -> Result<Arc<JobRuntime>, ServerError> {
        self.jobs
            .lock()
            .unwrap()
            .get(&id)
            .cloned()
            .ok_or_else(|| ServerError::UnknownJob(id.to_string()))
    }

    fn view_of(&self, id: JobId, rt: &JobRuntime) -> JobView {
        let state = rt.state.lock().unwrap().clone();
        JobView {
            id,
            name: rt.spec.name.clone(),
            status: state.status,
            health: state.endpoint_health(),
            generations: state.generations,
            candidates: state.candidates,
            evaluations: state.evaluations,
            cache_hits: state.cache_hits,
            screened: state.screened,
            error: state.error,
        }
    }

    /// Snapshot of one job.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for ids never submitted here.
    pub fn status(&self, id: JobId) -> Result<JobView, ServerError> {
        let rt = self.runtime(id)?;
        Ok(self.view_of(id, &rt))
    }

    /// The per-job health endpoint.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for ids never submitted here.
    pub fn health(&self, id: JobId) -> Result<JobHealth, ServerError> {
        Ok(self.status(id)?.health)
    }

    /// Snapshots of every known job, sorted by id.
    pub fn list(&self) -> Vec<JobView> {
        let jobs = self.jobs.lock().unwrap();
        let mut views: Vec<JobView> = jobs.iter().map(|(id, rt)| self.view_of(*id, rt)).collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// Requests cancellation; takes effect at the job's next slice
    /// boundary (or dequeue).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for ids never submitted here.
    pub fn cancel(&self, id: JobId) -> Result<(), ServerError> {
        let rt = self.runtime(id)?;
        rt.cancel.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Polls a job's progress stream (see [`ProgressHub::poll`]).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for ids never submitted here.
    pub fn poll_progress(
        &self,
        id: JobId,
        cursor: u64,
        timeout: Duration,
    ) -> Result<crate::hub::HubPoll, ServerError> {
        Ok(self.runtime(id)?.hub.poll(cursor, timeout))
    }

    /// The process-wide metrics registry every job records into.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Pulls the scrape-time gauges (queue depth, running jobs, per-job
    /// hub drops) up to date; counters and histograms are maintained on
    /// the hot paths and need no refresh.
    fn refresh_gauges(&self) {
        #[allow(clippy::cast_precision_loss)]
        self.metrics.queue_depth.set(self.queue.len() as f64);
        #[allow(clippy::cast_precision_loss)]
        self.metrics
            .jobs_running
            .set(self.running.load(Ordering::SeqCst) as f64);
        let jobs = self.jobs.lock().unwrap();
        for (id, rt) in jobs.iter() {
            let job = id.to_string();
            let tenant = rt.spec.tenant.as_deref().unwrap_or("none");
            #[allow(clippy::cast_precision_loss)]
            self.registry
                .gauge(
                    "dse_hub_dropped_lines",
                    &[("tenant", tenant), ("job", job.as_str())],
                )
                .set(rt.hub.dropped() as f64);
        }
    }

    /// A live snapshot in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.refresh_gauges();
        self.registry.render_text()
    }

    /// The same snapshot as one canonical JSON line.
    pub fn metrics_json(&self) -> String {
        self.refresh_gauges();
        self.registry.render_json()
    }

    /// A copy of one job's flight recorder (see [`FlightReport`]).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownJob`] for ids never submitted here.
    pub fn debug_report(&self, id: JobId) -> Result<FlightReport, ServerError> {
        let rt = self.runtime(id)?;
        let flight = rt.flight.lock().unwrap();
        Ok(FlightReport {
            lines: flight.lines.iter().cloned().collect(),
            dropped: flight.dropped,
            hub_dropped: rt.hub.dropped(),
            stages: flight.stages,
            timed_generations: flight.timed_generations,
        })
    }

    /// Whether a shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: stops accepting work, wakes blocked workers,
    /// and makes running jobs suspend at their next slice boundary.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Runs the worker pool until every queued job is terminal.
    ///
    /// # Errors
    ///
    /// Propagates worker-pool failures.
    pub fn run_until_idle(&self) -> Result<(), ServerError> {
        self.run_workers(PopMode::Drain, None).map(|_| ())
    }

    /// Runs the worker pool, stopping abruptly (like a `kill -9`) after
    /// `budget` generation slices have been *started* across all jobs.
    /// Returns `true` when the queue drained within the budget.
    ///
    /// In-flight jobs are left exactly as their last slice persisted
    /// them; reopening the store resumes them bit-identically.
    ///
    /// # Errors
    ///
    /// Propagates worker-pool failures.
    pub fn run_slices_at_most(&self, budget: usize) -> Result<bool, ServerError> {
        self.run_workers(PopMode::Drain, Some(budget))
    }

    fn run_workers(&self, mode: PopMode, budget: Option<usize>) -> Result<bool, ServerError> {
        let spent = AtomicUsize::new(0);
        let halt = AtomicBool::new(false);
        let pool = engine::PoolMetrics::register(&self.registry, &[("stage", "serve")]);
        engine::pool::try_map_indexed_metered(
            self.config.workers,
            self.config.workers,
            Some(&pool),
            |_w| {
                while let Some(id) = self.queue.pop(mode, &halt) {
                    self.run_one(id, budget, &spent, &halt);
                }
                Ok::<(), ServerError>(())
            },
        )?;
        Ok(!halt.load(Ordering::SeqCst))
    }

    /// Serves the line protocol on `listener` until a client sends
    /// `shutdown` (or [`Server::request_shutdown`] is called).
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn serve(&self, listener: TcpListener) -> Result<(), ServerError> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| -> Result<(), ServerError> {
            let workers = scope.spawn(|| self.run_workers(PopMode::Wait, None));
            loop {
                if self.is_shutting_down() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _addr)) => {
                        scope.spawn(move || crate::protocol::handle_connection(self, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => return Err(ServerError::Io(e)),
                }
            }
            self.queue.close();
            workers.join().expect("worker pool panicked")?;
            Ok(())
        })
    }

    fn tenant_cache(&self, tenant: &str) -> SharedCache<Evaluation> {
        self.tenants
            .lock()
            .unwrap()
            .entry(tenant.to_string())
            .or_insert_with(|| SharedCache::new(self.config.cache.clone()))
            .clone()
    }

    fn update_state(&self, id: JobId, rt: &JobRuntime, f: impl FnOnce(&mut JobState)) {
        let mut state = rt.state.lock().unwrap();
        f(&mut state);
        // Persistence is best-effort here: a full disk must not take the
        // whole pool down, and the next successful write supersedes.
        let _ = self.store.write_state(id, &state);
    }

    fn fail_job(&self, id: JobId, message: &str) {
        if let Ok(rt) = self.runtime(id) {
            self.update_state(id, &rt, |s| {
                s.status = JobStatus::Failed;
                s.error = Some(message.to_string());
            });
            rt.hub.finish();
            self.metrics.jobs_failed.inc();
        }
    }

    /// Executes one popped job until it completes, fails, is cancelled,
    /// yields to a contended queue, or the slice budget kills the pool.
    /// Always balances the pop with [`JobQueue::task_done`].
    fn run_one(&self, id: JobId, budget: Option<usize>, spent: &AtomicUsize, halt: &AtomicBool) {
        let rt = match self.runtime(id) {
            Ok(rt) => rt,
            Err(_) => {
                self.queue.task_done();
                return;
            }
        };
        if rt.cancel.load(Ordering::SeqCst) {
            self.update_state(id, &rt, |s| s.status = JobStatus::Cancelled);
            rt.hub.finish();
            self.queue.task_done();
            return;
        }
        let spec = rt.spec.clone();
        let cache = spec.tenant.as_deref().map(|t| self.tenant_cache(t));
        // Per-job labeled series in the shared registry. Registration is
        // idempotent, so a requeued job keeps accumulating into the same
        // handles.
        let job_label = id.to_string();
        let labels = [
            ("tenant", spec.tenant.as_deref().unwrap_or("none")),
            ("job", job_label.as_str()),
            ("arm", spec.algo.arm()),
        ];
        let engine_metrics = EngineMetrics::register(&self.registry, &labels);
        let nobj = spec.problem.build().num_objectives();
        let mut run_metrics = RegistrySink::register(&self.registry, &labels).with_hypervolume(
            &self.registry,
            &labels,
            vec![STALL_REF; nobj],
        );
        let opt = match spec.build_optimizer(cache, Some(engine_metrics)) {
            Ok(opt) => opt,
            Err(e) => {
                self.fail_job(id, &e.to_string());
                self.queue.task_done();
                return;
            }
        };
        self.running.fetch_add(1, Ordering::SeqCst);
        let _running = RunningGuard(&self.running);
        // Watchdogs persist across requeues in memory; after a daemon
        // restart they are rebuilt by replaying the (trimmed) stream.
        let mut watch = rt.watch.lock().unwrap().take().unwrap_or_else(|| {
            let mut fresh = WatchdogSet::build(&spec);
            if let Ok(text) = fs::read_to_string(self.store.events_path(id)) {
                fresh.replay(&RunEvent::parse_jsonl_lossy(&text).events);
            }
            fresh
        });
        let mut jsonl = match JsonlSink::append(self.store.events_path(id)) {
            Ok(sink) => sink,
            Err(e) => {
                self.fail_job(id, &format!("cannot open event stream: {e}"));
                self.queue.task_done();
                return;
            }
        };
        self.update_state(id, &rt, |s| s.status = JobStatus::Running);
        let quantum = if spec.slice == 0 {
            usize::MAX
        } else {
            spec.slice
        };
        let mut checkpoint_text = self.store.read_checkpoint(id);
        let mut done_gens = rt.state.lock().unwrap().generations;
        loop {
            if let Some(limit) = budget {
                if spent.fetch_add(1, Ordering::SeqCst) >= limit {
                    // Simulated kill: stop the pool without persisting
                    // anything beyond the last slice boundary.
                    halt.store(true, Ordering::SeqCst);
                    self.queue.interrupt();
                    *rt.watch.lock().unwrap() = Some(watch);
                    self.queue.task_done();
                    return;
                }
            }
            let target = done_gens.saturating_add(quantum);
            let mut sink = SegmentSink {
                jsonl: &mut jsonl,
                hub: &rt.hub,
                watch: &mut watch,
                flight: &rt.flight,
                run_metrics: &mut run_metrics,
            };
            let slice_start = Instant::now();
            let status = match &checkpoint_text {
                Some(text) => opt.resume_until_dyn_with(text, target, &mut sink),
                None => opt.run_until_dyn_with(spec.seed, target, &mut sink),
            };
            self.metrics.slices.observe_duration(slice_start.elapsed());
            match status {
                Err(e) => {
                    let _ = jsonl.flush();
                    let health = watch.health();
                    *rt.watch.lock().unwrap() = Some(watch);
                    self.update_state(id, &rt, |s| {
                        s.status = JobStatus::Failed;
                        s.health = health;
                        s.error = Some(e.to_string());
                    });
                    rt.hub.finish();
                    self.queue.task_done();
                    return;
                }
                Ok(DynRunStatus::Complete(outcome)) => {
                    let _ = jsonl.flush();
                    self.complete_job(id, &rt, &spec, &outcome, &watch);
                    *rt.watch.lock().unwrap() = Some(watch);
                    self.queue.task_done();
                    return;
                }
                Ok(DynRunStatus::Suspended {
                    checkpoint,
                    generations,
                }) => {
                    let _ = jsonl.flush();
                    if let Err(e) = self.store.write_checkpoint(id, &checkpoint) {
                        self.fail_job(id, &format!("cannot persist checkpoint: {e}"));
                        *rt.watch.lock().unwrap() = Some(watch);
                        self.queue.task_done();
                        return;
                    }
                    done_gens = generations;
                    let health = watch.health();
                    self.update_state(id, &rt, |s| {
                        s.status = JobStatus::Suspended;
                        s.generations = generations;
                        s.health = health;
                    });
                    if rt.cancel.load(Ordering::SeqCst) {
                        self.update_state(id, &rt, |s| s.status = JobStatus::Cancelled);
                        rt.hub.finish();
                        *rt.watch.lock().unwrap() = Some(watch);
                        self.queue.task_done();
                        return;
                    }
                    if self.is_shutting_down() {
                        // Graceful: leave suspended; resumes next boot.
                        *rt.watch.lock().unwrap() = Some(watch);
                        self.queue.task_done();
                        return;
                    }
                    if self.queue.contended() {
                        // Cooperative preemption: yield the worker.
                        self.metrics.preemptions.inc();
                        self.update_state(id, &rt, |s| s.status = JobStatus::Queued);
                        *rt.watch.lock().unwrap() = Some(watch);
                        self.queue.requeue(id, spec.priority);
                        self.queue.task_done();
                        return;
                    }
                    checkpoint_text = Some(checkpoint);
                }
            }
        }
    }

    fn complete_job(
        &self,
        id: JobId,
        rt: &JobRuntime,
        spec: &JobSpec,
        outcome: &RunOutcome,
        watch: &WatchdogSet,
    ) {
        let result = CellResult::from_outcome(spec.algo.token(), spec.seed, outcome);
        if let Err(e) = self.store.write_outcome(id, &result) {
            self.fail_job(id, &format!("cannot persist outcome: {e}"));
            return;
        }
        let health = watch.health();
        self.update_state(id, rt, |s| {
            s.status = JobStatus::Done;
            s.generations = outcome.generations;
            s.candidates = outcome.stats.candidates;
            s.evaluations = outcome.stats.evaluations;
            s.cache_hits = outcome.stats.cache_hits;
            s.screened = outcome.stats.screened;
            s.health = health;
        });
        rt.hub.finish();
        self.metrics.jobs_completed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AlgoSpec, ProblemSpec};

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dse-server-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_spec(name: &str) -> JobSpec {
        JobSpec::new(
            name,
            ProblemSpec::Schaffer,
            AlgoSpec::Sacga {
                pop: 16,
                gens: 6,
                parts: 4,
            },
            42,
        )
    }

    #[test]
    fn submit_run_and_report() {
        let root = tmp_root("basic");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let id = server.submit(quick_spec("basic")).unwrap();
        assert!(matches!(
            server.submit(quick_spec("basic")),
            Err(ServerError::DuplicateJob(_))
        ));
        server.run_until_idle().unwrap();
        let view = server.status(id).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(view.health, JobHealth::Done);
        assert_eq!(view.generations, 6);
        assert!(view.candidates > 0);
        assert_eq!(
            view.candidates,
            view.evaluations + view.cache_hits + view.screened
        );
        assert!(server.store().read_outcome(id).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn cancelled_before_running_never_executes() {
        let root = tmp_root("cancel");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let id = server.submit(quick_spec("cancel")).unwrap();
        server.cancel(id).unwrap();
        server.run_until_idle().unwrap();
        let view = server.status(id).unwrap();
        assert_eq!(view.status, JobStatus::Cancelled);
        assert_eq!(view.health, JobHealth::Failed);
        assert!(server.store().read_outcome(id).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn streaming_sees_generation_events() {
        let root = tmp_root("stream");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let id = server.submit(quick_spec("stream")).unwrap();
        server.run_until_idle().unwrap();
        let poll = server.poll_progress(id, 0, Duration::ZERO).unwrap();
        assert!(poll.done);
        let replay = RunEvent::parse_jsonl_lossy(&poll.lines.join("\n"));
        let ends = replay
            .events
            .iter()
            .filter(|e| e.kind() == EventKind::GenerationEnd)
            .count();
        assert_eq!(ends, 6);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scrape_balances_and_is_monotone() {
        let root = tmp_root("scrape");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let spec = quick_spec("scrape").tenant("acme");
        let id = server.submit(spec).unwrap();
        server.run_until_idle().unwrap();
        let text = server.metrics_text();
        let sample = |name: &str| -> u64 {
            text.lines()
                .find(|l| l.starts_with(name))
                .unwrap_or_else(|| panic!("{name} missing from scrape:\n{text}"))
                .rsplit(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let labels = format!("{{arm=\"sacga\",job=\"{id}\",tenant=\"acme\"}}");
        let candidates = sample(&format!("dse_engine_candidates_total{labels}"));
        let evaluations = sample(&format!("dse_engine_evaluations_total{labels}"));
        let cache_hits = sample(&format!("dse_engine_cache_hits_total{labels}"));
        let screened = sample(&format!("dse_engine_screened_total{labels}"));
        assert!(candidates > 0);
        assert_eq!(candidates, evaluations + cache_hits + screened);
        let view = server.status(id).unwrap();
        assert_eq!(candidates, view.candidates);
        assert_eq!(sample(&format!("dse_run_generations_total{labels}")), 6);
        assert_eq!(
            sample(&format!("dse_engine_eval_latency_seconds_count{labels}")),
            evaluations
        );
        assert!(text.contains("dse_run_hypervolume"));
        assert!(text.contains("dse_server_jobs_submitted_total 1"));
        assert!(text.contains("dse_server_jobs_completed_total 1"));
        assert!(text.contains(&format!(
            "dse_hub_dropped_lines{{job=\"{id}\",tenant=\"acme\"}} 0"
        )));
        // A second scrape with no new work is byte-identical (counters
        // monotone, gauges unchanged).
        assert_eq!(server.metrics_text(), text);
        // JSON snapshot is one line over the same series.
        let json = server.metrics_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(!json.contains('\n'));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn flight_recorder_keeps_the_event_tail() {
        let root = tmp_root("flight");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let id = server.submit(quick_spec("flight")).unwrap();
        server.run_until_idle().unwrap();
        let report = server.debug_report(id).unwrap();
        assert!(!report.lines.is_empty());
        assert!(report.lines.len() <= FLIGHT_CAPACITY);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.hub_dropped, 0);
        // Every retained line is a replayable event.
        let replay = RunEvent::parse_jsonl_lossy(&report.lines.join("\n"));
        assert_eq!(replay.events.len(), report.lines.len());
        assert!(server
            .debug_report(JobId::parse("00000000deadbeef").unwrap())
            .is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_job_is_an_error() {
        let root = tmp_root("unknown");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let id = JobId::parse("00000000deadbeef").unwrap();
        assert!(matches!(server.status(id), Err(ServerError::UnknownJob(_))));
        let _ = fs::remove_dir_all(&root);
    }
}
