#![warn(missing_docs)]
//! # dse-server — optimization as a service
//!
//! A dependency-free, in-process service that runs the workspace's five
//! optimizer loops (NSGA-II, local, SACGA, MESACGA, island) as queued
//! *jobs* with crash-safe persistence, streaming progress and per-job
//! health, exposed over a line-oriented TCP protocol by the `dse_serve`
//! bench binary.
//!
//! * [`spec`] — [`JobSpec`]/[`JobId`]: problem + algorithm arm + seed +
//!   service policy, round-tripping through one canonical text line
//!   whose FNV-1a hash is the job's identity;
//! * [`queue`] — the bounded priority [`JobQueue`] feeding the worker
//!   pool (built on `engine::pool`), with FIFO round-robin among equal
//!   priorities so preempted jobs re-enter fairly;
//! * [`store`] — the crash-safe [`JobStore`]: per-job directories of
//!   atomically-rewritten spec/state/checkpoint files plus an
//!   append-healed `events.jsonl`, so a killed daemon restarts, rescans
//!   and resumes every in-flight job bit-identically;
//! * [`hub`] — the per-job [`ProgressHub`] ring that late subscribers
//!   replay and live subscribers follow;
//! * [`server`] — the [`Server`] tying it together: cooperative
//!   preemption at generation-slice boundaries, per-tenant
//!   [`SharedCache`](engine::SharedCache) pools with exact per-job hit
//!   attribution, and watchdog-driven health
//!   (`healthy`/`stalled`/`faulty`/`done`/`failed`);
//! * [`protocol`] — the text protocol
//!   (`submit`/`status`/`health`/`list`/`stream`/`cancel`/`shutdown`).
//!
//! ## Example
//!
//! ```
//! use dse_server::{AlgoSpec, JobSpec, ProblemSpec, Server, ServerConfig};
//!
//! # fn main() -> Result<(), dse_server::ServerError> {
//! let root = std::env::temp_dir().join(format!("dse-server-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&root);
//! let server = Server::open(&root, ServerConfig::new())?;
//! let spec = JobSpec::new(
//!     "doc",
//!     ProblemSpec::Schaffer,
//!     AlgoSpec::Sacga { pop: 16, gens: 6, parts: 4 },
//!     42,
//! )
//! .slice(2); // suspend/resume every 2 generations
//! let id = server.submit(spec)?;
//! server.run_until_idle()?;
//! let view = server.status(id)?;
//! assert_eq!(view.generations, 6);
//! assert!(server.store().read_outcome(id).is_some());
//! # let _ = std::fs::remove_dir_all(&root);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod hub;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod spec;
pub mod store;

pub use error::ServerError;
pub use hub::{HubPoll, ProgressHub};
pub use queue::{JobQueue, PopMode};
pub use server::{JobView, Server, ServerConfig};
pub use spec::{AlgoSpec, JobId, JobSpec, ProblemSpec};
pub use store::{JobHealth, JobState, JobStatus, JobStore};
