//! The line-oriented text protocol spoken over TCP.
//!
//! Requests are single lines; responses are `ok ...` or `err <message>`
//! lines, with two multi-line forms (`list`, `stream`) terminated by an
//! `end` line:
//!
//! ```text
//! ping                      -> ok pong
//! submit job v1 name=...    -> ok <16-hex job id>
//! status <id>               -> ok id=... name=... status=... health=...
//!                              generations=... candidates=...
//!                              evaluations=... cache_hits=...
//!                              screened=... [error=...]
//! health <id>               -> ok <healthy|stalled|faulty|done|failed>
//! list                      -> ok <count>
//!                              job <id> <name> <status> <health>   (xN)
//!                              end
//! stream <id>               -> ok streaming
//!                              event <RunEvent JSONL>              (xN)
//!                              end <final status>
//! cancel <id>               -> ok cancelled
//! metrics                   -> ok metrics
//!                              <Prometheus text exposition>     (xN)
//!                              end
//! metrics json              -> ok <canonical JSON snapshot>
//! debug <id>                -> ok recorded=<n> dropped=<n> hub_dropped=<n>
//!                              stage <name> <total nanos>       (x5)
//!                              event <RunEvent JSONL>           (xN)
//!                              end
//! shutdown                  -> ok shutting-down
//! ```

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::server::Server;
use crate::spec::{JobId, JobSpec};

/// How long a stream poll blocks before re-checking for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

/// Serves one client connection until it closes, errors, or the server
/// shuts down. Intended to run on its own thread.
pub fn handle_connection(server: &Server, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut out = match stream.try_clone() {
        Ok(out) => out,
        Err(_) => return,
    };
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Extract complete lines before reading more, so a timeout can
        // never drop partially-received bytes.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if !handle_line(server, line, &mut out) {
                return;
            }
        }
        if server.is_shutting_down() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Dispatches one request line; returns `false` when the connection
/// should close.
fn handle_line(server: &Server, line: &str, out: &mut dyn Write) -> bool {
    let (cmd, rest) = match line.split_once(' ') {
        Some((cmd, rest)) => (cmd, rest.trim()),
        None => (line, ""),
    };
    let reply = match cmd {
        "ping" => Ok("ok pong".to_string()),
        "submit" => JobSpec::parse(rest)
            .and_then(|spec| server.submit(spec))
            .map(|id| format!("ok {id}")),
        "status" => JobId::parse(rest)
            .and_then(|id| server.status(id))
            .map(|v| {
                let mut line = format!(
                    "ok id={} name={} status={} health={} generations={} candidates={} evaluations={} cache_hits={} screened={}",
                    v.id,
                    v.name,
                    v.status.token(),
                    v.health.token(),
                    v.generations,
                    v.candidates,
                    v.evaluations,
                    v.cache_hits,
                    v.screened,
                );
                if let Some(err) = &v.error {
                    line.push_str(&format!(" error={}", one_line(err)));
                }
                line
            }),
        "health" => JobId::parse(rest)
            .and_then(|id| server.health(id))
            .map(|h| format!("ok {}", h.token())),
        "cancel" => JobId::parse(rest)
            .and_then(|id| server.cancel(id))
            .map(|()| "ok cancelled".to_string()),
        "list" => {
            let views = server.list();
            let mut body = format!("ok {}\n", views.len());
            for v in views {
                body.push_str(&format!(
                    "job {} {} {} {}\n",
                    v.id,
                    v.name,
                    v.status.token(),
                    v.health.token()
                ));
            }
            body.push_str("end");
            Ok(body)
        }
        "stream" => return stream_job(server, rest, out),
        "metrics" => match rest {
            "" => {
                let mut body = String::from("ok metrics\n");
                body.push_str(&server.metrics_text());
                body.push_str("end");
                Ok(body)
            }
            "json" => Ok(format!("ok {}", server.metrics_json())),
            other => Err(crate::error::ServerError::InvalidSpec(format!(
                "metrics takes no argument or 'json', got {other:?}"
            ))),
        },
        "debug" => JobId::parse(rest)
            .and_then(|id| server.debug_report(id))
            .map(|r| {
                let mut body = format!(
                    "ok recorded={} dropped={} hub_dropped={}\n",
                    r.lines.len(),
                    r.dropped,
                    r.hub_dropped
                );
                for stage in engine::Stage::ALL {
                    body.push_str(&format!("stage {} {}\n", stage.name(), r.stages.get(stage)));
                }
                for line in &r.lines {
                    body.push_str(&format!("event {line}\n"));
                }
                body.push_str("end");
                body
            }),
        "shutdown" => {
            let _ = writeln!(out, "ok shutting-down");
            server.request_shutdown();
            return false;
        }
        other => Err(crate::error::ServerError::InvalidSpec(format!(
            "unknown command {other:?}"
        ))),
    };
    let line = match reply {
        Ok(ok) => ok,
        Err(e) => format!("err {}", one_line(&e.to_string())),
    };
    writeln!(out, "{line}").is_ok()
}

/// Streams a job's progress: replays retained history, then follows
/// live until the job terminates or the server shuts down.
fn stream_job(server: &Server, rest: &str, out: &mut dyn Write) -> bool {
    let id = match JobId::parse(rest) {
        Ok(id) => id,
        Err(e) => return writeln!(out, "err {}", one_line(&e.to_string())).is_ok(),
    };
    if let Err(e) = server.status(id) {
        return writeln!(out, "err {}", one_line(&e.to_string())).is_ok();
    }
    if writeln!(out, "ok streaming").is_err() {
        return false;
    }
    let mut cursor = 0u64;
    loop {
        let poll = match server.poll_progress(id, cursor, POLL_INTERVAL) {
            Ok(poll) => poll,
            Err(e) => return writeln!(out, "err {}", one_line(&e.to_string())).is_ok(),
        };
        for line in &poll.lines {
            if writeln!(out, "event {line}").is_err() {
                return false;
            }
        }
        cursor = poll.next;
        if poll.done {
            let status = server
                .status(id)
                .map(|v| v.status.token())
                .unwrap_or("unknown");
            return writeln!(out, "end {status}").is_ok();
        }
        if server.is_shutting_down() {
            return writeln!(out, "end shutdown").is_ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use crate::spec::{AlgoSpec, ProblemSpec};

    fn tmp_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dse-server-proto-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn reply(server: &Server, line: &str) -> String {
        let mut out = Vec::new();
        handle_line(server, line, &mut out);
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn submit_status_health_list_round_trip() {
        let root = tmp_root("roundtrip");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        assert_eq!(reply(&server, "ping"), "ok pong\n");
        let spec = JobSpec::new(
            "proto",
            ProblemSpec::Schaffer,
            AlgoSpec::Nsga2 { pop: 12, gens: 3 },
            7,
        );
        let resp = reply(&server, &format!("submit {}", spec.canonical()));
        let id = resp.trim().strip_prefix("ok ").unwrap().to_string();
        assert_eq!(id, spec.id().to_string());
        server.run_until_idle().unwrap();
        let status = reply(&server, &format!("status {id}"));
        assert!(status.contains("status=done"), "{status}");
        assert!(status.contains("health=done"), "{status}");
        assert_eq!(reply(&server, &format!("health {id}")), "ok done\n");
        let list = reply(&server, "list");
        assert!(list.starts_with("ok 1\n"), "{list}");
        assert!(
            list.contains(&format!("job {id} proto done done")),
            "{list}"
        );
        assert!(list.trim_end().ends_with("end"), "{list}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn errors_are_single_err_lines() {
        let root = tmp_root("errors");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        assert!(reply(&server, "status zzz").starts_with("err "));
        assert!(reply(&server, "bogus").starts_with("err "));
        assert!(reply(&server, "submit job v1 name=x").starts_with("err "));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn metrics_and_debug_commands_round_trip() {
        let root = tmp_root("metrics");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let spec = JobSpec::new(
            "m",
            ProblemSpec::Schaffer,
            AlgoSpec::Sacga {
                pop: 16,
                gens: 4,
                parts: 4,
            },
            7,
        );
        let id = server.submit(spec).unwrap();
        server.run_until_idle().unwrap();
        let scrape = reply(&server, "metrics");
        assert!(scrape.starts_with("ok metrics\n"), "{scrape}");
        assert!(scrape.contains("# TYPE dse_engine_candidates_total counter"));
        assert!(scrape.trim_end().ends_with("end"), "{scrape}");
        let json = reply(&server, "metrics json");
        assert!(json.starts_with("ok {\"metrics\":["), "{json}");
        assert_eq!(json.lines().count(), 1);
        assert!(reply(&server, "metrics bogus").starts_with("err "));
        let debug = reply(&server, &format!("debug {id}"));
        assert!(debug.starts_with("ok recorded="), "{debug}");
        assert!(debug.contains("stage evaluation "), "{debug}");
        assert!(debug.contains("event {"), "{debug}");
        assert!(debug.trim_end().ends_with("end"), "{debug}");
        assert!(reply(&server, "debug zzz").starts_with("err "));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stream_of_finished_job_replays_and_ends() {
        let root = tmp_root("stream");
        let server = Server::open(&root, ServerConfig::new()).unwrap();
        let spec = JobSpec::new(
            "s",
            ProblemSpec::Schaffer,
            AlgoSpec::Nsga2 { pop: 12, gens: 3 },
            7,
        );
        let id = server.submit(spec).unwrap();
        server.run_until_idle().unwrap();
        let resp = reply(&server, &format!("stream {id}"));
        assert!(resp.starts_with("ok streaming\n"), "{resp}");
        assert!(resp.contains("event {"), "{resp}");
        assert!(resp.trim_end().ends_with("end done"), "{resp}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
