//! The bounded, priority-aware job queue feeding the worker pool.
//!
//! Ordering is strict priority (9 highest) with FIFO tie-breaking via a
//! monotone sequence number, so equal-priority jobs — including a job
//! that re-enters the queue after a preemption — run round-robin.
//!
//! The queue also carries the pool's idle accounting: [`JobQueue::pop`]
//! in *drain* mode returns `None` only once the heap is empty **and** no
//! popped job is still in flight, because an in-flight job may requeue
//! itself at a generation boundary.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use crate::error::ServerError;
use crate::spec::JobId;

#[derive(Debug, PartialEq, Eq)]
struct Entry {
    priority: u8,
    seq: u64,
    id: JobId,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier sequence first.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct Inner {
    heap: BinaryHeap<Entry>,
    seq: u64,
    in_flight: usize,
    closed: bool,
}

/// How [`JobQueue::pop`] behaves when the queue is momentarily empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopMode {
    /// Return `None` once the queue is empty and nothing is in flight
    /// (batch processing: run until idle, then stop).
    Drain,
    /// Block until work arrives or the queue is closed (daemon mode).
    Wait,
}

/// Bounded priority queue of runnable job ids (see module docs).
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    available: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// An empty queue holding at most `capacity` queued entries.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                heap: BinaryHeap::new(),
                seq: 0,
                in_flight: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// [`ServerError::QueueFull`] at capacity, or
    /// [`ServerError::ShuttingDown`] after [`JobQueue::close`].
    pub fn push(&self, id: JobId, priority: u8) -> Result<(), ServerError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(ServerError::ShuttingDown);
        }
        if inner.heap.len() >= self.capacity {
            return Err(ServerError::QueueFull {
                capacity: self.capacity,
            });
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Entry { priority, seq, id });
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Re-enqueues a preempted or rescanned job. Exempt from the
    /// capacity bound (which limits *external* submissions) and from
    /// the closed check during rescan; a push after close is dropped —
    /// the job stays suspended on disk and resumes on the next boot.
    pub fn requeue(&self, id: JobId, priority: u8) {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.heap.push(Entry { priority, seq, id });
        drop(inner);
        self.available.notify_one();
    }

    /// Pops the highest-priority job, blocking per `mode`. Returns
    /// `None` when the worker should exit. The caller owes one
    /// [`JobQueue::task_done`] per `Some` returned. `stop` aborts the
    /// wait early (used for slice-budget kill simulation).
    pub fn pop(&self, mode: PopMode, stop: &AtomicBool) -> Option<JobId> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if stop.load(Ordering::SeqCst) || inner.closed && inner.heap.is_empty() {
                return None;
            }
            if let Some(entry) = inner.heap.pop() {
                inner.in_flight += 1;
                return Some(entry.id);
            }
            if mode == PopMode::Drain && inner.in_flight == 0 {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(inner, std::time::Duration::from_millis(50))
                .unwrap();
            inner = guard;
        }
    }

    /// Marks one popped job as finished (done, failed, requeued or
    /// abandoned). Wakes idle workers so drain mode can conclude.
    pub fn task_done(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        drop(inner);
        self.available.notify_all();
    }

    /// Whether other jobs are waiting — the preemption signal: a running
    /// job yields at its next generation-slice boundary when `true`.
    pub fn contended(&self) -> bool {
        !self.inner.lock().unwrap().heap.is_empty()
    }

    /// Number of queued (not in-flight) jobs.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().heap.len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rejects further pushes and wakes every blocked worker.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Wakes every blocked worker without closing (used when an
    /// external stop flag was raised).
    pub fn interrupt(&self) {
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> JobId {
        JobId::parse(&format!("{n:016x}")).unwrap()
    }

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(16);
        let stop = AtomicBool::new(false);
        q.push(id(1), 0).unwrap();
        q.push(id(2), 5).unwrap();
        q.push(id(3), 5).unwrap();
        q.push(id(4), 9).unwrap();
        let order: Vec<JobId> = (0..4)
            .map(|_| q.pop(PopMode::Drain, &stop).unwrap())
            .collect();
        assert_eq!(order, vec![id(4), id(2), id(3), id(1)]);
    }

    #[test]
    fn capacity_is_enforced() {
        let q = JobQueue::new(2);
        q.push(id(1), 0).unwrap();
        q.push(id(2), 0).unwrap();
        assert!(matches!(
            q.push(id(3), 0),
            Err(ServerError::QueueFull { capacity: 2 })
        ));
    }

    #[test]
    fn drain_waits_for_in_flight_requeues() {
        let q = JobQueue::new(4);
        let stop = AtomicBool::new(false);
        q.push(id(1), 0).unwrap();
        let popped = q.pop(PopMode::Drain, &stop).unwrap();
        assert_eq!(popped, id(1));
        // Simulate the in-flight job requeueing itself before finishing.
        q.push(id(1), 0).unwrap();
        q.task_done();
        assert_eq!(q.pop(PopMode::Drain, &stop), Some(id(1)));
        q.task_done();
        assert_eq!(q.pop(PopMode::Drain, &stop), None);
    }

    #[test]
    fn close_rejects_pushes_and_releases_waiters() {
        let q = JobQueue::new(4);
        let stop = AtomicBool::new(false);
        q.close();
        assert!(matches!(q.push(id(1), 0), Err(ServerError::ShuttingDown)));
        assert_eq!(q.pop(PopMode::Wait, &stop), None);
    }

    #[test]
    fn stop_flag_aborts_pop() {
        let q = JobQueue::new(4);
        let stop = AtomicBool::new(true);
        q.push(id(1), 0).unwrap();
        assert_eq!(q.pop(PopMode::Wait, &stop), None);
    }
}
