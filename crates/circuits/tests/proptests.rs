//! Property-based tests of the circuit-model invariants.

use analog_circuits::integrator::{analyze, ClockContext};
use analog_circuits::mosfet::{effective_overdrive, Mosfet, SLOPE_FACTOR, V_THERMAL};
use analog_circuits::process::{Corner, DeviceType, Process};
use analog_circuits::sizing::DesignVector;
use analog_circuits::{DrivableLoadProblem, IntegratorProblem, Spec};
use moea::Problem;
use proptest::prelude::*;

fn device() -> impl Strategy<Value = Mosfet> {
    (
        prop_oneof![Just(DeviceType::Nmos), Just(DeviceType::Pmos)],
        1e-6f64..400e-6,
        0.18e-6f64..1.5e-6,
    )
        .prop_map(|(d, w, l)| Mosfet::new(d, w, l))
}

proptest! {
    #[test]
    fn effective_overdrive_is_monotone_positive(
        v1 in -1.0f64..1.0,
        v2 in -1.0f64..1.0,
    ) {
        let (a, b) = (v1.min(v2), v1.max(v2));
        prop_assert!(effective_overdrive(a) <= effective_overdrive(b) + 1e-15);
        prop_assert!(effective_overdrive(v1) > 0.0);
        // strong-inversion asymptote
        prop_assert!((effective_overdrive(1.0) - 1.0).abs() < 0.01);
    }

    #[test]
    fn drain_current_monotone_in_vgs(m in device(), vds in 0.1f64..1.8) {
        let p = Process::nominal();
        let mut prev = -1.0;
        for step in 0..20 {
            let vgs = 0.1 + 0.08 * step as f64;
            let id = m.id(&p, vgs, vds);
            prop_assert!(id >= prev - 1e-15, "current fell as vgs rose");
            prev = id;
        }
    }

    #[test]
    fn drain_current_monotone_in_vds(m in device(), vgs in 0.5f64..1.6) {
        let p = Process::nominal();
        let mut prev = -1.0f64;
        for step in 0..24 {
            let vds = 0.02 + 0.075 * step as f64;
            let id = m.id(&p, vgs, vds);
            prop_assert!(id >= prev - 1e-12 * prev.abs().max(1e-18));
            prev = id;
        }
    }

    #[test]
    fn operating_point_is_physical(m in device(), vgs in 0.2f64..1.7, vds in 0.05f64..1.75) {
        let p = Process::nominal();
        let op = m.operating_point(&p, vgs, vds);
        prop_assert!(op.id >= 0.0 && op.id.is_finite());
        prop_assert!(op.gm >= 0.0 && op.gm.is_finite());
        prop_assert!(op.gds >= 0.0 && op.gds.is_finite());
        prop_assert!(op.vdsat > 0.0);
        // gm/id bounded by the subthreshold limit
        if op.id > 1e-12 {
            let gm_over_id = op.gm / op.id;
            prop_assert!(
                gm_over_id < 1.1 / (SLOPE_FACTOR * V_THERMAL),
                "gm/id {gm_over_id} above physical limit"
            );
        }
    }

    #[test]
    fn vgs_for_current_round_trips(m in device(), frac in 0.01f64..0.9) {
        let p = Process::nominal();
        let vds = 0.9;
        let max_id = m.id(&p, 1.7, vds);
        prop_assume!(max_id > 1e-9);
        let target = frac * max_id;
        if let Some(vgs) = m.vgs_for_current(&p, target, vds, 1.7) {
            let achieved = m.id(&p, vgs, vds);
            prop_assert!(
                (achieved - target).abs() / target < 1e-4,
                "round trip {achieved} vs {target}"
            );
        }
    }

    #[test]
    fn integrator_reports_are_finite_everywhere(genes in prop::collection::vec(0.0f64..1.0, 15)) {
        let dv = DesignVector::from_sizing_genes(&genes).quantize();
        let p = Process::nominal();
        let clock = ClockContext::standard();
        for corner in Corner::ALL {
            let r = analyze(&dv.with_cl(1e-12), &p.at_corner(corner), &clock);
            prop_assert!(r.settling_time.is_finite() && r.settling_time > 0.0);
            prop_assert!(r.settling_error.is_finite() && r.settling_error >= 0.0);
            prop_assert!(r.power.is_finite() && r.power > 0.0);
            prop_assert!(r.area.is_finite() && r.area > 0.0);
            prop_assert!(r.dynamic_range_db.is_finite());
            prop_assert!(r.output_range >= 0.0);
        }
    }

    #[test]
    fn fixed_load_problem_evaluations_well_formed(genes in prop::collection::vec(0.0f64..1.0, 15)) {
        let problem = IntegratorProblem::new(Spec::featured());
        let ev = problem.evaluate(&genes);
        prop_assert!(problem.check_evaluation(&ev).is_ok());
        prop_assert!(ev.objectives()[1] > 0.0, "power must be positive");
        prop_assert!(ev.objectives()[0] <= 0.0, "-CL must be non-positive");
        prop_assert!(ev.constraint_violations().iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn drivable_load_is_feasible_and_edge_tight(
        genes in prop::collection::vec(0.0f64..1.0, 15),
    ) {
        // The search contract: the returned load satisfies the margined
        // load-dependent constraints, and (unless the ceiling was hit) the
        // load just above the returned upper edge does not.
        let problem = DrivableLoadProblem::new(Spec::featured());
        let dv = DesignVector::from_sizing_genes(&genes).quantize();
        let clock = ClockContext::standard();
        let p = Process::nominal();
        let ok = |cl: f64| {
            let r = analyze(&dv.with_cl(cl), &p, &clock);
            r.is_biased()
                && r.settling_time <= 0.8 * problem.spec().st_max
                && r.settling_error <= 0.8 * problem.spec().se_max
                && r.p2 >= 1.5 * r.omega_c
        };
        if let Some((cl, report)) = problem.drivable_load(&dv) {
            prop_assert!(ok(cl), "returned load must satisfy the margined constraints");
            prop_assert!(report.is_biased());
            let ceiling = analog_circuits::sizing::CL_RANGE.1;
            if cl < ceiling * 0.99 {
                // The bisection interval width is < 0.02 pF.
                prop_assert!(
                    !ok(cl + 0.02e-12),
                    "load just above the edge should be infeasible (cl = {cl})"
                );
            }
        }
    }

    #[test]
    fn quantize_is_idempotent_and_snaps(genes in prop::collection::vec(0.0f64..1.0, 15)) {
        let dv = DesignVector::from_sizing_genes(&genes).quantize();
        let again = dv.quantize();
        prop_assert!((dv.w1 - again.w1).abs() < 1e-18);
        prop_assert!((dv.cc - again.cc).abs() < 1e-24);
        // widths are whole fingers
        let fingers = dv.w6 / analog_circuits::sizing::W_UNIT;
        prop_assert!((fingers - fingers.round()).abs() < 1e-9);
        let units = dv.cs / analog_circuits::sizing::C_UNIT;
        prop_assert!((units - units.round()).abs() < 1e-9);
    }

    #[test]
    fn corners_never_panic_the_yield_estimator(genes in prop::collection::vec(0.0f64..1.0, 15)) {
        let dv = DesignVector::from_sizing_genes(&genes).quantize();
        let rob = analog_circuits::yield_est::robustness(
            &dv.with_cl(1e-12),
            &Process::nominal(),
            &ClockContext::standard(),
            &Spec::featured(),
        );
        prop_assert!((0.0..=1.0).contains(&rob));
    }
}
