//! Robustness ("yield") estimation across manufacturing corners and local
//! mismatch.
//!
//! The paper constrains a "Yield Calculation \[6\] (Robustness)" figure; the
//! referenced HOLMES methodology is proprietary, so this module substitutes
//! a deterministic corner × mismatch sweep (see `DESIGN.md` §4): the design
//! is re-analyzed at every process corner plus a small set of
//! low-discrepancy local-mismatch points, and robustness is the fraction of
//! sample points at which all specification constraints hold. The sample
//! set is fixed, so the figure is deterministic and smooth enough for a GA
//! to climb.

use crate::integrator::{self, ClockContext, IntegratorReport};
use crate::process::{Corner, Process};
use crate::sizing::DesignVector;
use crate::specs::Spec;

/// One robustness sample point: a corner plus local mismatch offsets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Manufacturing corner.
    pub corner: Corner,
    /// NMOS threshold shift (V).
    pub dvt_n: f64,
    /// PMOS threshold shift (V).
    pub dvt_p: f64,
    /// Relative mobility/kp shift.
    pub dkp: f64,
}

/// The deterministic sample plan used by [`robustness`]: the five corners
/// at zero mismatch, plus four mismatch-heavy TT points arranged on a
/// low-discrepancy cross (±12 mV thresholds, ∓6 % mobility).
pub fn sample_plan() -> Vec<SamplePoint> {
    let mut plan: Vec<SamplePoint> = Corner::ALL
        .iter()
        .map(|&corner| SamplePoint {
            corner,
            dvt_n: 0.0,
            dvt_p: 0.0,
            dkp: 0.0,
        })
        .collect();
    let mm = 0.012;
    let dk = 0.06;
    plan.push(SamplePoint {
        corner: Corner::Tt,
        dvt_n: mm,
        dvt_p: -mm,
        dkp: -dk,
    });
    plan.push(SamplePoint {
        corner: Corner::Tt,
        dvt_n: -mm,
        dvt_p: mm,
        dkp: dk,
    });
    plan.push(SamplePoint {
        corner: Corner::Tt,
        dvt_n: mm,
        dvt_p: mm,
        dkp: -dk,
    });
    plan.push(SamplePoint {
        corner: Corner::Tt,
        dvt_n: -mm,
        dvt_p: -mm,
        dkp: dk,
    });
    plan
}

/// `true` when `report` satisfies every *performance* constraint of `spec`
/// (DR, OR, ST, SE, saturation margin). Robustness itself and area are
/// global properties, not per-sample ones.
pub fn passes_performance(report: &IntegratorReport, spec: &Spec) -> bool {
    report.is_biased()
        && report.dynamic_range_db >= spec.dr_min_db
        && report.output_range >= spec.or_min_v
        && report.settling_time <= spec.st_max
        && report.settling_error <= spec.se_max
        && report.opamp.sat_margin >= spec.sat_margin_min
}

/// The [`sample_plan`] with the skewed [`Process`] of every sample point
/// already built. Deriving the nine corner/mismatch process descriptions
/// is design-independent, so a batch sweep prepares this table once and
/// amortizes it across every candidate in the generation; the scalar path
/// uses the identical table so both paths are bit-for-bit interchangeable.
pub fn prepared_plan(nominal: &Process) -> Vec<(SamplePoint, Process)> {
    sample_plan()
        .into_iter()
        .map(|sp| {
            let process = nominal
                .at_corner(sp.corner)
                .with_mismatch(sp.dvt_n, sp.dvt_p, sp.dkp);
            (sp, process)
        })
        .collect()
}

/// Robustness of a design against a pre-built sample table (see
/// [`prepared_plan`]): the fraction of points at which all performance
/// constraints of `spec` hold, plus the per-sample verdicts.
pub fn robustness_prepared(
    dv: &DesignVector,
    plan: &[(SamplePoint, Process)],
    clock: &ClockContext,
    spec: &Spec,
) -> (f64, Vec<(SamplePoint, bool)>) {
    let mut outcomes = Vec::with_capacity(plan.len());
    let mut passed = 0usize;
    for (sp, process) in plan {
        let report = integrator::analyze(dv, process, clock);
        let ok = passes_performance(&report, spec);
        if ok {
            passed += 1;
        }
        outcomes.push((*sp, ok));
    }
    (passed as f64 / outcomes.len() as f64, outcomes)
}

/// Robustness of a design: the fraction of [`sample_plan`] points at which
/// all performance constraints of `spec` hold. Returns a value in `[0, 1]`
/// together with the per-sample reports (for diagnostics).
pub fn robustness_detailed(
    dv: &DesignVector,
    nominal: &Process,
    clock: &ClockContext,
    spec: &Spec,
) -> (f64, Vec<(SamplePoint, bool)>) {
    robustness_prepared(dv, &prepared_plan(nominal), clock, spec)
}

/// Robustness of a design (just the fraction). See [`robustness_detailed`].
pub fn robustness(dv: &DesignVector, nominal: &Process, clock: &ClockContext, spec: &Spec) -> f64 {
    robustness_detailed(dv, nominal, clock, spec).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_all_corners_plus_mismatch() {
        let plan = sample_plan();
        assert_eq!(plan.len(), 9);
        for c in Corner::ALL {
            assert!(plan.iter().any(|s| s.corner == c));
        }
        assert!(plan.iter().filter(|s| s.dvt_n != 0.0).count() == 4);
    }

    #[test]
    fn reference_design_is_robust_for_relaxed_spec() {
        let dv = DesignVector::reference();
        let r = robustness(
            &dv,
            &Process::nominal(),
            &ClockContext::standard(),
            &Spec::relaxed(),
        );
        assert!(r > 0.8, "robustness {r}");
    }

    #[test]
    fn impossible_spec_gives_zero_robustness() {
        let dv = DesignVector::reference();
        let mut spec = Spec::featured();
        spec.dr_min_db = 200.0;
        let r = robustness(&dv, &Process::nominal(), &ClockContext::standard(), &spec);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn robustness_is_deterministic() {
        let dv = DesignVector::reference();
        let spec = Spec::featured();
        let a = robustness(&dv, &Process::nominal(), &ClockContext::standard(), &spec);
        let b = robustness(&dv, &Process::nominal(), &ClockContext::standard(), &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn prepared_plan_matches_per_call_construction() {
        let dv = DesignVector::reference();
        let spec = Spec::featured();
        let nominal = Process::nominal();
        let clock = ClockContext::standard();
        let plan = prepared_plan(&nominal);
        let (a, da) = robustness_prepared(&dv, &plan, &clock, &spec);
        let (b, db) = robustness_detailed(&dv, &nominal, &clock, &spec);
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn detailed_outcomes_match_fraction() {
        let dv = DesignVector::reference();
        let spec = Spec::relaxed();
        let (frac, detail) =
            robustness_detailed(&dv, &Process::nominal(), &ClockContext::standard(), &spec);
        let count = detail.iter().filter(|(_, ok)| *ok).count();
        assert!((frac - count as f64 / detail.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn broken_design_fails_everywhere() {
        let mut dv = DesignVector::reference();
        dv.itail = 500e-6;
        dv.w5 = 2e-6;
        dv.l5 = 1.5e-6;
        let r = robustness(
            &dv,
            &Process::nominal(),
            &ClockContext::standard(),
            &Spec::relaxed(),
        );
        assert_eq!(r, 0.0);
    }
}
