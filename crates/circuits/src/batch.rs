//! Struct-of-arrays batch decoding for generation-sized evaluation.
//!
//! The optimizer loops hand the execution engine whole generations at a
//! time, and most of the per-candidate work outside the numerical circuit
//! analysis is *identical* for every candidate: gene-to-SI decoding walks
//! the same 15 `(lo, hi, log)` ranges, quantization snaps to the same
//! layout units, and the robustness sweep rebuilds the same nine
//! corner/mismatch [`Process`](crate::process::Process) descriptions. This
//! module restructures that work batch-wide:
//!
//! * [`DesignBatch`] decodes a `&[Vec<f64>]` generation into contiguous
//!   per-parameter columns (one tight loop per parameter, with the range
//!   constants hoisted out), quantizes column-wise, and gathers individual
//!   [`DesignVector`]s on demand.
//! * [`crate::yield_est::prepared_plan`] (used by the `evaluate_all`
//!   overrides on [`crate::DrivableLoadProblem`] and
//!   [`crate::IntegratorProblem`]) builds the corner/mismatch process
//!   table once per batch instead of once per candidate.
//!
//! **Bit-identity contract.** Every decode here reuses the exact scalar
//! building blocks (`sizing::map_gene`, `sizing::snap_to_unit`, the
//! shared `evaluate_quantized` bodies), applied element-wise in the same order,
//! so the batch path produces byte-identical `Evaluation`s to the scalar
//! path. The `batch_equivalence` proptest suite in `tests/` pins this.

use crate::sizing::{map_gene, snap_to_unit, DesignVector};
use crate::sizing::{CL_RANGE, C_UNIT, I_UNIT, L_UNIT, NUM_PARAMS, VCM_RANGE, W_UNIT};

/// A generation of decoded designs in struct-of-arrays layout: one
/// contiguous column per design parameter.
///
/// # Examples
///
/// ```
/// use analog_circuits::batch::DesignBatch;
/// use analog_circuits::DesignVector;
///
/// let genes: Vec<Vec<f64>> = vec![vec![0.25; 15], vec![0.75; 15]];
/// let db = DesignBatch::decode(&genes);
/// assert_eq!(db.len(), 2);
/// assert_eq!(db.design(0), DesignVector::from_genes(&genes[0]));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DesignBatch {
    /// Input-pair NMOS widths (m).
    pub w1: Vec<f64>,
    /// Input-pair NMOS lengths (m).
    pub l1: Vec<f64>,
    /// Mirror-load PMOS widths (m).
    pub w3: Vec<f64>,
    /// Mirror-load PMOS lengths (m).
    pub l3: Vec<f64>,
    /// Tail NMOS widths (m).
    pub w5: Vec<f64>,
    /// Tail NMOS lengths (m).
    pub l5: Vec<f64>,
    /// Second-stage PMOS driver widths (m).
    pub w6: Vec<f64>,
    /// Second-stage PMOS driver lengths (m).
    pub l6: Vec<f64>,
    /// Second-stage NMOS sink widths (m).
    pub w7: Vec<f64>,
    /// Second-stage NMOS sink lengths (m).
    pub l7: Vec<f64>,
    /// First-stage tail currents (A).
    pub itail: Vec<f64>,
    /// Miller compensation capacitors (F).
    pub cc: Vec<f64>,
    /// Sampling capacitors (F).
    pub cs: Vec<f64>,
    /// Feedback / integrating capacitors (F).
    pub cf: Vec<f64>,
    /// Load capacitances (F).
    pub cl: Vec<f64>,
    /// Input common-mode voltages (V).
    pub vcm_in: Vec<f64>,
}

/// Decodes one gene column (`genes[*][param]`) into SI values with the
/// range constants hoisted out of the loop.
fn decode_column(genes: &[Vec<f64>], param: usize) -> Vec<f64> {
    let range = crate::sizing::PARAM_RANGES[param];
    genes.iter().map(|g| map_gene(g[param], range)).collect()
}

/// Snaps a column in place to multiples of `unit` (see
/// [`DesignVector::quantize`]).
fn snap_column(col: &mut [f64], unit: f64) {
    for v in col {
        *v = snap_to_unit(*v, unit);
    }
}

impl DesignBatch {
    /// Decodes a generation with [`DesignVector::from_genes`] semantics:
    /// all 15 genes map to their parameter ranges and the common-mode
    /// voltage is fixed at 0.9 V.
    ///
    /// # Panics
    ///
    /// Panics if any gene vector is shorter than 15 genes.
    pub fn decode(genes: &[Vec<f64>]) -> Self {
        let mut db = Self::decode_shared(genes);
        db.cl = decode_column(genes, 14);
        db.vcm_in = vec![0.9; genes.len()];
        db
    }

    /// Decodes a generation with
    /// [`DesignVector::from_sizing_genes`] semantics: gene 15 maps
    /// linearly to the input common-mode voltage over [`VCM_RANGE`] and
    /// the load capacitance is the placeholder `CL_RANGE.0`.
    ///
    /// # Panics
    ///
    /// Panics if any gene vector is shorter than 15 genes.
    pub fn decode_sizing(genes: &[Vec<f64>]) -> Self {
        let mut db = Self::decode_shared(genes);
        db.cl = vec![CL_RANGE.0; genes.len()];
        db.vcm_in = genes
            .iter()
            .map(|g| {
                let u = g[14].clamp(0.0, 1.0);
                VCM_RANGE.0 + u * (VCM_RANGE.1 - VCM_RANGE.0)
            })
            .collect();
        db
    }

    /// Columns 0–13, common to both decodings.
    fn decode_shared(genes: &[Vec<f64>]) -> Self {
        for (i, g) in genes.iter().enumerate() {
            assert_eq!(g.len(), NUM_PARAMS, "candidate {i} needs 15 genes");
        }
        DesignBatch {
            w1: decode_column(genes, 0),
            l1: decode_column(genes, 1),
            w3: decode_column(genes, 2),
            l3: decode_column(genes, 3),
            w5: decode_column(genes, 4),
            l5: decode_column(genes, 5),
            w6: decode_column(genes, 6),
            l6: decode_column(genes, 7),
            w7: decode_column(genes, 8),
            l7: decode_column(genes, 9),
            itail: decode_column(genes, 10),
            cc: decode_column(genes, 11),
            cs: decode_column(genes, 12),
            cf: decode_column(genes, 13),
            cl: Vec::new(),
            vcm_in: Vec::new(),
        }
    }

    /// Column-wise layout quantization; same snapping as
    /// [`DesignVector::quantize`] (load capacitance and common mode stay
    /// continuous).
    pub fn quantize(mut self) -> Self {
        for w in [
            &mut self.w1,
            &mut self.w3,
            &mut self.w5,
            &mut self.w6,
            &mut self.w7,
        ] {
            snap_column(w, W_UNIT);
        }
        for l in [
            &mut self.l1,
            &mut self.l3,
            &mut self.l5,
            &mut self.l6,
            &mut self.l7,
        ] {
            snap_column(l, L_UNIT);
        }
        for c in [&mut self.cc, &mut self.cs, &mut self.cf] {
            snap_column(c, C_UNIT);
        }
        snap_column(&mut self.itail, I_UNIT);
        self
    }

    /// Number of designs in the batch.
    pub fn len(&self) -> usize {
        self.w1.len()
    }

    /// `true` when the batch holds no designs.
    pub fn is_empty(&self) -> bool {
        self.w1.is_empty()
    }

    /// Gathers design `i` back into an ordinary [`DesignVector`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn design(&self, i: usize) -> DesignVector {
        DesignVector {
            w1: self.w1[i],
            l1: self.l1[i],
            w3: self.w3[i],
            l3: self.l3[i],
            w5: self.w5[i],
            l5: self.l5[i],
            w6: self.w6[i],
            l6: self.l6[i],
            w7: self.w7[i],
            l7: self.l7[i],
            itail: self.itail[i],
            cc: self.cc[i],
            cs: self.cs[i],
            cf: self.cf[i],
            cl: self.cl[i],
            vcm_in: self.vcm_in[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_genes(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..NUM_PARAMS)
                    .map(|j| (((i * NUM_PARAMS + j) as f64) * 0.37 + 0.11).fract())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn decode_matches_from_genes_bitwise() {
        let genes = pseudo_genes(9);
        let db = DesignBatch::decode(&genes);
        for (i, g) in genes.iter().enumerate() {
            assert_eq!(db.design(i), DesignVector::from_genes(g), "candidate {i}");
        }
    }

    #[test]
    fn decode_sizing_matches_from_sizing_genes_bitwise() {
        let genes = pseudo_genes(9);
        let db = DesignBatch::decode_sizing(&genes);
        for (i, g) in genes.iter().enumerate() {
            assert_eq!(
                db.design(i),
                DesignVector::from_sizing_genes(g),
                "candidate {i}"
            );
        }
    }

    #[test]
    fn quantize_matches_scalar_quantize_bitwise() {
        let genes = pseudo_genes(9);
        let db = DesignBatch::decode_sizing(&genes).quantize();
        for (i, g) in genes.iter().enumerate() {
            assert_eq!(
                db.design(i),
                DesignVector::from_sizing_genes(g).quantize(),
                "candidate {i}"
            );
        }
    }

    #[test]
    fn empty_batch_is_well_formed() {
        let db = DesignBatch::decode(&[]);
        assert!(db.is_empty());
        assert_eq!(db.len(), 0);
    }

    #[test]
    #[should_panic(expected = "15 genes")]
    fn short_candidate_panics() {
        let _ = DesignBatch::decode(&[vec![0.5; 3]]);
    }
}
