//! Performance equations of the CDS offset-compensated switched-capacitor
//! integrator (Fig. 1 of the paper) around the two-stage op-amp.
//!
//! The integrator is the first stage of a fourth-order Σ∆ modulator; the
//! analysis context therefore fixes a clock and oversampling ratio
//! ([`ClockContext`]) and evaluates:
//!
//! * **Settling Time (ST)** — slewing plus linear settling of the
//!   *two-pole-plus-zero* closed loop (the paper stresses that non-dominant
//!   poles and zeros are included, which makes ST/SE/DR strongly
//!   non-linear in the sizing);
//! * **Settling Error (SE)** — static loop-gain error plus the dynamic
//!   residue left at the end of the integration half-period;
//! * **Dynamic Range (DR)** — full-swing signal power over in-band
//!   kT/C + op-amp noise, with CDS double sampling accounted for;
//! * **Output Range (OR)** — differential peak-to-peak swing;
//! * **Power** — op-amp quiescent power plus capacitor switching power;
//! * **Area** — op-amp active area plus the sampled-capacitor network.

use crate::capacitor::IntegratedCapacitor;
use crate::opamp::{self, OpampReport};
use crate::process::Process;
use crate::sizing::DesignVector;
use crate::KT;

/// Sampling-clock / oversampling context shared by all analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockContext {
    /// Sampling frequency (Hz).
    pub fs: f64,
    /// Oversampling ratio of the Σ∆ modulator.
    pub osr: f64,
    /// Relative tolerance defining "settled" for the ST figure.
    pub settle_tolerance: f64,
}

impl ClockContext {
    /// The default context: 2 MHz clock, OSR 128, 0.01 % settling band —
    /// consistent with the paper's ST ≤ 0.24 µs class of specifications.
    pub fn standard() -> Self {
        ClockContext {
            fs: 2.0e6,
            osr: 128.0,
            settle_tolerance: 1e-4,
        }
    }

    /// Half clock period, the time available for integration (s).
    pub fn half_period(&self) -> f64 {
        0.5 / self.fs
    }
}

impl Default for ClockContext {
    fn default() -> Self {
        ClockContext::standard()
    }
}

/// Complete performance report of one integrator design at one process
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegratorReport {
    /// The op-amp analysis underneath.
    pub opamp: OpampReport,
    /// Feedback factor of the integration phase.
    pub beta: f64,
    /// Effective load at the op-amp output during integration (F).
    pub cl_total: f64,
    /// Loop unity-gain (crossover) angular frequency (rad/s).
    pub omega_c: f64,
    /// Non-dominant pole (rad/s).
    pub p2: f64,
    /// Right-half-plane zero (rad/s).
    pub zero: f64,
    /// Closed-loop damping ratio.
    pub zeta: f64,
    /// Slew-limited time (s).
    pub t_slew: f64,
    /// Linear settling time to the tolerance band (s).
    pub t_linear: f64,
    /// Total settling time ST (s).
    pub settling_time: f64,
    /// Settling error SE (relative).
    pub settling_error: f64,
    /// Dynamic range (dB) in the signal band.
    pub dynamic_range_db: f64,
    /// Output range OR: differential peak-to-peak swing (V).
    pub output_range: f64,
    /// Total power: op-amp + switching (W).
    pub power: f64,
    /// Total area: op-amp + capacitor network (m²).
    pub area: f64,
    /// Load capacitance this design drives (F) — the explored objective.
    pub cl: f64,
}

impl IntegratorReport {
    /// `true` when the underlying op-amp found a DC bias point.
    pub fn is_biased(&self) -> bool {
        self.opamp.is_biased()
    }
}

/// Analyzes the integrator built from `dv` in `process` under `clock`.
///
/// Like [`opamp::analyze`], this never panics on pathological sizing — the
/// report degrades gracefully (enormous ST/SE, zero DR) so constraint
/// machinery can grade arbitrary GA candidates.
pub fn analyze(dv: &DesignVector, process: &Process, clock: &ClockContext) -> IntegratorReport {
    let amp = opamp::analyze(dv, process);

    let cs = IntegratedCapacitor::new(dv.cs);
    let cf = IntegratedCapacitor::new(dv.cf);
    let coc = IntegratedCapacitor::new(dv.coc());

    // Summing-node capacitance: sampling cap, CDS offset cap bottom plate,
    // and the amp input capacitance.
    let c_sum = dv.cs + amp.cin + coc.bottom_plate(process) + cf.bottom_plate(process);
    // Feedback factor of the integration phase.
    let beta = (dv.cf / (dv.cf + c_sum)).clamp(1e-6, 1.0);

    // Effective output load: external load + amp output parasitics + the
    // series feedback network + sampling-cap bottom plate on the output
    // side of Cf.
    let feedback_load = dv.cf * c_sum / (dv.cf + c_sum);
    let cl_total = dv.cl + amp.cout + feedback_load + cs.bottom_plate(process);

    // Loop dynamics.
    let omega_u = amp.gm1 / amp.cc_eff.max(1e-18);
    let omega_c = beta * omega_u;
    let c1 = amp.c1.max(1e-18);
    let cc = amp.cc_eff.max(1e-18);
    let p2 = amp.gm6 * cc / (c1 * cc + c1 * cl_total + cc * cl_total).max(1e-30);
    let zero = amp.gm6 / cc;

    // Two-pole-plus-RHP-zero damping approximation: the zero erodes phase
    // margin, reducing the effective damping.
    let zeta_raw = 0.5 * (p2 / omega_c.max(1e-3)).sqrt() * (1.0 - omega_c / zero.max(1e-3));
    let zeta = zeta_raw.clamp(0.02, 5.0);
    let omega_n = (omega_c * p2).max(0.0).sqrt();

    // --- Settling.
    let half_t = clock.half_period();
    let eps = clock.settle_tolerance;

    // Worst-case output step per integration: the sampled charge
    // transferred onto Cf with a quarter-supply differential input.
    let v_step = (dv.cs / dv.cf) * (process.vdd / 4.0);
    let sr_out = 2.0 * amp.i2 / cl_total.max(1e-18);
    let sr = amp.sr_internal.min(sr_out).max(1e-3);
    let t_slew = (v_step / sr - 1.0 / omega_c.max(1e-3)).max(0.0);

    let t_linear = if amp.is_biased() {
        linear_settling_time(zeta, omega_n, eps)
    } else {
        1.0 // a full second: effectively never settles
    };
    let settling_time = t_slew + t_linear;

    // --- Settling error: static gain error + dynamic residue at the end of
    // the half-period.
    let loop_gain = beta * amp.a0;
    let static_error = 1.0 / (1.0 + loop_gain.max(0.0));
    let t_lin_avail = (half_t - t_slew).max(0.0);
    let dynamic_error = if amp.is_biased() {
        (-zeta * omega_n * t_lin_avail).exp().min(1.0)
    } else {
        1.0
    };
    let settling_error = static_error + dynamic_error;

    // --- Dynamic range.
    let swing = amp.swing;
    let signal_power = swing * swing / 8.0; // full-scale sine, differential
                                            // CDS double-samples: 2 kT/C charges per period, differential halves
                                            // combine to an effective 4kT/Cs; oversampling divides the in-band
                                            // share.
    let ktc_noise = 4.0 * KT / dv.cs.max(1e-18) / clock.osr;
    // Op-amp broadband noise aliases into the band; the sampled noise
    // bandwidth is set by the closed-loop crossover.
    let f_u = omega_u / (2.0 * std::f64::consts::PI);
    let amp_noise = amp.noise_psd * f_u / (2.0 * clock.osr * beta.max(1e-6));
    let noise_power = (ktc_noise + amp_noise).max(1e-300);
    let dynamic_range_db = if signal_power > 0.0 {
        10.0 * (signal_power / noise_power).log10()
    } else {
        0.0
    };

    // --- Output range, power, area.
    let output_range = swing;
    let v_half = 0.5 * process.vdd;
    let switched_caps = dv.cs + dv.cf + dv.coc();
    let switching_power = 2.0 * clock.fs * switched_caps * v_half * v_half;
    let power = amp.power + switching_power;
    let cap_area = 2.0 * (cs.area(process) + cf.area(process) + coc.area(process));
    let area = amp.area + cap_area;

    IntegratorReport {
        opamp: amp,
        beta,
        cl_total,
        omega_c,
        p2,
        zero,
        zeta,
        t_slew,
        t_linear,
        settling_time,
        settling_error,
        dynamic_range_db,
        output_range,
        power,
        area,
        cl: dv.cl,
    }
}

/// Linear settling time of a two-pole system to relative tolerance `eps`.
///
/// Underdamped: envelope bound `exp(−ζω_n t)/√(1−ζ²) = eps`, with the
/// envelope factor floored at 0.1 — the exact bound diverges as ζ → 1
/// although the true response does not, and an unbounded factor would
/// make settling time (and hence drivable load) non-monotone around
/// critical damping.
/// Overdamped: dominated by the slow real pole `ω_n(ζ − √(ζ²−1))`.
fn linear_settling_time(zeta: f64, omega_n: f64, eps: f64) -> f64 {
    if omega_n <= 0.0 {
        return 1.0;
    }
    if zeta < 1.0 {
        let envelope = (1.0 - zeta * zeta).sqrt().max(0.1);
        (-(eps * envelope).ln() / (zeta * omega_n)).max(0.0)
    } else {
        let slow_pole = omega_n * (zeta - (zeta * zeta - 1.0).sqrt()).max(1e-9);
        -(eps.ln()) / slow_pole
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Corner;

    fn reference() -> IntegratorReport {
        analyze(
            &DesignVector::reference(),
            &Process::nominal(),
            &ClockContext::standard(),
        )
    }

    #[test]
    fn reference_meets_featured_spec_shape() {
        let r = reference();
        assert!(r.is_biased());
        assert!(r.settling_time < 0.24e-6, "ST {}", r.settling_time);
        assert!(r.settling_error < 7e-4, "SE {}", r.settling_error);
        assert!(r.dynamic_range_db > 96.0, "DR {}", r.dynamic_range_db);
        assert!(r.output_range > 1.4, "OR {}", r.output_range);
    }

    #[test]
    fn beta_is_sensible_fraction() {
        let r = reference();
        assert!(r.beta > 0.2 && r.beta < 0.7, "beta {}", r.beta);
    }

    #[test]
    fn nondominant_pole_above_crossover() {
        let r = reference();
        assert!(
            r.p2 > r.omega_c,
            "p2 {} must exceed crossover {} for stability",
            r.p2,
            r.omega_c
        );
        assert!(r.zero > r.p2 * 0.1);
    }

    #[test]
    fn heavier_load_slows_settling() {
        let mut dv = DesignVector::reference();
        let light = analyze(&dv, &Process::nominal(), &ClockContext::standard());
        dv.cl = 5e-12;
        let heavy = analyze(&dv, &Process::nominal(), &ClockContext::standard());
        assert!(heavy.settling_time > light.settling_time);
        assert!(heavy.p2 < light.p2);
    }

    #[test]
    fn bigger_sampling_cap_improves_dr() {
        let mut dv = DesignVector::reference();
        let small = analyze(&dv, &Process::nominal(), &ClockContext::standard());
        dv.cs = 4e-12;
        dv.cf = 4e-12; // keep the gain ratio
        let big = analyze(&dv, &Process::nominal(), &ClockContext::standard());
        assert!(big.dynamic_range_db > small.dynamic_range_db);
    }

    #[test]
    fn settling_error_includes_static_floor() {
        let r = reference();
        let static_floor = 1.0 / (1.0 + r.beta * r.opamp.a0);
        assert!(r.settling_error >= static_floor);
    }

    #[test]
    fn unbiased_design_reports_pessimistically() {
        let mut dv = DesignVector::reference();
        dv.itail = 500e-6;
        dv.w5 = 2e-6;
        dv.l5 = 1.5e-6;
        let r = analyze(&dv, &Process::nominal(), &ClockContext::standard());
        assert!(!r.is_biased());
        assert!(r.settling_time >= 1.0);
        assert!(r.settling_error >= 1.0);
        assert!(r.dynamic_range_db <= 0.0);
    }

    #[test]
    fn switching_power_added() {
        let r = reference();
        assert!(r.power > r.opamp.power);
    }

    #[test]
    fn area_includes_cap_network() {
        let r = reference();
        assert!(r.area > r.opamp.area);
    }

    #[test]
    fn linear_settling_monotone_in_tolerance() {
        let t_loose = linear_settling_time(0.7, 1e9, 1e-2);
        let t_tight = linear_settling_time(0.7, 1e9, 1e-5);
        assert!(t_tight > t_loose);
    }

    #[test]
    fn linear_settling_overdamped_branch() {
        let t = linear_settling_time(2.0, 1e9, 1e-4);
        assert!(t.is_finite() && t > 0.0);
        // Much slower than critically damped at the same omega_n.
        assert!(t > linear_settling_time(0.9, 1e9, 1e-4));
    }

    #[test]
    fn corners_shift_performance() {
        let dv = DesignVector::reference();
        let clock = ClockContext::standard();
        let nom = analyze(&dv, &Process::nominal(), &clock);
        let ss = analyze(&dv, &Process::nominal().at_corner(Corner::Ss), &clock);
        assert!(ss.settling_time != nom.settling_time);
    }

    #[test]
    fn report_fields_finite_for_random_designs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        let p = Process::nominal();
        let clock = ClockContext::standard();
        for _ in 0..200 {
            let genes: Vec<f64> = (0..15).map(|_| rng.gen::<f64>()).collect();
            let dv = DesignVector::from_genes(&genes);
            let r = analyze(&dv, &p, &clock);
            assert!(r.settling_time.is_finite());
            assert!(r.settling_error.is_finite());
            assert!(r.dynamic_range_db.is_finite());
            assert!(r.power.is_finite() && r.power > 0.0);
            assert!(r.area.is_finite() && r.area > 0.0);
        }
    }
}
