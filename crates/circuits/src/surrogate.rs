//! Analytic surrogate pre-screen: answer *obvious losers* from first-stage
//! hand analysis before the full integrator model runs.
//!
//! The full evaluation of one candidate costs a drivable-load bisection
//! (up to 18 integrator analyses) plus a nine-point robustness sweep. A
//! large fraction of uniformly-drawn candidates, however, fail for a
//! reason visible in two one-line estimates: the first-stage
//! transconductance cannot produce a usable gain-bandwidth, or the tail
//! current cannot slew the compensation capacitor anywhere near the clock
//! rate. This module builds [`engine::SurrogateScreen`]s that catch those
//! candidates with a deliberately *conservative* analytic bound and return
//! a pessimistic, fully-infeasible placeholder [`Evaluation`] instead of
//! running the model.
//!
//! The screen changes which candidates reach the full model, so it is
//! **opt-in** per run; with [`ScreenThresholds::never`] the screen answers
//! nothing and runs are byte-identical to unscreened ones (pinned by the
//! golden-master suite). Screened answers are counted in
//! [`engine::EngineStats::screened`] and never cached.

use crate::process::Process;
use crate::sizing::{DesignVector, NUM_PARAMS};
use engine::SurrogateScreen;
use moea::evaluation::Evaluation;

/// Lower bounds below which a candidate is answered by the surrogate.
///
/// Both are *floors on crude over-estimates*: the screen only fires when
/// even the optimistic hand estimate cannot reach the threshold, so a
/// fired screen implies the full model would have graded the candidate
/// infeasible as well.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenThresholds {
    /// Minimum first-stage gain-bandwidth estimate `gm1 / Cc` (rad/s).
    pub min_gbw: f64,
    /// Minimum internal slew-rate estimate `I_tail / Cc` (V/s).
    pub min_slew: f64,
}

impl ScreenThresholds {
    /// Thresholds that never fire: the screen becomes a provable no-op
    /// (every candidate passes to the full model).
    pub fn never() -> Self {
        ScreenThresholds {
            min_gbw: 0.0,
            min_slew: 0.0,
        }
    }

    /// Conservative production thresholds for the standard 2 MHz clock:
    /// roughly 15× below the gain-bandwidth and slew rate any feasible
    /// design needs to settle within half a clock period, so only
    /// hopeless corners of the space are screened.
    pub fn conservative() -> Self {
        ScreenThresholds {
            min_gbw: 5.0e6,
            min_slew: 1.0e6,
        }
    }
}

/// First-stage hand estimates for a decoded design: optimistic
/// `(gbw, slew)` in (rad/s, V/s).
///
/// `gm1` uses the square-law saturation estimate
/// `√(2 ·kp_n ·(W1/L1) ·I_tail/2)` — an over-estimate in the presence of
/// velocity saturation and mobility degradation, which is exactly the
/// direction a conservative screen needs.
pub fn first_stage_estimates(dv: &DesignVector, process: &Process) -> (f64, f64) {
    let gm1 = (2.0 * process.nmos.kp * (dv.w1 / dv.l1) * (0.5 * dv.itail)).sqrt();
    (gm1 / dv.cc, dv.itail / dv.cc)
}

/// Screens one decoded design: `Some(pessimistic placeholder)` when either
/// estimate falls below its threshold, `None` (run the full model)
/// otherwise.
pub fn screen_design(
    dv: &DesignVector,
    process: &Process,
    thresholds: &ScreenThresholds,
) -> Option<Evaluation> {
    let (gbw, slew) = first_stage_estimates(dv, process);
    if gbw < thresholds.min_gbw || slew < thresholds.min_slew {
        Some(pessimistic_placeholder(dv, process))
    } else {
        None
    }
}

/// The placeholder returned for screened candidates: no drivable load,
/// an estimated (pessimistic) power, and every constraint maximally
/// violated, so the placeholder can never dominate — or be mistaken for —
/// a genuinely evaluated design.
fn pessimistic_placeholder(dv: &DesignVector, process: &Process) -> Evaluation {
    let i2 = dv.itail * (dv.w7 / dv.l7) / (dv.w5 / dv.l5);
    let power = process.vdd * (1.5 * dv.itail + i2);
    Evaluation::new(vec![0.0, power], vec![1.0; 9])
}

/// A surrogate screen for [`crate::DrivableLoadProblem`] gene vectors
/// (sizing decode + layout quantization, exactly as the full evaluator
/// decodes them).
pub fn drivable_screen(
    process: &Process,
    thresholds: ScreenThresholds,
) -> SurrogateScreen<Evaluation> {
    let process = *process;
    SurrogateScreen::new("analytic-first-stage(drivable)", move |genes: &[f64]| {
        if genes.len() != NUM_PARAMS {
            return None;
        }
        let dv = DesignVector::from_sizing_genes(genes).quantize();
        screen_design(&dv, &process, &thresholds)
    })
}

/// A surrogate screen for [`crate::IntegratorProblem`] gene vectors
/// (plain decode, no quantization — matching that problem's evaluator).
pub fn integrator_screen(
    process: &Process,
    thresholds: ScreenThresholds,
) -> SurrogateScreen<Evaluation> {
    let process = *process;
    SurrogateScreen::new(
        "analytic-first-stage(integrator)",
        move |genes: &[f64]| {
            if genes.len() != NUM_PARAMS {
                return None;
            }
            let dv = DesignVector::from_genes(genes);
            screen_design(&dv, &process, &thresholds)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DrivableLoadProblem, Spec};
    use moea::Problem;

    fn starved_genes() -> Vec<f64> {
        // Minimum input pair and tail current against the maximum
        // compensation capacitor: cannot slew anything.
        let mut g = vec![0.5; NUM_PARAMS];
        g[0] = 0.0; // w1 min
        g[1] = 1.0; // l1 max
        g[10] = 0.0; // itail min
        g[11] = 1.0; // cc max
        g
    }

    #[test]
    fn never_thresholds_screen_nothing() {
        let screen = drivable_screen(&Process::nominal(), ScreenThresholds::never());
        assert!(screen.screen(&starved_genes()).is_none());
        assert!(screen.screen(&[0.5; NUM_PARAMS]).is_none());
    }

    #[test]
    fn conservative_thresholds_catch_starved_designs() {
        let screen = drivable_screen(&Process::nominal(), ScreenThresholds::conservative());
        let answer = screen.screen(&starved_genes());
        let ev = answer.expect("starved design must be screened");
        assert!(!ev.is_feasible());
        assert_eq!(ev.objectives()[0], 0.0);
        assert!(ev.objectives()[1] > 0.0);
    }

    #[test]
    fn healthy_designs_pass_to_the_full_model() {
        let screen = drivable_screen(&Process::nominal(), ScreenThresholds::conservative());
        let genes = DesignVector::reference().to_genes();
        assert!(screen.screen(&genes).is_none());
    }

    #[test]
    fn screened_candidates_are_infeasible_under_the_full_model() {
        // Soundness: anything the conservative screen answers would have
        // been graded infeasible by the full evaluator too.
        let p = DrivableLoadProblem::new(Spec::featured());
        let screen = drivable_screen(p.process(), ScreenThresholds::conservative());
        let mut candidates: Vec<Vec<f64>> = (0..48_u32)
            .map(|i| {
                (0..NUM_PARAMS)
                    .map(|j| (i as f64 * 7.31 + j as f64 * 0.613).sin() * 0.5 + 0.5)
                    .collect()
            })
            .collect();
        // Sprinkle in slew-starved corners (tiny tail current, big Cc) with
        // the remaining genes varied, so the screen is guaranteed to fire
        // on part of the set.
        for i in 0..16_u32 {
            let mut g: Vec<f64> = (0..NUM_PARAMS)
                .map(|j| (i as f64 * 3.77 + j as f64 * 1.09).sin() * 0.5 + 0.5)
                .collect();
            g[10] = 0.02 * i as f64 / 16.0; // itail near minimum
            g[11] = 1.0 - 0.02 * i as f64 / 16.0; // cc near maximum
            candidates.push(g);
        }
        let mut screened = 0;
        for (i, genes) in candidates.iter().enumerate() {
            if screen.screen(genes).is_some() {
                screened += 1;
                assert!(
                    !p.evaluate(genes).is_feasible(),
                    "screened candidate {i} was feasible under the full model"
                );
            }
        }
        assert!(screened > 0, "sample set never triggered the screen");
    }

    #[test]
    fn integrator_screen_decodes_without_quantization() {
        let screen = integrator_screen(&Process::nominal(), ScreenThresholds::conservative());
        assert!(screen.screen(&starved_genes()).is_some());
        assert!(
            screen.screen(&[0.1; 3]).is_none(),
            "foreign lengths pass through"
        );
    }
}
