//! Integrated (MiM) capacitors with bottom-plate parasitics.

use crate::process::Process;

/// An integrated capacitor of a given design value.
///
/// Real integrated capacitors carry a parasitic capacitance from their
/// bottom plate to the substrate — a fixed fraction of the main value in
/// this process description — which loads whichever node the bottom plate
/// is tied to. The paper explicitly includes bottom-plate parasitics in its
/// circuit description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegratedCapacitor {
    /// Design value (F).
    pub value: f64,
}

impl IntegratedCapacitor {
    /// Creates a capacitor of `value` farads.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative.
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0, "capacitance cannot be negative");
        IntegratedCapacitor { value }
    }

    /// Bottom-plate parasitic capacitance (F).
    pub fn bottom_plate(&self, process: &Process) -> f64 {
        self.value * process.bottom_plate_fraction
    }

    /// Layout area (m²).
    pub fn area(&self, process: &Process) -> f64 {
        self.value / process.cap_density
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bottom_plate_is_a_fraction() {
        let p = Process::nominal();
        let c = IntegratedCapacitor::new(1e-12);
        let bp = c.bottom_plate(&p);
        assert!(bp > 0.0 && bp < c.value);
        assert!((bp / c.value - p.bottom_plate_fraction).abs() < 1e-15);
    }

    #[test]
    fn area_scales_with_value() {
        let p = Process::nominal();
        let small = IntegratedCapacitor::new(0.5e-12);
        let large = IntegratedCapacitor::new(2e-12);
        assert!((large.area(&p) / small.area(&p) - 4.0).abs() < 1e-12);
        // 1 pF at 1 fF/µm² should be 1000 µm².
        let one_pf = IntegratedCapacitor::new(1e-12);
        assert!((one_pf.area(&p) - 1e-9).abs() < 1e-15);
    }

    #[test]
    fn zero_capacitor_is_legal() {
        let p = Process::nominal();
        let c = IntegratedCapacitor::new(0.0);
        assert_eq!(c.bottom_plate(&p), 0.0);
        assert_eq!(c.area(&p), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_capacitor_rejected() {
        let _ = IntegratedCapacitor::new(-1e-12);
    }
}
