//! Nonlinear transient simulation of the integrator's charge-transfer
//! step — an independent check on the analytical settling model.
//!
//! The closed-loop amplifier during the integration phase is modelled as
//! the classic two-pole system with slew limiting: the first stage is a
//! transconductor whose output current saturates at the tail current
//! (slewing), driving the Miller-compensated second stage:
//!
//! ```text
//! C₁ ·dv₁/dt = −I₁(v_e) − C_c·d(v₁ − v_o)/dt·(coupling)
//! C_L·dv_o/dt = g_m6·v₁ − … (second stage)
//! ```
//!
//! Rather than integrating the exact nodal equations (which would need the
//! full device models at every step), we use the standard behavioural
//! reduction: a saturating integrator cascade with the same `ω_c`, `p₂`,
//! `z` and slew rate as the small-signal analysis, integrated with RK4.
//! The simulated 0.01 %-settling time should then agree with
//! `integrator::analyze`'s analytical `settling_time` within the
//! accuracy of the two-pole approximation — this module's tests assert
//! that, closing the loop between formula and behaviour.

use crate::integrator::IntegratorReport;

/// Result of a transient settling simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SettlingSim {
    /// Simulated time to stay within the tolerance band (s).
    pub settling_time: f64,
    /// Final relative error at the end of the simulation window.
    pub final_error: f64,
    /// Peak overshoot relative to the step (0 = none).
    pub overshoot: f64,
    /// `true` when the response entered and stayed in the band.
    pub settled: bool,
}

/// Behavioural closed-loop model: states `x₁` (first-stage output) and
/// `x₂` (output voltage), unity-normalized step command.
#[derive(Debug, Clone, Copy)]
struct LoopModel {
    /// Loop crossover (rad/s).
    omega_c: f64,
    /// Non-dominant pole (rad/s).
    p2: f64,
    /// RHP zero (rad/s).
    zero: f64,
    /// Slew limit expressed as a maximum d(x₂)/dt for a unit step (1/s).
    slew_norm: f64,
}

impl LoopModel {
    fn derivatives(&self, x1: f64, x2: f64, target: f64) -> (f64, f64) {
        // Error integrator with crossover omega_c, saturating at the
        // normalized slew limit; second pole p2 with RHP-zero feedforward.
        let err = target - x2;
        let dx1 = (self.omega_c * err).clamp(-self.slew_norm, self.slew_norm);
        // x2 follows x1 through the pole at p2; the RHP zero feeds the
        // derivative of x1 forward with a negative sign.
        let dx2 = self.p2 * (x1 - x2) - (self.p2 / self.zero) * dx1;
        (dx1, dx2)
    }
}

/// Simulates the normalized step response implied by an analysis report
/// and measures its settling behaviour.
///
/// * `report` — the small-signal quantities (`ω_c`, `p₂`, `z`, slew, step
///   size) are taken from it;
/// * `tolerance` — the relative band defining "settled" (e.g. `1e-4`);
/// * `window` — simulation length in seconds.
///
/// Returns `None` when the report carries no meaningful dynamics (e.g. a
/// faulted bias point).
pub fn simulate_settling(
    report: &IntegratorReport,
    tolerance: f64,
    window: f64,
) -> Option<SettlingSim> {
    let dynamic_ok = report.omega_c > 0.0 && report.p2 > 0.0;
    if !report.is_biased() || !dynamic_ok {
        return None;
    }
    // Normalized slew: the physical step is v_step; slew rate SR limits
    // d(v_out)/dt; in unit-step coordinates the limit is SR / v_step.
    // Reconstruct v_step and SR from the report's slewing time using the
    // same definitions as the analysis (v_step/SR = t_slew + 1/omega_c).
    let slew_norm = 1.0 / (report.t_slew + 1.0 / report.omega_c);

    let model = LoopModel {
        omega_c: report.omega_c,
        p2: report.p2,
        zero: report.zero.max(report.omega_c * 1e3_f64.min(report.zero)),
        slew_norm,
    };

    let dt = (0.02 / report.omega_c.max(report.p2)).min(window / 400.0);
    let steps = (window / dt).ceil() as usize;
    let (mut x1, mut x2) = (0.0_f64, 0.0_f64);
    let target = 1.0;
    let mut settle_at: Option<f64> = None;
    let mut overshoot = 0.0_f64;

    for k in 0..steps {
        // RK4 step.
        let (k1a, k1b) = model.derivatives(x1, x2, target);
        let (k2a, k2b) = model.derivatives(x1 + 0.5 * dt * k1a, x2 + 0.5 * dt * k1b, target);
        let (k3a, k3b) = model.derivatives(x1 + 0.5 * dt * k2a, x2 + 0.5 * dt * k2b, target);
        let (k4a, k4b) = model.derivatives(x1 + dt * k3a, x2 + dt * k3b, target);
        x1 += dt / 6.0 * (k1a + 2.0 * k2a + 2.0 * k3a + k4a);
        x2 += dt / 6.0 * (k1b + 2.0 * k2b + 2.0 * k3b + k4b);

        let t = (k + 1) as f64 * dt;
        overshoot = overshoot.max(x2 - target);
        let err = (target - x2).abs();
        if err <= tolerance {
            settle_at.get_or_insert(t);
        } else {
            settle_at = None; // left the band: not settled yet
        }
    }

    let final_error = (target - x2).abs();
    Some(SettlingSim {
        settling_time: settle_at.unwrap_or(window),
        final_error,
        overshoot,
        settled: settle_at.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{analyze, ClockContext};
    use crate::process::Process;
    use crate::sizing::DesignVector;

    fn reference_report(cl: f64) -> IntegratorReport {
        analyze(
            &DesignVector::reference().with_cl(cl),
            &Process::nominal(),
            &ClockContext::standard(),
        )
    }

    #[test]
    fn simulation_settles_within_the_window() {
        let report = reference_report(1e-12);
        let sim = simulate_settling(&report, 1e-4, 2e-6).expect("biased design");
        assert!(sim.settled, "response never settled: {sim:?}");
        assert!(sim.final_error < 1e-4);
    }

    #[test]
    fn simulated_settling_matches_analytical_scale() {
        // The analytical ST is an envelope-style estimate of the same
        // two-pole dynamics; demand agreement within a factor of 2.5 (the
        // envelope is conservative, the simulator exact for the model).
        for cl in [0.2e-12, 1e-12, 3e-12, 5e-12] {
            let report = reference_report(cl);
            let sim = simulate_settling(&report, 1e-4, 4e-6).expect("biased design");
            let analytical = report.settling_time;
            let ratio = sim.settling_time / analytical;
            assert!(
                (0.3..=2.5).contains(&ratio),
                "cl={} pF: simulated {} vs analytical {} (ratio {ratio})",
                cl * 1e12,
                sim.settling_time,
                analytical
            );
        }
    }

    #[test]
    fn heavier_load_settles_slower_in_simulation_too() {
        let light = simulate_settling(&reference_report(0.2e-12), 1e-4, 4e-6).unwrap();
        let heavy = simulate_settling(&reference_report(5e-12), 1e-4, 4e-6).unwrap();
        assert!(heavy.settling_time > light.settling_time);
    }

    #[test]
    fn lower_damping_shows_more_overshoot() {
        // At 5 pF the reference design's zeta drops: overshoot appears.
        let heavy = simulate_settling(&reference_report(5e-12), 1e-4, 4e-6).unwrap();
        let light = simulate_settling(&reference_report(0.2e-12), 1e-4, 4e-6).unwrap();
        assert!(heavy.overshoot >= light.overshoot);
    }

    #[test]
    fn faulted_report_returns_none() {
        let mut dv = DesignVector::reference();
        dv.itail = 500e-6;
        dv.w5 = 2e-6;
        dv.l5 = 1.5e-6;
        let report = analyze(
            &dv.with_cl(1e-12),
            &Process::nominal(),
            &ClockContext::standard(),
        );
        assert!(simulate_settling(&report, 1e-4, 1e-6).is_none());
    }

    #[test]
    fn tighter_tolerance_takes_longer() {
        let report = reference_report(1e-12);
        let loose = simulate_settling(&report, 1e-3, 4e-6).unwrap();
        let tight = simulate_settling(&report, 1e-5, 4e-6).unwrap();
        assert!(tight.settling_time >= loose.settling_time);
    }
}
