//! Circuit specifications: the featured specification of the paper and the
//! set of 20 specifications "graded by their level of difficulty" used for
//! the trends table (Sec. 5).

/// One complete specification set for the integrator.
///
/// All fields are constraint bounds; the two objectives (power, load
/// capacitance) are never constrained — they form the explored trade-off.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Human-readable identifier ("featured", "grade-07", …).
    pub name: String,
    /// Dynamic range lower bound (dB).
    pub dr_min_db: f64,
    /// Output range lower bound (V, differential peak-to-peak).
    pub or_min_v: f64,
    /// Settling-time upper bound (s).
    pub st_max: f64,
    /// Settling-error upper bound (relative).
    pub se_max: f64,
    /// Robustness (yield) lower bound in [0, 1].
    pub robustness_min: f64,
    /// Area upper bound (m²).
    pub area_max: f64,
    /// Minimum saturation margin required of every device (V).
    pub sat_margin_min: f64,
}

impl Spec {
    /// The featured specification quoted in Sec. 2 of the paper:
    /// DR ≥ 96 dB, OR ≥ 1.4 V, ST ≤ 0.24 µs, SE ≤ 7·10⁻⁴,
    /// Robustness ≥ 0.85.
    pub fn featured() -> Self {
        Spec {
            name: "featured".to_owned(),
            dr_min_db: 96.0,
            or_min_v: 1.4,
            st_max: 0.24e-6,
            se_max: 7e-4,
            robustness_min: 0.85,
            area_max: 0.08e-6, // 0.08 mm²
            sat_margin_min: 0.04,
        }
    }

    /// A deliberately loose specification for smoke tests and examples.
    pub fn relaxed() -> Self {
        Spec {
            name: "relaxed".to_owned(),
            dr_min_db: 80.0,
            or_min_v: 1.0,
            st_max: 1.0e-6,
            se_max: 5e-3,
            robustness_min: 0.5,
            area_max: 0.5e-6,
            sat_margin_min: 0.02,
        }
    }

    /// The 20 specifications graded by difficulty (grade 1 = easiest,
    /// grade 20 = hardest). Tightness interpolates linearly from a relaxed
    /// envelope to slightly beyond the featured spec; the featured spec
    /// sits near grade 16.
    pub fn graded_suite() -> Vec<Spec> {
        (1..=20)
            .map(|grade| {
                let t = (grade - 1) as f64 / 19.0; // 0 (easy) → 1 (hard)
                Spec {
                    name: format!("grade-{grade:02}"),
                    dr_min_db: 88.0 + t * 10.0,              // 88 → 98 dB
                    or_min_v: 1.2 + t * 0.3,                 // 1.2 → 1.5 V
                    st_max: (0.45 - t * 0.23) * 1e-6,        // 0.45 → 0.22 µs
                    se_max: 2.0e-3 * (1.0 - t) + 5.0e-4 * t, // 2e-3 → 5e-4
                    robustness_min: 0.70 + t * 0.20,         // 0.70 → 0.90
                    area_max: (0.15 - t * 0.08) * 1e-6,      // 0.15 → 0.07 mm²
                    sat_margin_min: 0.03 + t * 0.02,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn featured_matches_paper_numbers() {
        let s = Spec::featured();
        assert_eq!(s.dr_min_db, 96.0);
        assert_eq!(s.or_min_v, 1.4);
        assert!((s.st_max - 0.24e-6).abs() < 1e-18);
        assert!((s.se_max - 7e-4).abs() < 1e-12);
        assert_eq!(s.robustness_min, 0.85);
    }

    #[test]
    fn graded_suite_has_twenty_monotone_specs() {
        let suite = Spec::graded_suite();
        assert_eq!(suite.len(), 20);
        for w in suite.windows(2) {
            assert!(w[1].dr_min_db >= w[0].dr_min_db);
            assert!(w[1].st_max <= w[0].st_max);
            assert!(w[1].se_max <= w[0].se_max);
            assert!(w[1].robustness_min >= w[0].robustness_min);
            assert!(w[1].or_min_v >= w[0].or_min_v);
        }
    }

    #[test]
    fn grades_bracket_the_featured_spec() {
        let suite = Spec::graded_suite();
        let featured = Spec::featured();
        assert!(suite.first().unwrap().dr_min_db < featured.dr_min_db);
        assert!(suite.last().unwrap().dr_min_db > featured.dr_min_db);
    }

    #[test]
    fn names_are_unique() {
        let suite = Spec::graded_suite();
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }
}
