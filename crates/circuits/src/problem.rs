//! The sizing optimization problem of the paper as a [`moea::Problem`]:
//! **minimize power, maximize drivable load capacitance** under the full
//! specification constraint set.
//!
//! Internally both objectives are minimized (`f0 = −C_L`, `f1 = P`);
//! reporting helpers convert to the paper's axes (C_L in pF on x, power in
//! W on y) and to the paper's hypervolume units (0.1 mW · pF).

use crate::batch::DesignBatch;
use crate::integrator::{self, ClockContext, IntegratorReport};
use crate::process::Process;
use crate::sizing::{DesignVector, NUM_PARAMS};
use crate::specs::Spec;
use crate::yield_est::{self, SamplePoint};
use moea::evaluation::{Evaluation, ViolationBuilder};
use moea::individual::Individual;
use moea::problem::{Bounds, Problem};

/// Number of inequality constraints the problem declares.
pub const NUM_CONSTRAINTS: usize = 9;

/// The integrator sizing problem.
///
/// # Examples
///
/// ```
/// use analog_circuits::{IntegratorProblem, Spec};
/// use moea::Problem;
///
/// let p = IntegratorProblem::new(Spec::relaxed());
/// let ev = p.evaluate(&[0.5; 15]);
/// assert_eq!(ev.objectives().len(), 2);
/// assert_eq!(ev.constraint_violations().len(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct IntegratorProblem {
    spec: Spec,
    process: Process,
    clock: ClockContext,
    bounds: Bounds,
    name: String,
}

impl IntegratorProblem {
    /// Creates the problem for a specification with the nominal process and
    /// standard clock.
    pub fn new(spec: Spec) -> Self {
        let name = format!("integrator-sizing({})", spec.name);
        IntegratorProblem {
            spec,
            process: Process::nominal(),
            clock: ClockContext::standard(),
            bounds: DesignVector::gene_bounds(),
            name,
        }
    }

    /// Replaces the process description.
    pub fn with_process(mut self, process: Process) -> Self {
        self.process = process;
        self
    }

    /// Replaces the clock context.
    pub fn with_clock(mut self, clock: ClockContext) -> Self {
        self.clock = clock;
        self
    }

    /// The specification being targeted.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The nominal process in use.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// The clock context in use.
    pub fn clock(&self) -> &ClockContext {
        &self.clock
    }

    /// Full nominal-corner report for a gene vector (diagnostics, examples).
    pub fn report(&self, genes: &[f64]) -> IntegratorReport {
        let dv = DesignVector::from_genes(genes);
        integrator::analyze(&dv, &self.process, &self.clock)
    }

    /// Robustness of a gene vector under this problem's spec.
    pub fn robustness(&self, genes: &[f64]) -> f64 {
        let dv = DesignVector::from_genes(genes);
        yield_est::robustness(&dv, &self.process, &self.clock, &self.spec)
    }

    /// Evaluates a decoded design (shared by [`Problem::evaluate`]).
    pub fn evaluate_design(&self, dv: &DesignVector) -> Evaluation {
        self.evaluate_design_prepared(dv, &yield_est::prepared_plan(&self.process))
    }

    /// Evaluates a decoded design against a pre-built robustness sample
    /// table (see [`yield_est::prepared_plan`]). The scalar path builds a
    /// fresh table per call; the batch kernel ([`Problem::evaluate_all`])
    /// builds one per generation. Both paths execute this same body, so
    /// they are bit-for-bit identical by construction.
    pub(crate) fn evaluate_design_prepared(
        &self,
        dv: &DesignVector,
        plan: &[(SamplePoint, Process)],
    ) -> Evaluation {
        let report = integrator::analyze(dv, &self.process, &self.clock);

        // Robustness: skip the 8 extra corner analyses when the nominal
        // point is not even biased — it cannot pass anywhere.
        let robustness = if report.is_biased() {
            yield_est::robustness_prepared(dv, plan, &self.clock, &self.spec).0
        } else {
            0.0
        };

        let spec = &self.spec;
        let mut v = ViolationBuilder::new();
        v.at_least(report.dynamic_range_db, spec.dr_min_db); // 1 DR
        v.at_least(report.output_range, spec.or_min_v); // 2 OR
        v.at_most(report.settling_time, spec.st_max); // 3 ST
        v.at_most(report.settling_error, spec.se_max); // 4 SE
        v.at_most(report.area, spec.area_max); // 5 area
        v.at_least(report.opamp.sat_margin, spec.sat_margin_min); // 6 regions
        v.at_least(robustness, spec.robustness_min); // 7 yield
                                                     // 8: matching / systematic offset below 2 mV input-referred.
        v.at_most(report.opamp.systematic_offset, 2e-3);
        // 9: stability — non-dominant pole at least 1.5× the crossover.
        v.at_least(report.p2, 1.5 * report.omega_c); // 9 phase margin

        // Objectives: maximize C_L (minimize −C_L), minimize power.
        Evaluation::new(vec![-report.cl, report.power], v.finish())
    }

    /// Converts an internal objective vector to the paper's reporting axes:
    /// `(load capacitance in pF, power in W)`.
    pub fn to_paper_axes(objectives: &[f64]) -> (f64, f64) {
        (-objectives[0] * 1e12, objectives[1])
    }

    /// Front points in the paper's hypervolume coordinates
    /// `(C_L in pF, P in units of 0.1 mW)` — ready for
    /// [`moea::hypervolume::staircase_area`].
    pub fn paper_front_points(front: &[Individual]) -> Vec<[f64; 2]> {
        front
            .iter()
            .map(|m| {
                let (cl_pf, power_w) = Self::to_paper_axes(m.objectives());
                [cl_pf, power_w * 1e4]
            })
            .collect()
    }

    /// Power ceiling (in 0.1 mW units) charged for load ranges the front
    /// does not cover at all; roughly the worst power of any plausible
    /// constraint-satisfying design.
    pub const HV_POWER_CEILING: f64 = 12.0;

    /// The paper's hypervolume metric of a front (0.1 mW · pF units,
    /// **lower = better**).
    ///
    /// Sec. 4.2 describes a union of boxes anchored at the origin, lower
    /// being better. Taken literally on axes where power grows with load,
    /// that union degenerates to the single largest box; the magnitudes the
    /// paper reports (≈ 20–40) instead match the *uncovered-region area*
    ///
    /// ```text
    /// HV = ∫₀^{C_max} P_front(C) dC,
    /// P_front(C) = min { P_i : C_L,i ≥ C },
    /// ```
    ///
    /// i.e. the integral of the cheapest power able to drive each load
    /// requirement, with [`HV_POWER_CEILING`](Self::HV_POWER_CEILING)
    /// charged where no solution covers the load at all. This is the
    /// complement of the conventional dominated hypervolume w.r.t. the
    /// reference `(C = 0, P = ceiling)`, so it is simultaneously
    /// convergence-sensitive (lower power ⇒ lower HV) and
    /// diversity-sensitive (missing low-load coverage keeps the staircase
    /// at the expensive clustered power level). `EXPERIMENTS.md` discusses
    /// the interpretation.
    pub fn paper_hypervolume(front: &[Individual]) -> f64 {
        let c_max = crate::sizing::CL_RANGE.1 * 1e12; // pF
        let mut pts: Vec<[f64; 2]> = front
            .iter()
            .map(|m| {
                let (cl_pf, power_w) = Self::to_paper_axes(m.objectives());
                [cl_pf.min(c_max), power_w * 1e4]
            })
            .filter(|p| p[0].is_finite() && p[1].is_finite())
            .collect();
        // Sweep from the maximum load downward, integrating the cheapest
        // power that covers each load level.
        pts.sort_by(|a, b| b[0].partial_cmp(&a[0]).unwrap_or(std::cmp::Ordering::Equal));
        let mut area = 0.0;
        let mut cur_c = c_max;
        let mut cur_p = Self::HV_POWER_CEILING;
        for p in &pts {
            if p[0] < cur_c {
                area += (cur_c - p[0]) * cur_p;
                cur_c = p[0];
            }
            cur_p = cur_p.min(p[1]);
        }
        area + cur_c.max(0.0) * cur_p
    }
}

impl Problem for IntegratorProblem {
    fn name(&self) -> &str {
        &self.name
    }

    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn num_objectives(&self) -> usize {
        2
    }

    fn num_constraints(&self) -> usize {
        NUM_CONSTRAINTS
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        debug_assert_eq!(x.len(), NUM_PARAMS);
        let dv = DesignVector::from_genes(x);
        self.evaluate_design(&dv)
    }

    fn evaluate_all(&self, batch: &[Vec<f64>]) -> Vec<Evaluation> {
        // Struct-of-arrays fast path: column-wise gene decode plus one
        // corner/mismatch process table for the whole generation.
        let db = DesignBatch::decode(batch);
        let plan = yield_est::prepared_plan(&self.process);
        (0..db.len())
            .map(|i| self.evaluate_design_prepared(&db.design(i), &plan))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moea::evaluation::Evaluation as Ev;

    fn reference_genes() -> Vec<f64> {
        DesignVector::reference().to_genes()
    }

    #[test]
    fn declares_15_vars_2_objs_9_constraints() {
        let p = IntegratorProblem::new(Spec::featured());
        assert_eq!(p.num_variables(), 15);
        assert_eq!(p.num_objectives(), 2);
        assert_eq!(p.num_constraints(), NUM_CONSTRAINTS);
    }

    #[test]
    fn reference_design_feasible_under_relaxed_spec() {
        let p = IntegratorProblem::new(Spec::relaxed());
        let ev = p.evaluate(&reference_genes());
        assert!(
            ev.is_feasible(),
            "violations: {:?}",
            ev.constraint_violations()
        );
    }

    #[test]
    fn objectives_are_negload_and_power() {
        let p = IntegratorProblem::new(Spec::relaxed());
        let genes = reference_genes();
        let ev = p.evaluate(&genes);
        let report = p.report(&genes);
        assert!((ev.objectives()[0] + report.cl).abs() < 1e-18);
        assert!((ev.objectives()[1] - report.power).abs() < 1e-12);
    }

    #[test]
    fn paper_axes_conversion() {
        let (cl_pf, p_w) = IntegratorProblem::to_paper_axes(&[-2e-12, 5e-4]);
        assert!((cl_pf - 2.0).abs() < 1e-9);
        assert!((p_w - 5e-4).abs() < 1e-15);
    }

    #[test]
    fn paper_hypervolume_prefers_better_fronts() {
        let ind = |cl_pf: f64, p_mw: f64| {
            Individual::new(
                vec![0.0],
                Ev::unconstrained(vec![-cl_pf * 1e-12, p_mw * 1e-3]),
            )
        };
        // A front that reaches high load at low power…
        let good = vec![ind(1.0, 0.4), ind(3.0, 0.55), ind(5.0, 0.7)];
        // …must beat a clustered, higher-power front.
        let bad = vec![ind(4.2, 0.9), ind(4.6, 0.92), ind(5.0, 0.95)];
        let hv_good = IntegratorProblem::paper_hypervolume(&good);
        let hv_bad = IntegratorProblem::paper_hypervolume(&bad);
        assert!(
            hv_good < hv_bad,
            "paper hypervolume should be lower for the better front: {hv_good} vs {hv_bad}"
        );
        // And the magnitudes should be in the paper's ballpark (tens).
        assert!(hv_good > 5.0 && hv_bad < 60.0, "{hv_good} {hv_bad}");
    }

    #[test]
    fn infeasible_design_reports_violations() {
        let p = IntegratorProblem::new(Spec::featured());
        // All-min genes: minimum widths/currents cannot meet the spec.
        let ev = p.evaluate(&[0.0; 15]);
        assert!(!ev.is_feasible());
        assert!(ev.total_violation() > 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = IntegratorProblem::new(Spec::featured());
        let genes = vec![0.37; 15];
        let a = p.evaluate(&genes);
        let b = p.evaluate(&genes);
        assert_eq!(a, b);
    }

    #[test]
    fn harder_spec_cannot_be_easier() {
        let genes = reference_genes();
        let easy = IntegratorProblem::new(Spec::relaxed()).evaluate(&genes);
        let hard = IntegratorProblem::new(Spec::featured()).evaluate(&genes);
        assert!(hard.total_violation() >= easy.total_violation() - 1e-12);
    }

    #[test]
    fn report_accessor_matches_evaluation_power() {
        let p = IntegratorProblem::new(Spec::relaxed());
        let genes = vec![0.6; 15];
        let report = p.report(&genes);
        let ev = p.evaluate(&genes);
        assert!((report.power - ev.objectives()[1]).abs() < 1e-15);
    }

    #[test]
    fn batch_evaluate_all_is_bit_identical_to_scalar() {
        let p = IntegratorProblem::new(Spec::featured());
        let batch: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                (0..15)
                    .map(|j| ((i * 15 + j) as f64 * 0.219).fract())
                    .collect()
            })
            .collect();
        let fast = p.evaluate_all(&batch);
        let slow: Vec<_> = batch.iter().map(|g| p.evaluate(g)).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn check_evaluation_shape() {
        let p = IntegratorProblem::new(Spec::featured());
        let ev = p.evaluate(&[0.5; 15]);
        assert!(p.check_evaluation(&ev).is_ok());
    }
}
